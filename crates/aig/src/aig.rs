//! The And-Inverter Graph data structure.
//!
//! An [`Aig`] is a vector of nodes in topological order: node 0 is the
//! constant false, primary inputs have no fanins, and every other node is a
//! two-input AND whose fanin literals may carry inverters. Structural hashing
//! (strashing) and constant folding are applied on construction, so building
//! the same function twice yields the same node.

use crate::hasher::FxHashMap;
use crate::{Lit, NodeId};
use std::fmt;

/// Classification of a node inside an [`Aig`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// The constant-false node (always node 0).
    Const0,
    /// A primary input.
    Input,
    /// A two-input AND gate.
    And,
}

#[derive(Copy, Clone, Debug)]
struct AigNode {
    f0: Lit,
    f1: Lit,
}

impl AigNode {
    const fn leaf() -> Self {
        AigNode {
            f0: Lit::INVALID,
            f1: Lit::INVALID,
        }
    }
}

/// Summary statistics of an AIG, as printed by `Display`.
///
/// ```
/// use gamora_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and(a.lit(), b.lit());
/// aig.add_output(f);
/// let s = aig.stats();
/// assert_eq!((s.inputs, s.ands, s.outputs, s.levels), (2, 1, 1, 1));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct AigStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of AND nodes.
    pub ands: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of fanin edges (twice the AND count).
    pub edges: usize,
    /// Depth of the deepest output cone.
    pub levels: usize,
}

impl fmt::Display for AigStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i/o = {}/{}  and = {}  edge = {}  lev = {}",
            self.inputs, self.outputs, self.ands, self.edges, self.levels
        )
    }
}

/// A structurally hashed And-Inverter Graph.
///
/// ```
/// use gamora_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// let x = aig.xor(a, b);
/// let x2 = aig.xor(a, b);
/// assert_eq!(x, x2); // structural hashing deduplicates
/// aig.add_output(x);
/// assert_eq!(aig.num_ands(), 3); // two AND legs plus the output OR
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    inputs: Vec<NodeId>,
    outputs: Vec<Lit>,
    strash: FxHashMap<(u32, u32), u32>,
    name: String,
}

impl Aig {
    /// Creates an empty AIG containing only the constant-false node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::leaf()],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: FxHashMap::default(),
            name: String::new(),
        }
    }

    /// Creates an empty AIG with capacity for roughly `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut aig = Aig::new();
        aig.nodes.reserve(n);
        aig.strash.reserve(n);
        aig
    }

    /// Sets a human-readable design name (kept by AIGER I/O).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The design name, empty if unset.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Appends a fresh primary input and returns its node id.
    pub fn add_input(&mut self) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(AigNode::leaf());
        self.inputs.push(id);
        id
    }

    /// Appends `n` fresh primary inputs, returning their positive literals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_input().lit()).collect()
    }

    /// Marks `lit` as a primary output.
    pub fn add_output(&mut self, lit: Lit) {
        debug_assert!(lit.var().index() < self.nodes.len());
        self.outputs.push(lit);
    }

    /// Returns the AND of two literals, with constant folding and strashing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either literal refers to a node that does
    /// not exist yet (construction must be topological).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        debug_assert!(a.var().index() < self.nodes.len(), "fanin {a} out of range");
        debug_assert!(b.var().index() < self.nodes.len(), "fanin {b} out of range");
        // Normalise operand order so strashing is symmetric.
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        // Constant folding and trivial cases.
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE || a == b {
            return b;
        }
        let key = (a.raw(), b.raw());
        if let Some(&id) = self.strash.get(&key) {
            return NodeId::new(id).lit();
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode { f0: a, f1: b });
        self.strash.insert(key, id);
        NodeId::new(id).lit()
    }

    /// Returns the OR of two literals (De Morgan on [`Aig::and`]).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Returns the NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// Returns the NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// Returns the XOR of two literals as `(a & !b) | (!a & b)`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// Returns the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Returns the three-input XOR `a ^ b ^ c`.
    pub fn xor3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.xor(a, b);
        self.xor(ab, c)
    }

    /// Returns the majority function `ab + ac + bc` (full-adder carry).
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let aob = self.or(a, b);
        let cab = self.and(c, aob);
        self.or(ab, cab)
    }

    /// Returns the if-then-else `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and(s, t);
        let se = self.and(!s, e);
        self.or(st, se)
    }

    /// Returns the implication `!a | b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Balanced AND over a list of literals; the empty list yields true.
    pub fn and_multi(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Balanced OR over a list of literals; the empty list yields false.
    pub fn or_multi(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// Balanced XOR over a list of literals; the empty list yields false.
    pub fn xor_multi(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        empty: Lit,
        mut op: impl FnMut(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits {
            [] => empty,
            [l] => *l,
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(match pair {
                            [x, y] => op(self, *x, *y),
                            [x] => *x,
                            _ => unreachable!(),
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// A half adder: returns `(sum, carry)` = `(a ^ b, a & b)`.
    pub fn half_adder(&mut self, a: Lit, b: Lit) -> (Lit, Lit) {
        (self.xor(a, b), self.and(a, b))
    }

    /// A full adder bitslice: returns `(sum, carry)` =
    /// `(a ^ b ^ c, MAJ3(a, b, c))`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
        (self.xor3(a, b, c), self.maj3(a, b, c))
    }

    /// Appends an AND node without folding; fanins must be normalised
    /// (`a.raw() <= b.raw()`). Used by the AIGER reader to preserve
    /// structure exactly; registers the strash key only if free.
    pub(crate) fn push_node_raw(&mut self, a: Lit, b: Lit) {
        debug_assert!(a.raw() <= b.raw());
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode { f0: a, f1: b });
        self.strash.entry((a.raw(), b.raw())).or_insert(id);
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Total number of nodes, including the constant and the inputs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary output literals in creation order.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Replaces output `i` with a new literal.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_output(&mut self, i: usize, lit: Lit) {
        self.outputs[i] = lit;
    }

    /// The kind of node `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        if n == NodeId::CONST0 {
            NodeKind::Const0
        } else if self.nodes[n.index()].f0.is_valid() {
            NodeKind::And
        } else {
            NodeKind::Input
        }
    }

    /// Whether node `n` is a primary input.
    pub fn is_input(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Input
    }

    /// Whether node `n` is an AND gate.
    pub fn is_and(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::And
    }

    /// Both fanin literals of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an AND node.
    pub fn fanins(&self, n: NodeId) -> (Lit, Lit) {
        let node = &self.nodes[n.index()];
        assert!(node.f0.is_valid(), "{n} is not an AND node");
        (node.f0, node.f1)
    }

    /// First fanin of an AND node. See [`Aig::fanins`] for panics.
    pub fn fanin0(&self, n: NodeId) -> Lit {
        self.fanins(n).0
    }

    /// Second fanin of an AND node. See [`Aig::fanins`] for panics.
    pub fn fanin1(&self, n: NodeId) -> Lit {
        self.fanins(n).1
    }

    /// Iterates over all node ids in topological order (constant first).
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over the ids of AND nodes in topological order.
    pub fn and_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.is_and(n))
    }

    // ------------------------------------------------------------------
    // Derived structure
    // ------------------------------------------------------------------

    /// Logic level of every node (inputs and the constant are level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for n in self.node_ids() {
            if self.is_and(n) {
                let (f0, f1) = self.fanins(n);
                level[n.index()] = 1 + level[f0.var().index()].max(level[f1.var().index()]);
            }
        }
        level
    }

    /// Number of internal fanout edges per node (output pins not counted).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for n in self.and_ids() {
            let (f0, f1) = self.fanins(n);
            counts[f0.var().index()] += 1;
            counts[f1.var().index()] += 1;
        }
        counts
    }

    /// Fanout adjacency in CSR form: `(offsets, targets)` where the fanouts
    /// of node `n` are `targets[offsets[n]..offsets[n + 1]]`.
    pub fn fanouts(&self) -> (Vec<u32>, Vec<NodeId>) {
        let counts = self.fanout_counts();
        let mut offsets = vec![0u32; self.nodes.len() + 1];
        for (i, &c) in counts.iter().enumerate() {
            offsets[i + 1] = offsets[i] + c;
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId::CONST0; offsets[self.nodes.len()] as usize];
        for n in self.and_ids() {
            let (f0, f1) = self.fanins(n);
            for f in [f0, f1] {
                let slot = &mut cursor[f.var().index()];
                targets[*slot as usize] = n;
                *slot += 1;
            }
        }
        (offsets, targets)
    }

    /// Streams all fanin edges as `(source, target)` node pairs (two per
    /// AND, in topological order) without materialising a list — the
    /// zero-copy feed for CSR graph assembly.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for n in self.and_ids() {
            let (f0, f1) = self.fanins(n);
            f(f0.var(), n);
            f(f1.var(), n);
        }
    }

    /// All fanin edges as `(source, target)` node pairs (two per AND).
    ///
    /// Allocates; hot paths should stream via [`Aig::for_each_edge`].
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::with_capacity(2 * self.num_ands());
        self.for_each_edge(|s, d| edges.push((s, d)));
        edges
    }

    /// Summary statistics (node counts and depth).
    pub fn stats(&self) -> AigStats {
        let levels = self.levels();
        let depth = self
            .outputs
            .iter()
            .map(|l| levels[l.var().index()] as usize)
            .max()
            .unwrap_or(0);
        AigStats {
            inputs: self.num_inputs(),
            ands: self.num_ands(),
            outputs: self.num_outputs(),
            edges: 2 * self.num_ands(),
            levels: depth,
        }
    }

    // ------------------------------------------------------------------
    // Restructuring
    // ------------------------------------------------------------------

    /// Returns a copy containing only the logic reachable from the outputs,
    /// together with the mapping `old node id -> new literal` (identity on
    /// polarity) for every retained node.
    ///
    /// Inputs are always retained, in their original order, so that input
    /// indices keep meaning across the cleanup.
    pub fn cleanup(&self) -> (Aig, Vec<Option<Lit>>) {
        let mut reachable = vec![false; self.nodes.len()];
        reachable[0] = true;
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|l| l.var()).collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut reachable[n.index()], true) {
                continue;
            }
            if self.is_and(n) {
                let (f0, f1) = self.fanins(n);
                stack.push(f0.var());
                stack.push(f1.var());
            }
        }
        let mut out = Aig::with_capacity(self.nodes.len());
        out.set_name(self.name.clone());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        for &i in &self.inputs {
            map[i.index()] = Some(out.add_input().lit());
        }
        for n in self.node_ids() {
            if reachable[n.index()] && self.is_and(n) {
                let (f0, f1) = self.fanins(n);
                let a = map[f0.var().index()]
                    .expect("topo order")
                    .complement_if(f0.is_complement());
                let b = map[f1.var().index()]
                    .expect("topo order")
                    .complement_if(f1.is_complement());
                map[n.index()] = Some(out.and(a, b));
            }
        }
        for &o in &self.outputs {
            let l = map[o.var().index()].expect("output cone retained");
            out.add_output(l.complement_if(o.is_complement()));
        }
        (out, map)
    }

    /// Copies the transitive fanin cone of `roots` into a fresh AIG whose
    /// inputs are this AIG's inputs restricted to the cone's support.
    /// Returns the cone and, for each root, its literal in the cone.
    pub fn extract_cone(&self, roots: &[Lit]) -> (Aig, Vec<Lit>) {
        let mut scratch = Aig::new();
        scratch.nodes = self.nodes.clone();
        scratch.inputs = self.inputs.clone();
        scratch.outputs = roots.to_vec();
        let (cone, map) = scratch.cleanup();
        let lits = roots
            .iter()
            .map(|r| {
                map[r.var().index()]
                    .expect("root retained")
                    .complement_if(r.is_complement())
            })
            .collect();
        (cone, lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_input_aig() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        (aig, a, b)
    }

    #[test]
    fn constant_folding() {
        let (mut aig, a, _) = two_input_aig();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn strashing_is_commutative() {
        let (mut aig, a, b) = two_input_aig();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn de_morgan_shares_nodes() {
        let (mut aig, a, b) = two_input_aig();
        let o = aig.or(a, b);
        let n = aig.nor(a, b);
        assert_eq!(o, !n);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn xor_structure() {
        let (mut aig, a, b) = two_input_aig();
        let x = aig.xor(a, b);
        assert_eq!(aig.num_ands(), 3);
        // XOR root must be an AND with both fanins complemented (OR form).
        let root = x.var();
        assert!(x.is_complement());
        let (f0, f1) = aig.fanins(root);
        assert!(f0.is_complement() && f1.is_complement());
    }

    #[test]
    fn multi_reductions() {
        let mut aig = Aig::new();
        let lits = aig.add_inputs(5);
        let all = aig.and_multi(&lits);
        assert_eq!(aig.and_multi(&[]), Lit::TRUE);
        assert_eq!(aig.or_multi(&[]), Lit::FALSE);
        assert_eq!(aig.and_multi(&[lits[0]]), lits[0]);
        // the reduction is balanced: depth is ceil(log2(5)) = 3
        aig.add_output(all);
        assert_eq!(aig.stats().levels, 3);
    }

    #[test]
    fn levels_and_fanouts() {
        let (mut aig, a, b) = two_input_aig();
        let x = aig.xor(a, b);
        aig.add_output(x);
        let lv = aig.levels();
        assert_eq!(lv[x.var().index()], 2);
        let counts = aig.fanout_counts();
        assert_eq!(counts[a.var().index()], 2); // feeds both XOR legs
        let (off, tgt) = aig.fanouts();
        let fo = &tgt[off[a.var().index()] as usize..off[a.var().index() + 1] as usize];
        assert_eq!(fo.len(), 2);
    }

    #[test]
    fn cleanup_drops_dangling() {
        let (mut aig, a, b) = two_input_aig();
        let _dangling = aig.and(a, b);
        let keep = aig.or(a, b);
        aig.add_output(keep);
        let (clean, map) = aig.cleanup();
        assert_eq!(clean.num_ands(), 1);
        assert_eq!(clean.num_inputs(), 2);
        assert_eq!(clean.num_outputs(), 1);
        // output literal mapped with polarity preserved
        let mapped = map[keep.var().index()]
            .unwrap()
            .complement_if(keep.is_complement());
        assert_eq!(clean.outputs()[0], mapped);
    }

    #[test]
    fn cone_extraction_restricts_support() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(4);
        let x = aig.and(ins[0], ins[1]);
        let y = aig.and(ins[2], ins[3]);
        aig.add_output(x);
        aig.add_output(y);
        let (cone, roots) = aig.extract_cone(&[x]);
        assert_eq!(cone.num_ands(), 1);
        assert_eq!(roots.len(), 1);
        // all four inputs are kept (stable input indexing), but only one AND
        assert_eq!(cone.num_inputs(), 4);
    }

    #[test]
    fn full_adder_shape() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        // 6 ANDs for xor3, 4 for maj3 (no sharing in this construction)
        assert_eq!(aig.num_ands(), 10);
        assert_ne!(s.var(), c.var());
    }

    #[test]
    fn edges_match_fanins() {
        let (mut aig, a, b) = two_input_aig();
        let x = aig.and(a, b);
        aig.add_output(x);
        let e = aig.edges();
        assert_eq!(e, vec![(a.var(), x.var()), (b.var(), x.var())]);
    }
}
