//! AIGER file format support (ASCII `aag` and binary `aig`, combinational).
//!
//! The AIGER format is the interchange format used by ABC and the hardware
//! model-checking community. Only combinational networks are supported
//! (latches are rejected), which is all the paper's workloads need.
//!
//! Reading preserves structure exactly (no re-hashing), so a write/read
//! round-trip is the identity on node counts and literals.

use crate::{Aig, Lit, NodeId};
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Errors produced by the AIGER reader.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or syntactic problem, with a description.
    Malformed(String),
    /// The file contains latches, which this reader does not support.
    Sequential,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error: {e}"),
            ParseAigerError::Malformed(m) => write!(f, "malformed aiger file: {m}"),
            ParseAigerError::Sequential => write!(f, "sequential aiger files are not supported"),
        }
    }
}

impl std::error::Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseAigerError {
    ParseAigerError::Malformed(msg.into())
}

/// Writes the AIG in ASCII AIGER (`aag`) format.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_ascii<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    let m = aig.num_nodes() - 1; // maximum variable index
    writeln!(
        w,
        "aag {} {} 0 {} {}",
        m,
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    )?;
    for &i in aig.inputs() {
        writeln!(w, "{}", i.lit().raw())?;
    }
    for &o in aig.outputs() {
        writeln!(w, "{}", o.raw())?;
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        writeln!(w, "{} {} {}", n.lit().raw(), f0.raw(), f1.raw())?;
    }
    if !aig.name().is_empty() {
        writeln!(w, "c")?;
        writeln!(w, "{}", aig.name())?;
    }
    Ok(())
}

/// Writes the AIG in binary AIGER (`aig`) format.
///
/// Binary AIGER requires inputs to occupy the lowest variable indices; if
/// this AIG interleaves inputs and AND nodes the function renumbers
/// internally (function-preserving).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_binary<W: Write>(aig: &Aig, mut w: W) -> io::Result<()> {
    // Renumber so inputs come first (identity if already canonical).
    let mut order: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next = 1u32;
    for &i in aig.inputs() {
        order[i.index()] = next;
        next += 1;
    }
    for n in aig.and_ids() {
        order[n.index()] = next;
        next += 1;
    }
    let map = |l: Lit| -> u32 { order[l.var().index()] << 1 | l.is_complement() as u32 };

    let m = aig.num_nodes() - 1;
    writeln!(
        w,
        "aig {} {} 0 {} {}",
        m,
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    )?;
    for &o in aig.outputs() {
        writeln!(w, "{}", map(o))?;
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        let lhs = order[n.index()] << 1;
        let (r0, r1) = (map(f0).max(map(f1)), map(f0).min(map(f1)));
        debug_assert!(lhs > r0 && r0 >= r1);
        write_delta(&mut w, lhs - r0)?;
        write_delta(&mut w, r0 - r1)?;
    }
    if !aig.name().is_empty() {
        writeln!(w, "c")?;
        writeln!(w, "{}", aig.name())?;
    }
    Ok(())
}

fn write_delta<W: Write>(w: &mut W, mut delta: u32) -> io::Result<()> {
    loop {
        let mut byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta != 0 {
            byte |= 0x80;
        }
        w.write_all(&[byte])?;
        if delta == 0 {
            return Ok(());
        }
    }
}

fn read_delta<R: Read>(r: &mut R) -> Result<u32, ParseAigerError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 32 {
            return Err(malformed("delta overflow"));
        }
        value |= ((byte[0] & 0x7F) as u32) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads an AIGER file, auto-detecting ASCII vs binary from the header.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on I/O failure, malformed content, or
/// sequential (latch-bearing) files.
pub fn read<R: BufRead>(mut r: R) -> Result<Aig, ParseAigerError> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 {
        return Err(malformed("header must be '<fmt> M I L O A'"));
    }
    let parse = |s: &str| -> Result<u32, ParseAigerError> {
        s.parse()
            .map_err(|_| malformed(format!("bad number '{s}'")))
    };
    let (m, i, l, o, a) = (
        parse(fields[1])?,
        parse(fields[2])?,
        parse(fields[3])?,
        parse(fields[4])?,
        parse(fields[5])?,
    );
    if l != 0 {
        return Err(ParseAigerError::Sequential);
    }
    if m != i + a {
        return Err(malformed(format!("M ({m}) != I ({i}) + A ({a})")));
    }
    match fields[0] {
        "aag" => read_ascii_body(r, i, o, a),
        "aig" => read_binary_body(r, i, o, a),
        other => Err(malformed(format!("unknown format '{other}'"))),
    }
}

fn read_ascii_body<R: BufRead>(
    mut r: R,
    num_in: u32,
    num_out: u32,
    num_and: u32,
) -> Result<Aig, ParseAigerError> {
    let mut read_line = |expect: &str| -> Result<String, ParseAigerError> {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(malformed(format!(
                "unexpected end of file reading {expect}"
            )));
        }
        Ok(line.trim().to_string())
    };
    let mut aig = Aig::with_capacity((num_in + num_and) as usize + 1);
    // Inputs must be the literals 2, 4, ... in order.
    for k in 0..num_in {
        let line = read_line("input")?;
        let lit: u32 = line.parse().map_err(|_| malformed("bad input literal"))?;
        if lit != (k + 1) * 2 {
            return Err(malformed(format!(
                "input {k} has literal {lit}; this reader requires canonical input numbering"
            )));
        }
        aig.add_input();
    }
    let mut outputs = Vec::with_capacity(num_out as usize);
    for _ in 0..num_out {
        let line = read_line("output")?;
        let lit: u32 = line.parse().map_err(|_| malformed("bad output literal"))?;
        outputs.push(lit);
    }
    let base = num_in + 1;
    for k in 0..num_and {
        let line = read_line("and gate")?;
        let mut parts = line.split_whitespace();
        let mut next = || -> Result<u32, ParseAigerError> {
            parts
                .next()
                .ok_or_else(|| malformed("truncated and line"))?
                .parse()
                .map_err(|_| malformed("bad and literal"))
        };
        let (lhs, rhs0, rhs1) = (next()?, next()?, next()?);
        if lhs != (base + k) * 2 {
            return Err(malformed(format!(
                "and gate {k} has lhs {lhs}; expected {} (ordered file required)",
                (base + k) * 2
            )));
        }
        if rhs0 >= lhs || rhs1 >= lhs {
            return Err(malformed("forward reference in and gate"));
        }
        aig.push_and_raw(Lit::from_raw(rhs0), Lit::from_raw(rhs1));
    }
    for lit in outputs {
        if lit / 2 > num_in + num_and {
            return Err(malformed("output literal out of range"));
        }
        aig.add_output(Lit::from_raw(lit));
    }
    Ok(aig)
}

fn read_binary_body<R: BufRead>(
    mut r: R,
    num_in: u32,
    num_out: u32,
    num_and: u32,
) -> Result<Aig, ParseAigerError> {
    let mut aig = Aig::with_capacity((num_in + num_and) as usize + 1);
    for _ in 0..num_in {
        aig.add_input();
    }
    let mut outputs = Vec::with_capacity(num_out as usize);
    for _ in 0..num_out {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(malformed("unexpected end of file reading outputs"));
        }
        let lit: u32 = line
            .trim()
            .parse()
            .map_err(|_| malformed("bad output literal"))?;
        outputs.push(lit);
    }
    for k in 0..num_and {
        let lhs = (num_in + 1 + k) * 2;
        let d0 = read_delta(&mut r)?;
        let d1 = read_delta(&mut r)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| malformed("delta0 underflow"))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| malformed("delta1 underflow"))?;
        aig.push_and_raw(Lit::from_raw(rhs0), Lit::from_raw(rhs1));
    }
    for lit in outputs {
        if lit / 2 > num_in + num_and {
            return Err(malformed("output literal out of range"));
        }
        aig.add_output(Lit::from_raw(lit));
    }
    Ok(aig)
}

impl Aig {
    /// Inserts an AND node without strashing or folding (AIGER reader path).
    /// Registers it in the strash table if the key is free so later
    /// [`Aig::and`] calls can still share it.
    pub(crate) fn push_and_raw(&mut self, a: Lit, b: Lit) -> NodeId {
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let id = NodeId::new(self.num_nodes() as u32);
        self.push_node_raw(a, b);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(!c);
        aig.set_name("fa3");
        aig
    }

    #[test]
    fn ascii_roundtrip_preserves_structure() {
        let aig = sample_aig();
        let mut buf = Vec::new();
        write_ascii(&aig, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert_eq!(back.outputs(), aig.outputs());
        assert!(sim::random_equivalence_check(&aig, &back, 4, 1).is_ok());
    }

    #[test]
    fn binary_roundtrip_preserves_function() {
        let aig = sample_aig();
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(back.num_ands(), aig.num_ands());
        assert!(sim::random_equivalence_check(&aig, &back, 8, 2).is_ok());
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        match read(text.as_bytes()) {
            Err(ParseAigerError::Sequential) => {}
            other => panic!("expected Sequential, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read("bogus 1 2 3".as_bytes()).is_err());
        assert!(read("aag 5 2 0 1".as_bytes()).is_err());
        // M != I + A
        assert!(read("aag 9 2 0 1 3\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_forward_reference() {
        // and gate referencing literal 8 (variable 4) before it exists
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 8 2\n";
        assert!(matches!(
            read(text.as_bytes()),
            Err(ParseAigerError::Malformed(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = malformed("odd literal");
        assert!(e.to_string().contains("odd literal"));
        assert!(ParseAigerError::Sequential
            .to_string()
            .contains("sequential"));
    }

    #[test]
    fn delta_coding_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 1 << 20, u32::MAX / 2] {
            let mut buf = Vec::new();
            write_delta(&mut buf, v).unwrap();
            let got = read_delta(&mut &buf[..]).unwrap();
            assert_eq!(got, v);
        }
    }
}
