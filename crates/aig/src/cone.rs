//! Per-node canonical *cone descriptors* — the admission-time keys of the
//! cone-level prediction cache in `gamora-serve`.
//!
//! A descriptor condenses a node's local 2-deep cut (its fanins expanded one
//! level, the strash idiom) into two independent 64-bit channels:
//!
//! * **`base`** — a structural word folding the node's feature bits
//!   (AND flag + fanin complement edges, exactly what the GNN feature
//!   encoder sees) with the truth table of the cut cone over its sorted
//!   leaves, evaluated with the standard variable words from [`crate::tt`].
//! * **`sim`** — the same cone evaluated on deterministic seeded simulation
//!   words ([`crate::sim::seeded_word`]), fraig-style. Structurally a second
//!   hash channel: a collision in the structural channel is almost surely
//!   disambiguated here, so a cone-cache key carries both words.
//!
//! Descriptors are deliberately **position-independent**: an input
//! contributes no input-position information, so the same adder cone at bit
//! 3 of one multiplier and bit 17 of another produces identical
//! descriptors. The serve layer turns descriptors into sound cache keys by
//! Weisfeiler-Leman refinement over the *actual* batch graph
//! (`gamora_gnn::Graph::refine_keys`) for as many rounds as the model has
//! message-passing layers — equal refined keys then imply bit-identical
//! embedding rows, because each GNN layer reads exactly the node's own
//! state plus its CSR-ordered neighbourhood.

use crate::hasher::{combine, mix64};
use crate::sim::seeded_word;
use crate::{tt, Aig, Lit, NodeKind};

/// Default seed of the simulation-signature channel. Serving keys must be
/// produced with one fixed seed per cache (both sides of a probe must
/// agree), so the serve layer uses this constant.
pub const DEFAULT_CONE_SEED: u64 = 0xC0DE_5EED_0000_0001;

const CONE_INPUT_TAG: u64 = 0x1EAF_0000_0000_0011;
const CONE_CONST_TAG: u64 = 0xC057_1EAF_0000_0012;
const CONE_AND_TAG: u64 = 0x0A2D_0000_0000_0013;

/// Widest possible 2-deep cut: both fanins expand to two leaves each.
const MAX_LEAVES: usize = 4;

/// The two key channels of one node's cone. See the module docs.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ConeDescriptor {
    /// Structural channel: feature bits + cut truth table (pre-refinement).
    pub base: u64,
    /// Seeded simulation-signature channel (never refined; cone-local).
    pub sim: u64,
}

/// Computes every node's [`ConeDescriptor`]; see [`cone_descriptors_into`].
pub fn cone_descriptors(aig: &Aig, seed: u64) -> Vec<ConeDescriptor> {
    let mut out = Vec::new();
    cone_descriptors_into(aig, seed, &mut out);
    out
}

/// Computes every node's [`ConeDescriptor`] into a caller buffer —
/// allocation-free once `out` has warmed to the subject's node count, so
/// the serve-path cone probe obeys the alloc-regression contract.
///
/// O(1) work per node: the 2-deep cut needs no cut enumeration, and both
/// channel words come from one inline evaluation of the at-most-3-AND cone.
pub fn cone_descriptors_into(aig: &Aig, seed: u64, out: &mut Vec<ConeDescriptor>) {
    out.clear();
    out.resize(aig.num_nodes(), ConeDescriptor::default());
    let sim_leaf_words: [u64; MAX_LEAVES] = std::array::from_fn(|k| seeded_word(seed, k as u64));
    let sim_const_word = mix64(seed ^ CONE_CONST_TAG);
    for n in aig.node_ids() {
        out[n.index()] = match aig.kind(n) {
            NodeKind::Input => ConeDescriptor {
                base: mix64(CONE_INPUT_TAG),
                sim: mix64(seed ^ CONE_INPUT_TAG),
            },
            NodeKind::Const0 => ConeDescriptor {
                base: mix64(CONE_CONST_TAG),
                sim: sim_const_word,
            },
            NodeKind::And => {
                let (f0, f1) = aig.fanins(n);

                // Sorted, deduplicated leaf set of the 2-deep cut: an AND
                // fanin contributes its own fanin variables, anything else
                // contributes itself.
                let mut leaves = [u32::MAX; MAX_LEAVES];
                let mut len = 0usize;
                for f in [f0, f1] {
                    let v = f.var();
                    if aig.is_and(v) {
                        let (g0, g1) = aig.fanins(v);
                        push_leaf(&mut leaves, &mut len, g0.var().as_u32());
                        push_leaf(&mut leaves, &mut len, g1.var().as_u32());
                    } else {
                        push_leaf(&mut leaves, &mut len, v.as_u32());
                    }
                }
                let leaves = &leaves[..len];

                let tt_word = eval_cone(aig, f0, f1, leaves, |rank, v| {
                    if aig.kind(v) == NodeKind::Const0 {
                        0
                    } else {
                        tt::var(rank)
                    }
                });
                let sim_word = eval_cone(aig, f0, f1, leaves, |rank, v| {
                    if aig.kind(v) == NodeKind::Const0 {
                        sim_const_word
                    } else {
                        sim_leaf_words[rank]
                    }
                });

                // Feature bits mirror the GNN's node features exactly:
                // is-AND plus the two fanin complement edges.
                let feature_bits = 1u64
                    | (u64::from(f0.is_complement()) << 1)
                    | (u64::from(f1.is_complement()) << 2);
                ConeDescriptor {
                    base: combine(CONE_AND_TAG ^ ((len as u64) << 3) ^ feature_bits, tt_word),
                    sim: sim_word,
                }
            }
        };
    }
}

/// Sorted insert with dedup into the fixed leaf array.
#[inline]
fn push_leaf(leaves: &mut [u32; MAX_LEAVES], len: &mut usize, v: u32) {
    let mut i = 0;
    while i < *len {
        if leaves[i] == v {
            return;
        }
        if leaves[i] > v {
            break;
        }
        i += 1;
    }
    debug_assert!(*len < MAX_LEAVES);
    leaves.copy_within(i..*len, i + 1);
    leaves[i] = v;
    *len += 1;
}

/// Evaluates the 2-deep cone of an AND node on arbitrary leaf words.
/// `word_of(rank, var)` supplies the word of the leaf with the given rank
/// in the sorted leaf set.
#[inline]
fn eval_cone(
    aig: &Aig,
    f0: Lit,
    f1: Lit,
    leaves: &[u32],
    word_of: impl Fn(usize, crate::NodeId) -> u64,
) -> u64 {
    let eval_leaf = |l: Lit| -> u64 {
        let v = l.var();
        let rank = leaves.iter().position(|&x| x == v.as_u32()).unwrap_or(0);
        let w = word_of(rank, v);
        if l.is_complement() {
            !w
        } else {
            w
        }
    };
    let eval_fanin = |f: Lit| -> u64 {
        let v = f.var();
        let w = if aig.is_and(v) {
            let (g0, g1) = aig.fanins(v);
            eval_leaf(g0) & eval_leaf(g1)
        } else {
            let rank = leaves.iter().position(|&x| x == v.as_u32()).unwrap_or(0);
            word_of(rank, v)
        };
        if f.is_complement() {
            !w
        } else {
            w
        }
    };
    eval_fanin(f0) & eval_fanin(f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    /// One full adder rooted at fresh inputs; `extra` leading inputs shift
    /// every input position without changing local structure.
    fn adder_with_offset(extra: usize) -> (Aig, usize) {
        let mut aig = Aig::new();
        aig.add_inputs(extra);
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let first_new = aig.num_nodes();
        let (s, co) = aig.full_adder(a, b, c);
        aig.add_output(s);
        aig.add_output(co);
        (aig, first_new)
    }

    #[test]
    fn descriptors_are_input_position_independent() {
        let (a, a0) = adder_with_offset(0);
        let (b, b0) = adder_with_offset(7);
        let da = cone_descriptors(&a, DEFAULT_CONE_SEED);
        let db = cone_descriptors(&b, DEFAULT_CONE_SEED);
        // The adder bodies are node-for-node identical despite different
        // input positions and node numbering offsets.
        assert_eq!(da.len() - a0, db.len() - b0);
        for i in 0..(da.len() - a0) {
            assert_eq!(da[a0 + i], db[b0 + i], "adder node {i} diverged");
        }
    }

    #[test]
    fn descriptors_distinguish_structure_and_complements() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let and = aig.and(a, b);
        let nor = aig.and(!a, !b);
        let x = aig.xor(a, b);
        aig.add_output(and);
        aig.add_output(nor);
        aig.add_output(x);
        let d = cone_descriptors(&aig, DEFAULT_CONE_SEED);
        let (dand, dnor, dx) = (
            d[and.var().index()],
            d[nor.var().index()],
            d[x.var().index()],
        );
        assert_ne!(dand.base, dnor.base, "complement edges must differ");
        assert_ne!(dand.base, dx.base, "xor root must differ from and");
        assert_ne!(dand.sim, dnor.sim);
        assert_ne!(dand.sim, dx.sim);
    }

    #[test]
    fn sim_channel_is_seed_sensitive_and_reuse_is_stable() {
        let (aig, _) = adder_with_offset(0);
        let d1 = cone_descriptors(&aig, 11);
        let d2 = cone_descriptors(&aig, 12);
        let bases1: Vec<u64> = d1.iter().map(|d| d.base).collect();
        let bases2: Vec<u64> = d2.iter().map(|d| d.base).collect();
        assert_eq!(bases1, bases2, "structural channel is seed-independent");
        assert!(
            d1.iter().zip(&d2).any(|(x, y)| x.sim != y.sim),
            "sim channel must vary with the seed"
        );
        // Buffer reuse with stale longer contents.
        let mut buf = cone_descriptors(&aig, 11);
        buf.resize(500, ConeDescriptor::default());
        cone_descriptors_into(&aig, 11, &mut buf);
        assert_eq!(buf, d1);
    }
}
