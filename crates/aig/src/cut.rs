//! K-feasible cut enumeration with truth-table computation.
//!
//! A *cut* of node `n` is a set of nodes (leaves) whose values completely
//! determine `n`; a cut is K-feasible if it has at most K leaves. Cuts are
//! enumerated bottom-up by merging fanin cuts, and each cut carries the truth
//! table of the node expressed over its (sorted) leaves — the machinery both
//! ABC and this reproduction use to detect XOR3/MAJ3 roots and to match
//! standard cells.

use crate::tt;
use crate::{Aig, Lit, NodeId};

/// Maximum number of leaves a cut can have.
pub const MAX_CUT_SIZE: usize = 6;

/// A cut: sorted leaf set plus the truth table of the root over the leaves.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Cut {
    leaves: [u32; MAX_CUT_SIZE],
    len: u8,
    /// Truth table of the root over `leaves()` (leaf `i` = variable `i`).
    pub tt: u64,
}

impl Cut {
    /// The constant cut (no leaves) with the given constant table.
    fn constant(tt: u64) -> Cut {
        Cut {
            leaves: [0; MAX_CUT_SIZE],
            len: 0,
            tt,
        }
    }

    /// The trivial cut `{n}` whose function is the projection on `n`.
    pub fn trivial(n: NodeId) -> Cut {
        let mut leaves = [0; MAX_CUT_SIZE];
        leaves[0] = n.as_u32();
        Cut {
            leaves,
            len: 1,
            tt: tt::var(0) & tt::mask(1),
        }
    }

    /// The sorted leaf node indices.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the constant cut (no leaves).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is a trivial single-leaf cut of `n`.
    pub fn is_trivial_of(&self, n: NodeId) -> bool {
        self.len == 1 && self.leaves[0] == n.as_u32()
    }

    /// Whether every leaf of `self` is also a leaf of `other`.
    pub fn subsumes(&self, other: &Cut) -> bool {
        if self.len > other.len {
            return false;
        }
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j == b.len() || b[j] != x {
                return false;
            }
        }
        true
    }

    /// Merges two sorted leaf sets if the union fits in `k` leaves.
    fn merge_leaves(a: &Cut, b: &Cut, k: usize) -> Option<([u32; MAX_CUT_SIZE], u8)> {
        let mut out = [0u32; MAX_CUT_SIZE];
        let (la, lb) = (a.leaves(), b.leaves());
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < la.len() || j < lb.len() {
            let next = if j == lb.len() || (i < la.len() && la[i] <= lb[j]) {
                if j < lb.len() && la[i] == lb[j] {
                    j += 1;
                }
                let v = la[i];
                i += 1;
                v
            } else {
                let v = lb[j];
                j += 1;
                v
            };
            if n == k {
                return None;
            }
            out[n] = next;
            n += 1;
        }
        Some((out, n as u8))
    }
}

/// Expands `tt` (a table over `pos.len()` variables) onto a `k`-variable
/// table where original variable `i` sits at position `pos[i]`.
fn expand(tt_small: u64, pos: &[usize], k: usize) -> u64 {
    let mut out = 0u64;
    for m in 0..(1u64 << k) {
        let mut fm = 0usize;
        for (i, &p) in pos.iter().enumerate() {
            fm |= (((m >> p) & 1) as usize) << i;
        }
        out |= ((tt_small >> fm) & 1) << m;
    }
    out
}

/// Parameters controlling cut enumeration.
#[derive(Copy, Clone, Debug)]
pub struct CutParams {
    /// Maximum leaves per cut (K), at most [`MAX_CUT_SIZE`].
    pub max_leaves: usize,
    /// Maximum number of non-trivial cuts stored per node.
    pub max_cuts: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams {
            max_leaves: 4,
            max_cuts: 8,
        }
    }
}

impl CutParams {
    /// The configuration used for adder extraction (3-feasible cuts).
    pub fn for_adder_extraction() -> Self {
        CutParams {
            max_leaves: 3,
            max_cuts: 10,
        }
    }
}

/// Per-node cut sets produced by [`enumerate_cuts`].
#[derive(Clone, Debug)]
pub struct CutSets {
    cuts: Vec<Vec<Cut>>,
}

impl CutSets {
    /// The cuts of node `n` (trivial cut included, last).
    pub fn of(&self, n: NodeId) -> &[Cut] {
        &self.cuts[n.index()]
    }

    /// Total number of stored cuts (diagnostic).
    pub fn total(&self) -> usize {
        self.cuts.iter().map(Vec::len).sum()
    }
}

/// Enumerates K-feasible cuts with truth tables for every node.
///
/// The constant node gets a single empty cut; inputs get their trivial cut;
/// AND nodes get the pairwise merges of their fanin cuts (deduplicated,
/// subsumption-filtered, capped at `max_cuts` preferring fewer leaves) plus
/// their own trivial cut.
///
/// # Panics
///
/// Panics if `params.max_leaves` exceeds [`MAX_CUT_SIZE`] or is zero.
pub fn enumerate_cuts(aig: &Aig, params: &CutParams) -> CutSets {
    assert!(params.max_leaves >= 1 && params.max_leaves <= MAX_CUT_SIZE);
    let k = params.max_leaves;
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    for n in aig.node_ids() {
        let node_cuts = match aig.kind(n) {
            crate::NodeKind::Const0 => vec![Cut::constant(0)],
            crate::NodeKind::Input => vec![Cut::trivial(n)],
            crate::NodeKind::And => {
                let (f0, f1) = aig.fanins(n);
                let mut merged: Vec<Cut> = Vec::new();
                for c0 in &cuts[f0.var().index()] {
                    for c1 in &cuts[f1.var().index()] {
                        let Some((leaves, len)) = Cut::merge_leaves(c0, c1, k) else {
                            continue;
                        };
                        let leaf_slice = &leaves[..len as usize];
                        let pos0: Vec<usize> = c0
                            .leaves()
                            .iter()
                            .map(|l| leaf_slice.binary_search(l).expect("leaf in union"))
                            .collect();
                        let pos1: Vec<usize> = c1
                            .leaves()
                            .iter()
                            .map(|l| leaf_slice.binary_search(l).expect("leaf in union"))
                            .collect();
                        let nk = len as usize;
                        let mut t0 = expand(c0.tt, &pos0, nk);
                        let mut t1 = expand(c1.tt, &pos1, nk);
                        if f0.is_complement() {
                            t0 = !t0 & tt::mask(nk);
                        }
                        if f1.is_complement() {
                            t1 = !t1 & tt::mask(nk);
                        }
                        merged.push(Cut {
                            leaves,
                            len,
                            tt: t0 & t1,
                        });
                    }
                }
                // Prefer small cuts, dedupe identical leaf sets, drop subsumed.
                merged.sort_by(|a, b| a.len.cmp(&b.len).then(a.leaves().cmp(b.leaves())));
                merged.dedup_by(|a, b| a.leaves() == b.leaves());
                let mut kept: Vec<Cut> = Vec::with_capacity(params.max_cuts + 1);
                for c in merged {
                    if kept.len() >= params.max_cuts {
                        break;
                    }
                    if !kept.iter().any(|p| p.subsumes(&c)) {
                        kept.push(c);
                    }
                }
                kept.push(Cut::trivial(n));
                kept
            }
        };
        cuts.push(node_cuts);
    }
    CutSets { cuts }
}

/// Computes the truth table of `root` over an explicit ordered leaf set by
/// propagating variable tables through the cone.
///
/// Returns `None` if the cone of `root` reaches a primary input that is not
/// among `leaves` (the leaf set is not a cut), or if `leaves` has more than
/// [`tt::MAX_VARS`] entries. Nodes listed in `leaves` are treated as opaque
/// variables even if they are AND gates. The constant node evaluates to 0.
pub fn cone_function(aig: &Aig, root: Lit, leaves: &[NodeId]) -> Option<u64> {
    if leaves.len() > tt::MAX_VARS {
        return None;
    }
    let k = leaves.len();
    let mut memo: std::collections::HashMap<u32, u64, crate::hasher::FxBuildHasher> =
        Default::default();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l.as_u32(), tt::var(i) & tt::mask(k));
    }
    memo.entry(0).or_insert(0);
    // Iterative post-order evaluation.
    let mut stack = vec![root.var()];
    while let Some(&n) = stack.last() {
        if memo.contains_key(&n.as_u32()) {
            stack.pop();
            continue;
        }
        if !aig.is_and(n) {
            return None; // hit a PI outside the leaf set
        }
        let (f0, f1) = aig.fanins(n);
        let m0 = memo.get(&f0.var().as_u32()).copied();
        let m1 = memo.get(&f1.var().as_u32()).copied();
        match (m0, m1) {
            (Some(t0), Some(t1)) => {
                stack.pop();
                let t0 = if f0.is_complement() {
                    !t0 & tt::mask(k)
                } else {
                    t0
                };
                let t1 = if f1.is_complement() {
                    !t1 & tt::mask(k)
                } else {
                    t1
                };
                memo.insert(n.as_u32(), t0 & t1);
            }
            _ => {
                if m0.is_none() {
                    stack.push(f0.var());
                }
                if m1.is_none() {
                    stack.push(f1.var());
                }
            }
        }
    }
    let t = memo[&root.var().as_u32()];
    Some(if root.is_complement() {
        !t & tt::mask(k)
    } else {
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_has_xor_cut() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a.lit(), b.lit());
        aig.add_output(x);
        let cuts = enumerate_cuts(&aig, &CutParams::for_adder_extraction());
        let root_cuts = cuts.of(x.var());
        let found = root_cuts.iter().any(|c| {
            c.leaves() == [a.as_u32(), b.as_u32()]
                && (if x.is_complement() {
                    !c.tt & tt::mask(2)
                } else {
                    c.tt
                }) == tt::XOR2
        });
        assert!(found, "XOR2 cut not found: {root_cuts:?}");
    }

    #[test]
    fn full_adder_has_xor3_and_maj3_cuts() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cuts = enumerate_cuts(&aig, &CutParams::for_adder_extraction());
        let leaf_ids: Vec<u32> = ins.iter().map(|l| l.var().as_u32()).collect();

        let sum_tt = cuts
            .of(s.var())
            .iter()
            .find(|cut| cut.leaves() == leaf_ids)
            .map(|cut| {
                if s.is_complement() {
                    !cut.tt & tt::mask(3)
                } else {
                    cut.tt
                }
            });
        assert_eq!(sum_tt, Some(tt::XOR3));

        let carry_tt = cuts
            .of(c.var())
            .iter()
            .find(|cut| cut.leaves() == leaf_ids)
            .map(|cut| {
                if c.is_complement() {
                    !cut.tt & tt::mask(3)
                } else {
                    cut.tt
                }
            });
        assert_eq!(carry_tt, Some(tt::MAJ3));
    }

    #[test]
    fn trivial_cut_present() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a.lit(), b.lit());
        let cuts = enumerate_cuts(&aig, &CutParams::default());
        assert!(cuts.of(x.var()).iter().any(|c| c.is_trivial_of(x.var())));
        assert!(cuts.of(a).iter().any(|c| c.is_trivial_of(a)));
    }

    #[test]
    fn subsumption_filters() {
        let a = Cut::trivial(NodeId::new(5));
        let mut big = Cut::trivial(NodeId::new(5));
        big.leaves[1] = 9;
        big.len = 2;
        assert!(a.subsumes(&big));
        assert!(!big.subsumes(&a));
        assert!(a.subsumes(&a));
    }

    #[test]
    fn cone_function_matches_cut_enumeration() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, _) = aig.full_adder(ins[0], ins[1], ins[2]);
        let leaves: Vec<NodeId> = ins.iter().map(|l| l.var()).collect();
        let f = cone_function(&aig, s, &leaves).expect("cut");
        assert_eq!(f, tt::XOR3);
        // complemented root complements the function
        let g = cone_function(&aig, !s, &leaves).expect("cut");
        assert_eq!(g, !tt::XOR3 & tt::mask(3));
    }

    #[test]
    fn cone_function_rejects_non_cut() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a.lit(), b.lit());
        // b is missing from the leaf set
        assert_eq!(cone_function(&aig, x, &[a]), None);
    }

    #[test]
    fn constant_cone() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        assert_eq!(cone_function(&aig, Lit::FALSE, &[a]), Some(0));
        assert_eq!(cone_function(&aig, Lit::TRUE, &[a]), Some(tt::mask(1)));
    }

    #[test]
    fn cut_count_bounded() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(8);
        let x = aig.xor_multi(&ins);
        aig.add_output(x);
        let params = CutParams {
            max_leaves: 4,
            max_cuts: 6,
        };
        let cuts = enumerate_cuts(&aig, &params);
        for n in aig.node_ids() {
            assert!(cuts.of(n).len() <= params.max_cuts + 1);
            for c in cuts.of(n) {
                assert!(c.len() <= params.max_leaves);
            }
        }
    }
}
