//! Graphviz DOT export for small AIGs (debugging and figures).

use crate::{Aig, NodeId, NodeKind};
use std::fmt::Write;

/// Renders the AIG as a Graphviz digraph. `label` can attach an extra line
/// (for example a predicted class) to each node; return `None` for no label.
///
/// Inverted fanin edges are drawn dashed, matching the paper's Figure 1.
pub fn to_dot(aig: &Aig, mut label: impl FnMut(NodeId) -> Option<String>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph aig {{");
    let _ = writeln!(s, "  rankdir=BT;");
    for n in aig.node_ids() {
        let (shape, base) = match aig.kind(n) {
            NodeKind::Const0 => ("box", "0".to_string()),
            NodeKind::Input => ("triangle", format!("i{}", n.index())),
            NodeKind::And => ("ellipse", format!("{}", n.index())),
        };
        if aig.kind(n) == NodeKind::Const0 && aig.fanout_counts()[0] == 0 {
            continue; // hide an unused constant
        }
        let text = match label(n) {
            Some(extra) => format!("{base}\\n{extra}"),
            None => base,
        };
        let _ = writeln!(s, "  n{} [shape={shape}, label=\"{text}\"];", n.index());
    }
    for n in aig.and_ids() {
        let (f0, f1) = aig.fanins(n);
        for f in [f0, f1] {
            let style = if f.is_complement() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(s, "  n{} -> n{}{style};", f.var().index(), n.index());
        }
    }
    for (i, o) in aig.outputs().iter().enumerate() {
        let style = if o.is_complement() {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(s, "  o{i} [shape=invtriangle, label=\"o{i}\"];");
        let _ = writeln!(s, "  n{} -> o{i} [color=blue{style}];", o.var().index());
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_dashed_inverters() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let o = aig.or(a, b); // or = !(AND(!a,!b)) — dashed edges inside
        aig.add_output(o);
        let dot = to_dot(&aig, |_| None);
        assert!(dot.contains("digraph aig"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("invtriangle"));
    }

    #[test]
    fn labels_are_attached() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        aig.add_output(a);
        let dot = to_dot(&aig, |n| (n.index() == 1).then(|| "XOR".to_string()));
        assert!(dot.contains("XOR"));
    }
}
