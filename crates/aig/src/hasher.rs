//! A fast, non-cryptographic hasher for structural hashing tables, and the
//! whole-graph [`structural_fingerprint`] used as a prediction-cache key.
//!
//! Building multi-million-node AIGs performs one hash-map probe per created
//! AND gate, so the default SipHash is a measurable cost. This is a simple
//! Fx-style multiply-xor hasher (the same construction used by rustc);
//! it is *not* DoS-resistant and is only used for internal tables keyed by
//! node indices we produced ourselves.

use crate::{Aig, NodeKind};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over machine words.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// SplitMix64 finaliser: full-avalanche mixing of one word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Combines two words order-sensitively with full avalanche.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(32))
}

const INPUT_TAG: u64 = 0x1157_0000_0000_0001;
const CONST_TAG: u64 = 0xC057_0000_0000_0002;
const COMPLEMENT_TAG: u64 = 0xF11F_9E37_79B9_7F4A;

/// A canonical whole-graph structural hash, the prediction-cache key of
/// `gamora-serve`.
///
/// Every node receives a hash derived purely from its *function-relevant
/// structure*: constants and input positions at the leaves, and for each
/// AND gate the **unordered** pair of (fanin hash, complement flag)
/// operands. The fingerprint digests the input count and the ordered,
/// complement-aware output literals.
///
/// Consequently the fingerprint is invariant under
///
/// * node renumbering (any topological relabelling, e.g. a binary-AIGER
///   round trip that moves inputs to the lowest indices), and
/// * fanin order within an AND gate (AND is commutative);
///
/// while distinguishing complement edges, output order, and input order —
/// the things that change what a served prediction means. Two AIGs with
/// equal fingerprints have isomorphic *reachable* logic per output, so
/// cached per-node predictions transfer between them only via their own
/// node numbering; `gamora-serve` therefore keys on the fingerprint *and*
/// the node count, and callers submitting structurally identical graphs
/// (the common repeated-netlist case) get exact reuse.
///
/// Unreferenced (dangling) nodes do not affect the fingerprint.
pub fn structural_fingerprint(aig: &Aig) -> u64 {
    fingerprint_from_node_hashes(aig, &structural_node_hashes(aig))
}

/// The per-node canonical hashes underlying [`structural_fingerprint`]:
/// each node's hash is a pure function of its input-position-rooted cone
/// (renumber- and fanin-order-invariant). `gamora-serve` uses these to
/// transfer cached per-node predictions onto an isomorphic, differently
/// numbered resubmission.
pub fn structural_node_hashes(aig: &Aig) -> Vec<u64> {
    let mut node_hash = vec![0u64; aig.num_nodes()];
    seed_leaf_hashes(aig, &mut node_hash);
    for n in aig.node_ids() {
        if aig.kind(n) == NodeKind::And {
            node_hash[n.index()] = and_hash(aig, n, &node_hash);
        }
    }
    node_hash
}

/// Seeds the level-0 entries (inputs by position, the constant) of a
/// node-hash buffer.
fn seed_leaf_hashes(aig: &Aig, node_hash: &mut [u64]) {
    // Input position, not node index: renumber-invariant.
    for (pos, &input) in aig.inputs().iter().enumerate() {
        node_hash[input.index()] = mix64(INPUT_TAG ^ (pos as u64));
    }
    for n in aig.node_ids() {
        if aig.kind(n) == NodeKind::Const0 {
            node_hash[n.index()] = mix64(CONST_TAG);
        }
    }
}

/// The canonical hash of one AND node from its fanins' hashes and
/// complement flags — the pure per-node function both the serial and the
/// levelized parallel pass apply.
#[inline]
fn and_hash_parts(mut a: u64, f0c: bool, mut b: u64, f1c: bool) -> u64 {
    if f0c {
        a = mix64(a ^ COMPLEMENT_TAG);
    }
    if f1c {
        b = mix64(b ^ COMPLEMENT_TAG);
    }
    // Sort the operand hashes: AND is commutative.
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    combine(lo, hi)
}

#[inline]
fn and_hash(aig: &Aig, n: crate::NodeId, node_hash: &[u64]) -> u64 {
    let (f0, f1) = aig.fanins(n);
    and_hash_parts(
        node_hash[f0.var().index()],
        f0.is_complement(),
        node_hash[f1.var().index()],
        f1.is_complement(),
    )
}

/// Below this node count the levelized parallel pass falls back to the
/// serial one: barrier overhead would dominate the hash work.
pub const PARALLEL_HASH_MIN_NODES: usize = 1 << 14;

/// [`structural_node_hashes`] computed by a levelized wavefront over scoped
/// threads — **bit-identical** to the serial pass, since every node's hash
/// is a pure function of its fanins' hashes and a level-`l` wave only reads
/// levels `< l` (sequenced by a barrier).
///
/// `threads` is the caller's intra-subject budget (`gamora-serve` passes the
/// worker's `intra_threads` allowance); with `threads <= 1` or fewer than
/// [`PARALLEL_HASH_MIN_NODES`] nodes this *is* the serial pass.
pub fn structural_node_hashes_parallel(aig: &Aig, threads: usize) -> Vec<u64> {
    let n = aig.num_nodes();
    if threads <= 1 || n < PARALLEL_HASH_MIN_NODES {
        return structural_node_hashes(aig);
    }

    // Bucket nodes by logic level (counting sort, stable in node order).
    let levels = aig.levels();
    let max_level = levels.iter().copied().max().unwrap_or(0) as usize;
    let mut offsets = vec![0u32; max_level + 2];
    for &l in &levels {
        offsets[l as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut order = vec![0u32; n];
    let mut cursor: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
    for (i, &l) in levels.iter().enumerate() {
        order[cursor[l as usize] as usize] = i as u32;
        cursor[l as usize] += 1;
    }

    let mut node_hash = vec![0u64; n];
    seed_leaf_hashes(aig, &mut node_hash);

    // Every wave writes a disjoint set of slots (this level's nodes) and
    // reads only strictly lower levels, which the barrier has already
    // published — so the raw shared pointer is race-free.
    struct SharedHashes(*mut u64);
    unsafe impl Sync for SharedHashes {}
    let shared = SharedHashes(node_hash.as_mut_ptr());
    let shared = &shared;
    let order = &order[..];
    let offsets = &offsets[..];
    let barrier = std::sync::Barrier::new(threads);
    let barrier = &barrier;

    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for level in 1..=max_level {
                    let lo = offsets[level] as usize;
                    let hi = offsets[level + 1] as usize;
                    let len = hi - lo;
                    let begin = lo + t * len / threads;
                    let end = lo + (t + 1) * len / threads;
                    for &node in &order[begin..end] {
                        let id = crate::NodeId::new(node);
                        debug_assert!(aig.is_and(id));
                        let (f0, f1) = aig.fanins(id);
                        // SAFETY: fanins live at strictly lower levels,
                        // published by the previous barrier; `node` is
                        // written by exactly this thread in this wave.
                        let h = unsafe {
                            and_hash_parts(
                                *shared.0.add(f0.var().index()),
                                f0.is_complement(),
                                *shared.0.add(f1.var().index()),
                                f1.is_complement(),
                            )
                        };
                        unsafe { *shared.0.add(node as usize) = h };
                    }
                    barrier.wait();
                }
            });
        }
    });
    node_hash
}

/// Digests pre-computed [`structural_node_hashes`] into the whole-graph
/// fingerprint (input count plus ordered, complement-aware outputs).
pub fn fingerprint_from_node_hashes(aig: &Aig, node_hash: &[u64]) -> u64 {
    let mut acc = mix64(aig.num_inputs() as u64 ^ 0xA16_0000_0000_0003);
    for &o in aig.outputs() {
        let mut h = node_hash[o.var().index()];
        if o.is_complement() {
            h = mix64(h ^ COMPLEMENT_TAG);
        }
        acc = combine(acc, h);
    }
    acc
}

/// An *order-sensitive* exact structural hash: two AIGs share it only if
/// they have identical node numbering, kinds, fanin literals, and outputs.
/// Where [`structural_fingerprint`] answers "same circuit up to
/// renumbering?", this answers "byte-identical structure?" — the test
/// `gamora-serve` uses to decide whether cached per-node predictions can
/// be served verbatim (identical numbering) or must be transferred through
/// canonical node hashes.
pub fn identity_fingerprint(aig: &Aig) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(aig.num_nodes());
    h.write_usize(aig.num_inputs());
    for &i in aig.inputs() {
        h.write_u32(i.as_u32());
    }
    for n in aig.node_ids() {
        if aig.kind(n) == NodeKind::And {
            let (f0, f1) = aig.fanins(n);
            h.write_u32(n.as_u32());
            h.write_u32(f0.raw());
            h.write_u32(f1.raw());
        }
    }
    for &o in aig.outputs() {
        h.write_u32(o.raw());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_mostly() {
        let mut set = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            set.insert(h.finish());
        }
        // A decent hash of 10k distinct words should produce 10k distinct values.
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i * 2);
        }
        assert_eq!(m.get(&(41, 42)), Some(&82));
        assert_eq!(m.len(), 1000);
    }

    fn full_adder_aig() -> Aig {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        aig
    }

    #[test]
    fn fingerprint_is_deterministic_and_rebuild_stable() {
        assert_eq!(
            structural_fingerprint(&full_adder_aig()),
            structural_fingerprint(&full_adder_aig())
        );
    }

    #[test]
    fn fingerprint_survives_binary_aiger_renumbering() {
        // write_binary renumbers inputs to the lowest indices; the reloaded
        // AIG is isomorphic but differently numbered.
        let aig = full_adder_aig();
        let mut buf = Vec::new();
        crate::aiger::write_binary(&aig, &mut buf).unwrap();
        let back = crate::aiger::read(&buf[..]).unwrap();
        assert_eq!(structural_fingerprint(&aig), structural_fingerprint(&back));
    }

    #[test]
    fn fingerprint_distinguishes_function_changes() {
        let base = structural_fingerprint(&full_adder_aig());

        // Complementing an output changes the function.
        let mut flipped = full_adder_aig();
        let out = flipped.outputs()[1];
        flipped.set_output(1, !out);
        assert_ne!(base, structural_fingerprint(&flipped));

        // Swapping output order changes the word-level meaning.
        let mut swapped = Aig::new();
        let ins = swapped.add_inputs(3);
        let (s, c) = swapped.full_adder(ins[0], ins[1], ins[2]);
        swapped.add_output(c);
        swapped.add_output(s);
        assert_ne!(base, structural_fingerprint(&swapped));

        // A different circuit entirely.
        let mut xor = Aig::new();
        let ins = xor.add_inputs(2);
        let x = xor.xor(ins[0], ins[1]);
        xor.add_output(x);
        assert_ne!(base, structural_fingerprint(&xor));
    }

    #[test]
    fn identity_fingerprint_is_numbering_sensitive() {
        let aig = full_adder_aig();
        assert_eq!(
            identity_fingerprint(&aig),
            identity_fingerprint(&full_adder_aig())
        );
        // A binary AIGER round trip renumbers: canonical fingerprint holds,
        // identity fingerprint (usually) does not need to — but structure
        // read back from ASCII AIGER written from a canonical AIG is
        // numbering-identical.
        let mut buf = Vec::new();
        crate::aiger::write_ascii(&aig, &mut buf).unwrap();
        let back = crate::aiger::read(&buf[..]).unwrap();
        assert_eq!(identity_fingerprint(&aig), identity_fingerprint(&back));
    }

    #[test]
    fn node_hashes_align_across_renumbering() {
        let aig = full_adder_aig();
        let mut buf = Vec::new();
        crate::aiger::write_binary(&aig, &mut buf).unwrap();
        let back = crate::aiger::read(&buf[..]).unwrap();
        // The multisets of canonical node hashes agree.
        let mut a = structural_node_hashes(&aig);
        let mut b = structural_node_hashes(&back);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_is_input_arity_sensitive() {
        // Same (empty) logic, different input counts.
        let mut a = Aig::new();
        a.add_inputs(2);
        let mut b = Aig::new();
        b.add_inputs(3);
        assert_ne!(structural_fingerprint(&a), structural_fingerprint(&b));
    }

    #[test]
    fn parallel_node_hashes_are_bit_identical_to_serial() {
        // A layered circuit comfortably above the parallel threshold:
        // interleaved xor/maj chains over 64 inputs.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(64);
        let mut acc = ins[0];
        let mut carry = ins[1];
        for i in 0..((PARALLEL_HASH_MIN_NODES / 6) + 64) {
            let a = ins[i % 64];
            let next = aig.xor3(acc, carry, a);
            carry = aig.maj3(acc, carry, a);
            acc = next;
        }
        aig.add_output(acc);
        aig.add_output(carry);
        assert!(aig.num_nodes() >= PARALLEL_HASH_MIN_NODES);

        let serial = structural_node_hashes(&aig);
        for threads in [2, 3, 4, 7] {
            assert_eq!(
                structural_node_hashes_parallel(&aig, threads),
                serial,
                "levelized pass with {threads} threads diverged"
            );
        }
        // Below-threshold and single-thread calls fall back to serial.
        let small = full_adder_aig();
        assert_eq!(
            structural_node_hashes_parallel(&small, 8),
            structural_node_hashes(&small)
        );
    }

    #[test]
    fn write_bytes_stable() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is more than eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is more than eight bytes");
        assert_eq!(a.finish(), b.finish());
    }
}
