//! A fast, non-cryptographic hasher for structural hashing tables.
//!
//! Building multi-million-node AIGs performs one hash-map probe per created
//! AND gate, so the default SipHash is a measurable cost. This is a simple
//! Fx-style multiply-xor hasher (the same construction used by rustc);
//! it is *not* DoS-resistant and is only used for internal tables keyed by
//! node indices we produced ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over machine words.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_mostly() {
        let mut set = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            set.insert(h.finish());
        }
        // A decent hash of 10k distinct words should produce 10k distinct values.
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i * 2);
        }
        assert_eq!(m.get(&(41, 42)), Some(&82));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn write_bytes_stable() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is more than eight bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is more than eight bytes");
        assert_eq!(a.finish(), b.finish());
    }
}
