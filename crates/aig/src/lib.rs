//! # gamora-aig
//!
//! And-Inverter Graph (AIG) substrate for the Gamora reproduction.
//!
//! An AIG is the uniform Boolean-network representation used throughout
//! modern logic synthesis: every internal node is a two-input AND and every
//! edge may carry an inverter. This crate provides everything the rest of
//! the workspace builds on:
//!
//! * [`Aig`] — structurally hashed construction with constant folding and a
//!   library of derived operators (XOR, MUX, MAJ, adder bitslices, ...);
//! * [`cut`] — K-feasible cut enumeration with truth tables, the engine of
//!   exact function detection and technology mapping;
//! * [`tt`] — truth-table manipulation and exhaustive NPN canonicalisation;
//! * [`sim`] — 64-way bit-parallel simulation and randomised equivalence
//!   checking;
//! * [`aiger`] — ASCII and binary AIGER I/O;
//! * [`dot`] — Graphviz export for figures and debugging.
//!
//! ```
//! use gamora_aig::{Aig, cut, tt};
//! let mut aig = Aig::new();
//! let ins = aig.add_inputs(3);
//! let (sum, carry) = aig.full_adder(ins[0], ins[1], ins[2]);
//! aig.add_output(sum);
//! aig.add_output(carry);
//!
//! // The carry has a 3-feasible cut computing MAJ3 over the inputs.
//! let cuts = cut::enumerate_cuts(&aig, &cut::CutParams::for_adder_extraction());
//! let found = cuts.of(carry.var()).iter().any(|c| {
//!     c.len() == 3 && tt::classify_adder_func(c.tt, 3) == Some(tt::AdderFunc::Maj3)
//! });
//! assert!(found);
//! ```

#![warn(missing_docs)]

mod aig;
pub mod aiger;
pub mod cone;
pub mod cut;
pub mod dot;
pub mod hasher;
mod lit;
pub mod sim;
pub mod tt;

pub use aig::{Aig, AigStats, NodeKind};
pub use lit::{Lit, NodeId};
