//! Literals and node identifiers.
//!
//! An AIG literal packs a node index and a complement flag into a single
//! `u32`, exactly like the AIGER encoding: `lit = 2 * var + complement`.
//! Node 0 is the constant-false node, so [`Lit::FALSE`] is literal `0` and
//! [`Lit::TRUE`] is literal `1`.

use std::fmt;
use std::ops::Not;

/// Identifier of a node inside an [`crate::Aig`].
///
/// Node 0 is always the constant-false node; primary inputs and AND nodes
/// follow in creation order (which is also a topological order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant-false node present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Raw index of this node, usable to index per-node side arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw index as `u32`.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The positive (non-complemented) literal of this node.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A possibly complemented reference to an AIG node.
///
/// ```
/// use gamora_aig::{Lit, NodeId};
/// let a = NodeId::new(3).lit();
/// assert!(!a.is_complement());
/// assert!((!a).is_complement());
/// assert_eq!(!!a, a);
/// assert_eq!(a.var(), NodeId::new(3));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// Constant false (the positive literal of node 0).
    pub const FALSE: Lit = Lit(0);
    /// Constant true (the complemented literal of node 0).
    pub const TRUE: Lit = Lit(1);
    /// Sentinel used internally for "no fanin"; never a valid literal.
    pub(crate) const INVALID: Lit = Lit(u32::MAX);

    /// Creates a literal from a node and a complement flag.
    #[inline]
    pub fn new(var: NodeId, complement: bool) -> Self {
        Lit(var.0 << 1 | complement as u32)
    }

    /// Creates a literal from its raw AIGER encoding (`2*var + c`).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// The raw AIGER encoding of this literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The node this literal refers to.
    #[inline]
    pub fn var(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented (carries an inverter).
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns the same literal with the complement flag set to `c`.
    #[inline]
    pub fn with_complement(self, c: bool) -> Lit {
        Lit(self.0 & !1 | c as u32)
    }

    /// Complements the literal if `c` is true (XOR of inverters).
    #[inline]
    pub fn complement_if(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Whether this literal is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.var() == NodeId::CONST0
    }

    #[inline]
    pub(crate) fn is_valid(self) -> bool {
        self != Lit::INVALID
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<NodeId> for Lit {
    #[inline]
    fn from(n: NodeId) -> Lit {
        n.lit()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_literals() {
        assert_eq!(Lit::FALSE.var(), NodeId::CONST0);
        assert!(!Lit::FALSE.is_complement());
        assert!(Lit::TRUE.is_complement());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::TRUE.is_const());
    }

    #[test]
    fn roundtrip_raw() {
        let l = Lit::new(NodeId::new(17), true);
        assert_eq!(l.raw(), 35);
        assert_eq!(Lit::from_raw(35), l);
        assert_eq!(l.var().index(), 17);
    }

    #[test]
    fn complement_ops() {
        let l = NodeId::new(4).lit();
        assert_eq!(l.complement_if(false), l);
        assert_eq!(l.complement_if(true), !l);
        assert_eq!(l.with_complement(true), !l);
        assert_eq!((!l).with_complement(false), l);
    }

    #[test]
    fn display_forms() {
        let l = Lit::new(NodeId::new(2), true);
        assert_eq!(l.to_string(), "!n2");
        assert_eq!(format!("{:?}", l), "Lit(!n2)");
        assert_eq!(NodeId::new(2).to_string(), "n2");
    }
}
