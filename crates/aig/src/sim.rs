//! Bit-parallel simulation of AIGs.
//!
//! Each node is simulated on 64 input patterns at once (one `u64` word per
//! node). This is the engine behind functional validation of the circuit
//! generators and the equivalence spot-checks in technology mapping.

use crate::{Aig, Lit};
use rand::{Rng, SeedableRng};

/// Simulates one 64-pattern word per input; returns a word per node.
///
/// # Panics
///
/// Panics if `inputs.len() != aig.num_inputs()`.
pub fn simulate(aig: &Aig, inputs: &[u64]) -> Vec<u64> {
    let mut values = Vec::new();
    simulate_into(aig, inputs, &mut values);
    values
}

/// [`simulate`] writing into a caller-owned buffer: allocation-free once
/// `values` has reached the subject's node count, so signature passes on the
/// serve path can obey the alloc-regression contract.
///
/// # Panics
///
/// Panics if `inputs.len() != aig.num_inputs()`.
pub fn simulate_into(aig: &Aig, inputs: &[u64], values: &mut Vec<u64>) {
    assert_eq!(
        inputs.len(),
        aig.num_inputs(),
        "one word per input required"
    );
    values.clear();
    values.resize(aig.num_nodes(), 0);
    for (i, &n) in aig.inputs().iter().enumerate() {
        values[n.index()] = inputs[i];
    }
    for n in aig.node_ids() {
        if aig.is_and(n) {
            let (f0, f1) = aig.fanins(n);
            values[n.index()] = lit_word(values, f0) & lit_word(values, f1);
        }
    }
}

/// SplitMix64: the `i`-th word of the deterministic stream for `seed`.
///
/// This is the seeded signature generator behind the cone-cache simulation
/// signatures: unlike an RNG object it carries no state to allocate or
/// advance, so any input's word can be produced independently (and hence in
/// parallel) while remaining a pure function of `(seed, i)`.
#[inline]
pub fn seeded_word(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic-by-seed whole-graph simulation signature pass: input `i`
/// receives [`seeded_word`]`(seed, i)` and every node gets its simulated
/// word. Allocation-free once both buffers have warmed to the subject size.
pub fn signature_words_into(aig: &Aig, seed: u64, inputs: &mut Vec<u64>, values: &mut Vec<u64>) {
    inputs.clear();
    inputs.extend((0..aig.num_inputs() as u64).map(|i| seeded_word(seed, i)));
    simulate_into(aig, inputs, values);
}

#[inline]
fn lit_word(values: &[u64], l: Lit) -> u64 {
    let w = values[l.var().index()];
    if l.is_complement() {
        !w
    } else {
        w
    }
}

/// Extracts the output words from a node-value vector produced by
/// [`simulate`].
pub fn output_words(aig: &Aig, values: &[u64]) -> Vec<u64> {
    aig.outputs().iter().map(|&o| lit_word(values, o)).collect()
}

/// Evaluates the AIG on a single Boolean input assignment.
///
/// # Panics
///
/// Panics if `inputs.len() != aig.num_inputs()`.
pub fn eval(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    let values = simulate(aig, &words);
    output_words(aig, &values)
        .iter()
        .map(|&w| w & 1 != 0)
        .collect()
}

/// Simulates `words` random 64-pattern words per input (deterministic in
/// `seed`), returning the per-output words concatenated as
/// `result[output][word]`.
pub fn random_simulation(aig: &Aig, words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = vec![Vec::with_capacity(words); aig.num_outputs()];
    for _ in 0..words {
        let inputs: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
        let values = simulate(aig, &inputs);
        for (o, w) in output_words(aig, &values).into_iter().enumerate() {
            out[o].push(w);
        }
    }
    out
}

/// Checks two AIGs with identical interfaces for equivalence on `words * 64`
/// random patterns (a probabilistic refutation check, not a proof).
///
/// Returns `Err(pattern)` with a counter-example input assignment on the
/// first mismatching pattern.
///
/// # Panics
///
/// Panics if the two AIGs differ in input or output count.
pub fn random_equivalence_check(
    a: &Aig,
    b: &Aig,
    words: usize,
    seed: u64,
) -> Result<(), Vec<bool>> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for _ in 0..words {
        let inputs: Vec<u64> = (0..a.num_inputs()).map(|_| rng.gen()).collect();
        let va = simulate(a, &inputs);
        let vb = simulate(b, &inputs);
        let oa = output_words(a, &va);
        let ob = output_words(b, &vb);
        for (wa, wb) in oa.iter().zip(&ob) {
            let diff = wa ^ wb;
            if diff != 0 {
                let bit = diff.trailing_zeros();
                let cex = inputs.iter().map(|w| w >> bit & 1 != 0).collect();
                return Err(cex);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let x = aig.xor(a, b);
        aig.add_output(x);
        aig
    }

    #[test]
    fn xor_truth_table_by_eval() {
        let aig = xor_aig();
        assert_eq!(eval(&aig, &[false, false]), vec![false]);
        assert_eq!(eval(&aig, &[true, false]), vec![true]);
        assert_eq!(eval(&aig, &[false, true]), vec![true]);
        assert_eq!(eval(&aig, &[true, true]), vec![false]);
    }

    #[test]
    fn word_simulation_matches_bitwise_xor() {
        let aig = xor_aig();
        let a = 0xDEAD_BEEF_0123_4567;
        let b = 0x0F0F_F0F0_AAAA_5555;
        let values = simulate(&aig, &[a, b]);
        assert_eq!(output_words(&aig, &values), vec![a ^ b]);
    }

    #[test]
    fn full_adder_semantics() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        for m in 0..8u32 {
            let bits = [m & 1 != 0, m & 2 != 0, m & 4 != 0];
            let out = eval(&aig, &bits);
            let total = bits.iter().filter(|&&b| b).count() as u32;
            assert_eq!(out[0], total & 1 != 0, "sum at {m}");
            assert_eq!(out[1], total >= 2, "carry at {m}");
        }
    }

    #[test]
    fn equivalence_check_catches_difference() {
        let good = xor_aig();
        let mut bad = Aig::new();
        let a = bad.add_input().lit();
        let b = bad.add_input().lit();
        let o = bad.or(a, b); // OR, not XOR
        bad.add_output(o);
        let err = random_equivalence_check(&good, &bad, 4, 42).unwrap_err();
        // The counterexample must be a=b=1 (only differing assignment).
        assert_eq!(err, vec![true, true]);
        // And XOR is equivalent to itself.
        assert!(random_equivalence_check(&good, &xor_aig(), 4, 7).is_ok());
    }

    #[test]
    fn simulate_into_matches_simulate_and_reuses_buffer() {
        let aig = xor_aig();
        let inputs = [0x1234_5678_9ABC_DEF0u64, 0x0F0F_F0F0_AAAA_5555];
        let fresh = simulate(&aig, &inputs);
        let mut buf = Vec::new();
        simulate_into(&aig, &inputs, &mut buf);
        assert_eq!(buf, fresh);
        // Reuse with stale contents of a different length.
        buf.resize(100, u64::MAX);
        simulate_into(&aig, &inputs, &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn signature_words_are_deterministic_by_seed() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(4);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        let t = aig.xor(s, ins[3]);
        aig.add_output(t);
        aig.add_output(c);

        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        signature_words_into(&aig, 42, &mut i1, &mut v1);
        signature_words_into(&aig, 42, &mut i2, &mut v2);
        assert_eq!(v1, v2);
        signature_words_into(&aig, 43, &mut i2, &mut v2);
        assert_ne!(v1, v2, "different seeds must produce different signatures");
        // Seeded words are a pure function of (seed, index).
        assert_eq!(seeded_word(7, 3), seeded_word(7, 3));
        assert_ne!(seeded_word(7, 3), seeded_word(7, 4));
        assert_ne!(seeded_word(7, 3), seeded_word(8, 3));
    }

    #[test]
    fn constant_outputs() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        aig.add_output(Lit::TRUE);
        aig.add_output(Lit::FALSE);
        assert_eq!(eval(&aig, &[false]), vec![true, false]);
    }
}
