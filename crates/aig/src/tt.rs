//! Truth-table utilities for functions of up to six variables.
//!
//! A truth table is a `u64` whose bit `m` holds the function value on the
//! input minterm `m` (variable `i` contributes bit `i` of `m`). Tables over
//! `k < 6` variables occupy the low `2^k` bits; the rest must be zero and is
//! enforced by [`mask`].
//!
//! These tables drive cut-function computation ([`crate::cut`]), exact
//! XOR/MAJ detection (`gamora-exact`) and NPN Boolean matching
//! (`gamora-techmap`).

/// Maximum supported variable count.
pub const MAX_VARS: usize = 6;

/// Truth table of the projection onto variable `i` (over 6 variables).
///
/// # Panics
///
/// Panics if `i >= 6`.
pub const fn var(i: usize) -> u64 {
    const VARS: [u64; MAX_VARS] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    VARS[i]
}

/// Bit mask covering the `2^k` valid minterm bits of a `k`-variable table.
///
/// # Panics
///
/// Panics if `k > 6`.
pub const fn mask(k: usize) -> u64 {
    assert!(k <= MAX_VARS);
    if k == MAX_VARS {
        u64::MAX
    } else {
        (1u64 << (1usize << k)) - 1
    }
}

/// Two-input XOR (`a ^ b`) over 2 variables.
pub const XOR2: u64 = 0x6;
/// Two-input AND (`a & b`) over 2 variables.
pub const AND2: u64 = 0x8;
/// Three-input parity (`a ^ b ^ c`) over 3 variables.
pub const XOR3: u64 = 0x96;
/// Three-input majority (`ab + ac + bc`) over 3 variables.
pub const MAJ3: u64 = 0xE8;
/// Multiplexer `a ? b : c` (select = var 0) over 3 variables.
pub const MUX3: u64 = 0xCA;

/// The (positive) cofactor of `tt` with respect to variable `i`: the table
/// obtained by fixing `x_i = 1`, made vacuous in `i`.
pub fn cofactor1(tt: u64, i: usize) -> u64 {
    let shift = 1usize << i;
    let hi = tt & var(i);
    hi | (hi >> shift)
}

/// The negative cofactor of `tt` with respect to variable `i` (`x_i = 0`).
pub fn cofactor0(tt: u64, i: usize) -> u64 {
    let shift = 1usize << i;
    let lo = tt & !var(i);
    lo | (lo << shift)
}

/// Whether `tt` (over `k` vars) functionally depends on variable `i`.
pub fn depends_on(tt: u64, k: usize, i: usize) -> bool {
    let m = mask(k);
    (cofactor0(tt, i) & m) != (cofactor1(tt, i) & m)
}

/// Bitmask of variables in the functional support of `tt`.
pub fn support(tt: u64, k: usize) -> u32 {
    (0..k)
        .filter(|&i| depends_on(tt, k, i))
        .fold(0, |m, i| m | 1 << i)
}

/// Negates variable `i` inside `tt` (swaps its cofactors).
pub fn flip_var(tt: u64, i: usize) -> u64 {
    let shift = 1usize << i;
    ((tt & var(i)) >> shift) | ((tt & !var(i)) << shift)
}

/// Applies a full input transform to `tt` over `k` variables:
/// the result `g` satisfies
/// `g(x_0, .., x_{k-1}) = f(x_{perm[0]} ^ neg_0, .., x_{perm[k-1]} ^ neg_{k-1}) ^ out_neg`
/// where `neg_i` is bit `i` of `neg`.
///
/// # Panics
///
/// Panics if `perm.len() != k` or `k > 6`.
pub fn transform(tt: u64, k: usize, perm: &[usize], neg: u32, out_neg: bool) -> u64 {
    assert_eq!(perm.len(), k);
    assert!(k <= MAX_VARS);
    let mut out = 0u64;
    for m in 0..(1u64 << k) {
        let mut fm = 0usize;
        for (i, &p) in perm.iter().enumerate() {
            let bit = ((m >> p) & 1) ^ ((neg >> i) as u64 & 1);
            fm |= (bit as usize) << i;
        }
        out |= (((tt >> fm) & 1) ^ out_neg as u64) << m;
    }
    out
}

/// Removes vacuous variables from `tt`, compacting the support to the low
/// positions. Returns `(new_tt, new_k, kept)` where `kept[j]` is the original
/// position of new variable `j`.
pub fn shrink(tt: u64, k: usize) -> (u64, usize, Vec<usize>) {
    let sup = support(tt, k);
    let kept: Vec<usize> = (0..k).filter(|&i| sup >> i & 1 != 0).collect();
    let nk = kept.len();
    let mut out = 0u64;
    for m in 0..(1u64 << nk) {
        let mut full = 0usize;
        for (j, &orig) in kept.iter().enumerate() {
            full |= (((m >> j) & 1) as usize) << orig;
        }
        out |= ((tt >> full) & 1) << m;
    }
    (out, nk, kept)
}

/// All permutations of `0..k` in lexicographic order.
///
/// # Panics
///
/// Panics if `k > 6` (factorial growth).
pub fn permutations(k: usize) -> Vec<Vec<usize>> {
    assert!(k <= MAX_VARS);
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..k).collect();
    fn heap(items: &mut Vec<usize>, n: usize, out: &mut Vec<Vec<usize>>) {
        if n <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..n {
            heap(items, n - 1, out);
            if n.is_multiple_of(2) {
                items.swap(i, n - 1);
            } else {
                items.swap(0, n - 1);
            }
        }
    }
    heap(&mut items, k, &mut result);
    result.sort();
    result.dedup();
    result
}

/// The NPN transform that maps one function onto another.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NpnTransform {
    /// Input permutation (`perm[i]` = which target variable feeds input `i`).
    pub perm: [usize; MAX_VARS],
    /// Input negation mask (bit `i` set = input `i` complemented).
    pub neg: u32,
    /// Whether the output is complemented.
    pub out_neg: bool,
}

/// Canonical representative (numeric minimum) of the NPN class of `tt`.
///
/// Exhaustive over `k! * 2^k * 2` transforms; intended for `k <= 4`.
///
/// # Panics
///
/// Panics if `k > 4`.
pub fn npn_canon(tt: u64, k: usize) -> u64 {
    assert!(k <= 4, "exhaustive NPN canonicalisation supports k <= 4");
    let m = mask(k);
    let tt = tt & m;
    let mut best = u64::MAX;
    for perm in permutations(k) {
        for neg in 0..(1u32 << k) {
            let t = transform(tt, k, &perm, neg, false);
            best = best.min(t).min(!t & m);
        }
    }
    best
}

/// Finds a transform of `gate` that realises `target`
/// (`target = transform(gate, ..)`), if the two are NPN-equivalent.
pub fn npn_match(target: u64, gate: u64, k: usize) -> Option<NpnTransform> {
    assert!(k <= 4, "exhaustive NPN matching supports k <= 4");
    let m = mask(k);
    let (target, gate) = (target & m, gate & m);
    for perm in permutations(k) {
        for neg in 0..(1u32 << k) {
            let t = transform(gate, k, &perm, neg, false);
            for out_neg in [false, true] {
                let t = if out_neg { !t & m } else { t };
                if t == target {
                    let mut p = [0usize; MAX_VARS];
                    p[..k].copy_from_slice(&perm);
                    return Some(NpnTransform {
                        perm: p,
                        neg,
                        out_neg,
                    });
                }
            }
        }
    }
    None
}

/// Classification of 2- and 3-input cut functions relevant to adder
/// extraction, following the paper's NPN-widened definitions.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AdderFunc {
    /// Parity of 2 inputs (XOR2/XNOR2 under NPN).
    Xor2,
    /// Parity of 3 inputs (XOR3 class under NPN).
    Xor3,
    /// Majority of 3 inputs (MAJ3 class under NPN).
    Maj3,
    /// Conjunction of 2 inputs (AND2 class: candidate HA carry).
    And2,
}

/// Classifies a `k`-input truth table against the adder-relevant NPN
/// classes, or returns `None`.
///
/// Parity is closed under input negation up to output complement, so the
/// XOR classes have two members each; MAJ3 is self-dual, giving 8 distinct
/// members; the AND2 class has all 8 two-literal products and their
/// complements.
pub fn classify_adder_func(tt: u64, k: usize) -> Option<AdderFunc> {
    let m = mask(k);
    let tt = tt & m;
    match k {
        2 => {
            if tt == XOR2 || tt == (!XOR2 & m) {
                Some(AdderFunc::Xor2)
            } else if is_and2_class(tt) {
                Some(AdderFunc::And2)
            } else {
                None
            }
        }
        3 => {
            if tt == XOR3 || tt == (!XOR3 & m) {
                Some(AdderFunc::Xor3)
            } else if is_maj3_class(tt) {
                Some(AdderFunc::Maj3)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn is_and2_class(tt: u64) -> bool {
    // All products of two literals and their complements.
    matches!(tt, 0x8 | 0x4 | 0x2 | 0x1 | 0x7 | 0xB | 0xD | 0xE)
}

fn is_maj3_class(tt: u64) -> bool {
    // MAJ3 with any subset of inputs negated, output possibly negated.
    // Self-duality folds the 32 transforms into 8 distinct tables.
    const CLASS: [u64; 8] = [
        0xE8, 0x17, // MAJ3, !MAJ3
        0xD4, 0x2B, // MAJ3(!a,b,c), complement
        0xB2, 0x4D, // MAJ3(a,!b,c), complement
        0x8E, 0x71, // MAJ3(a,b,!c), complement
    ];
    CLASS.contains(&tt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_masks_consistent() {
        for i in 0..MAX_VARS {
            for m in 0..64u64 {
                let expected = (m >> i) & 1 == 1;
                assert_eq!(var(i) >> m & 1 == 1, expected);
            }
        }
    }

    #[test]
    fn known_function_values() {
        // XOR3 on minterm 0b011 (a=1,b=1,c=0) = 0.
        assert_eq!(XOR3 >> 0b011 & 1, 0);
        assert_eq!(XOR3 >> 0b111 & 1, 1);
        assert_eq!(MAJ3 >> 0b011 & 1, 1);
        assert_eq!(MAJ3 >> 0b100 & 1, 0);
        // MUX3: a ? b : c — minterm a=1,c=1,b=0 -> b = 0.
        assert_eq!(MUX3 >> 0b101 & 1, 0);
        assert_eq!(MUX3 >> 0b011 & 1, 1);
    }

    #[test]
    fn cofactors_and_support() {
        // f = a & b over 2 vars.
        assert_eq!(cofactor1(AND2, 0) & mask(2), 0xC); // f|a=1 = b
        assert_eq!(cofactor0(AND2, 0) & mask(2), 0x0);
        assert_eq!(support(AND2, 2), 0b11);
        // constant has empty support
        assert_eq!(support(0, 3), 0);
        assert_eq!(support(mask(3), 3), 0);
        // a table vacuous in var 1
        let f = var(0) & mask(2); // f = a
        assert_eq!(support(f, 2), 0b01);
    }

    #[test]
    fn flip_is_involution() {
        for tt in [XOR3, MAJ3, MUX3, 0x5A, 0x33] {
            for i in 0..3 {
                assert_eq!(flip_var(flip_var(tt, i), i) & mask(3), tt & mask(3));
            }
        }
    }

    #[test]
    fn transform_identity() {
        let id = [0, 1, 2];
        assert_eq!(transform(MAJ3, 3, &id, 0, false), MAJ3);
        assert_eq!(transform(MAJ3, 3, &id, 0, true), !MAJ3 & mask(3));
    }

    #[test]
    fn maj_self_dual() {
        // MAJ(!a,!b,!c) = !MAJ(a,b,c)
        let t = transform(MAJ3, 3, &[0, 1, 2], 0b111, false);
        assert_eq!(t, !MAJ3 & mask(3));
    }

    #[test]
    fn xor_negation_flips_output() {
        let t = transform(XOR3, 3, &[0, 1, 2], 0b001, false);
        assert_eq!(t, !XOR3 & mask(3));
        let t2 = transform(XOR3, 3, &[0, 1, 2], 0b011, false);
        assert_eq!(t2, XOR3);
    }

    #[test]
    fn shrink_removes_vacuous() {
        // g(a,b,c) = a & c — vacuous in b.
        let g = var(0) & var(2) & mask(3);
        let (tt, k, kept) = shrink(g, 3);
        assert_eq!(k, 2);
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(tt, AND2);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn npn_canon_class_invariance() {
        // Every member of the MAJ class canonicalises identically.
        let c = npn_canon(MAJ3, 3);
        for neg in 0..8u32 {
            for out in [false, true] {
                let t = transform(MAJ3, 3, &[2, 0, 1], neg, out);
                assert_eq!(npn_canon(t, 3), c);
            }
        }
        // XOR and MAJ are different classes.
        assert_ne!(npn_canon(XOR3, 3), npn_canon(MAJ3, 3));
    }

    #[test]
    fn npn_match_roundtrip() {
        let target = transform(MUX3, 3, &[1, 2, 0], 0b101, true);
        let t = npn_match(target, MUX3, 3).expect("same class");
        let rebuilt = transform(MUX3, 3, &t.perm[..3], t.neg, t.out_neg);
        assert_eq!(rebuilt, target);
        // AND2 never matches XOR2.
        assert!(npn_match(XOR2, AND2, 2).is_none());
    }

    #[test]
    fn adder_classification() {
        assert_eq!(classify_adder_func(XOR3, 3), Some(AdderFunc::Xor3));
        assert_eq!(
            classify_adder_func(!XOR3 & mask(3), 3),
            Some(AdderFunc::Xor3)
        );
        assert_eq!(classify_adder_func(MAJ3, 3), Some(AdderFunc::Maj3));
        assert_eq!(classify_adder_func(0xD4, 3), Some(AdderFunc::Maj3));
        assert_eq!(classify_adder_func(XOR2, 2), Some(AdderFunc::Xor2));
        assert_eq!(classify_adder_func(AND2, 2), Some(AdderFunc::And2));
        assert_eq!(classify_adder_func(0xE, 2), Some(AdderFunc::And2)); // NAND
        assert_eq!(classify_adder_func(MUX3, 3), None);
        assert_eq!(classify_adder_func(0xA, 2), None); // projection
    }

    #[test]
    fn maj_class_is_exactly_the_negation_orbit() {
        let mut orbit = std::collections::BTreeSet::new();
        for neg in 0..8u32 {
            for out in [false, true] {
                for perm in permutations(3) {
                    orbit.insert(transform(MAJ3, 3, &perm, neg, out));
                }
            }
        }
        for tt in 0..256u64 {
            assert_eq!(
                orbit.contains(&tt),
                classify_adder_func(tt, 3) == Some(AdderFunc::Maj3)
                    || (tt == XOR3 || tt == !XOR3 & mask(3)) && orbit.contains(&tt),
                "tt = {tt:#x}"
            );
        }
    }
}
