//! Property-based tests for the AIG substrate.

use gamora_aig::{aiger, cut, sim, tt, Aig, Lit};
use proptest::prelude::*;

/// Recipe for building a random AIG: each step picks an operator and two
/// (possibly complemented) previously available literals.
#[derive(Clone, Debug)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, u16, bool, u16, bool)>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (2usize..6, 1usize..40).prop_flat_map(|(num_inputs, num_steps)| {
        let step = (
            0u8..6,
            any::<u16>(),
            any::<bool>(),
            any::<u16>(),
            any::<bool>(),
        );
        proptest::collection::vec(step, num_steps)
            .prop_map(move |steps| Recipe { num_inputs, steps })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = aig.add_inputs(recipe.num_inputs);
    pool.push(Lit::FALSE);
    for &(op, a, ac, b, bc) in &recipe.steps {
        let la = pool[a as usize % pool.len()].complement_if(ac);
        let lb = pool[b as usize % pool.len()].complement_if(bc);
        let r = match op {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.nand(la, lb),
            4 => aig.mux(la, lb, !la),
            _ => aig.maj3(la, lb, !lb),
        };
        pool.push(r);
    }
    aig.add_output(*pool.last().unwrap());
    aig
}

/// Reference evaluation of a recipe directly on booleans.
fn eval_recipe(recipe: &Recipe, inputs: &[bool]) -> bool {
    let mut pool: Vec<bool> = inputs.to_vec();
    pool.push(false);
    for &(op, a, ac, b, bc) in &recipe.steps {
        let la = pool[a as usize % pool.len()] ^ ac;
        let lb = pool[b as usize % pool.len()] ^ bc;
        let r = match op {
            0 => la & lb,
            1 => la | lb,
            2 => la ^ lb,
            3 => !(la & lb),
            4 => {
                if la {
                    lb
                } else {
                    !la
                }
            }
            _ => (la & lb) | (la & !lb) | (lb & !lb), // maj3(la, lb, !lb) = la
        };
        pool.push(r);
    }
    *pool.last().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The strashed builder computes the same function as direct boolean
    /// evaluation of the construction recipe.
    #[test]
    fn builders_match_boolean_semantics(r in recipe(), pattern in any::<u64>()) {
        let aig = build(&r);
        let inputs: Vec<bool> = (0..r.num_inputs).map(|i| pattern >> i & 1 != 0).collect();
        let expected = eval_recipe(&r, &inputs);
        let got = sim::eval(&aig, &inputs)[0];
        prop_assert_eq!(got, expected);
    }

    /// ASCII and binary AIGER round-trips preserve the function.
    #[test]
    fn aiger_roundtrip_equivalence(r in recipe()) {
        let aig = build(&r);
        for binary in [false, true] {
            let mut buf = Vec::new();
            if binary {
                aiger::write_binary(&aig, &mut buf).unwrap();
            } else {
                aiger::write_ascii(&aig, &mut buf).unwrap();
            }
            let back = aiger::read(&buf[..]).unwrap();
            prop_assert_eq!(back.num_inputs(), aig.num_inputs());
            prop_assert!(sim::random_equivalence_check(&aig, &back, 2, 99).is_ok());
        }
    }

    /// Every enumerated cut's truth table agrees with independent cone
    /// evaluation over the same leaves.
    #[test]
    fn cut_truth_tables_are_correct(r in recipe()) {
        let aig = build(&r);
        let cuts = cut::enumerate_cuts(&aig, &cut::CutParams::default());
        for n in aig.and_ids() {
            for c in cuts.of(n) {
                if c.is_empty() { continue; }
                let leaves: Vec<_> = c.leaves().iter()
                    .map(|&l| gamora_aig::NodeId::new(l)).collect();
                let f = cut::cone_function(&aig, n.lit(), &leaves)
                    .expect("enumerated cut must be a cut");
                prop_assert_eq!(f, c.tt, "node {} cut {:?}", n, c.leaves());
            }
        }
    }

    /// NPN canonicalisation is invariant under random NPN transforms.
    #[test]
    fn npn_canon_invariant(raw in any::<u16>(), neg in 0u32..16, out in any::<bool>(), p in 0usize..24) {
        let k = 4;
        let f = raw as u64;
        let perms = tt::permutations(k);
        let g = tt::transform(f, k, &perms[p % perms.len()], neg, out);
        prop_assert_eq!(tt::npn_canon(f, k), tt::npn_canon(g, k));
    }

    /// Cleanup preserves the function while never increasing node count.
    #[test]
    fn cleanup_preserves_function(r in recipe()) {
        let aig = build(&r);
        let (clean, _) = aig.cleanup();
        prop_assert!(clean.num_ands() <= aig.num_ands());
        prop_assert!(sim::random_equivalence_check(&aig, &clean, 2, 5).is_ok());
    }
}
