//! Ablations of the reproduction's design choices (DESIGN.md §5):
//!
//! * message-passing direction — fanin-only vs symmetrised adjacency
//!   (roots must see their sibling through a shared fanin);
//! * multi-task loss weight α on the root/leaf task;
//! * LSB post-processing on extraction recall.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench ablation`

use gamora::{
    compare_extraction, lsb_correction, score_predictions, Direction, GamoraReasoner,
    ReasonerConfig, TrainConfig,
};
use gamora_bench::{pct, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;

fn main() {
    let scale = Scale::from_env();
    let epochs = scale.pick(120, 250, 400);
    let eval_bits = scale.pick(12, 16, 64);

    println!("\n=== Ablation: message-passing direction ===");
    let m_eval = workload(MultiplierKind::Csa, eval_bits);
    let labels = gamora_exact::analyze(&m_eval.aig).labels;
    let mut table = Table::new(&[
        "direction",
        "mean acc (%)",
        "root/leaf (%)",
        "xor (%)",
        "maj (%)",
    ]);
    for dir in [
        Direction::Fanin,
        Direction::Fanout,
        Direction::Bidirectional,
    ] {
        let train: Vec<_> = [4usize, 6, 8]
            .iter()
            .map(|&b| workload(MultiplierKind::Csa, b))
            .collect();
        let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
        let mut r = GamoraReasoner::new(ReasonerConfig {
            direction: dir,
            ..ReasonerConfig::default()
        });
        r.fit(
            &refs,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        );
        let rep = score_predictions(&r.predict(&m_eval.aig), &labels);
        table.row(vec![
            format!("{dir:?}"),
            pct(rep.mean()),
            pct(rep.task_accuracy[0]),
            pct(rep.task_accuracy[1]),
            pct(rep.task_accuracy[2]),
        ]);
    }
    table.print();

    println!("\n=== Ablation: root/leaf task weight (alpha) ===");
    let mut table = Table::new(&["alpha", "mean acc (%)", "root/leaf (%)"]);
    for alpha in [0.2f32, 0.8, 2.0] {
        let train: Vec<_> = [4usize, 6, 8]
            .iter()
            .map(|&b| workload(MultiplierKind::Csa, b))
            .collect();
        let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
        let mut r = GamoraReasoner::new(ReasonerConfig::default());
        r.fit(
            &refs,
            &TrainConfig {
                epochs,
                task_weights: vec![alpha, 1.0, 1.0],
                ..TrainConfig::default()
            },
        );
        let rep = score_predictions(&r.predict(&m_eval.aig), &labels);
        table.row(vec![
            format!("{alpha}"),
            pct(rep.mean()),
            pct(rep.task_accuracy[0]),
        ]);
    }
    table.print();

    println!("\n=== Ablation: LSB post-processing on extraction ===");
    let r = train_reasoner(
        MultiplierKind::Csa,
        &[4, 6, 8],
        gamora::ModelDepth::Shallow,
        gamora::FeatureMode::StructuralFunctional,
        true,
        epochs,
    );
    let preds = r.predict(&m_eval.aig);
    let (mut adders, before) = compare_extraction(&m_eval.aig, &preds);
    let repaired = lsb_correction(&m_eval.aig, &mut adders);
    let exact = gamora_exact::analyze(&m_eval.aig);
    let after = gamora_exact::compare_with_reference(
        &adders,
        exact.adders.iter().map(|a| (a.sum, a.carry)),
    );
    let mut table = Table::new(&["stage", "recall (%)", "precision (%)"]);
    table.row(vec![
        "raw predictions".into(),
        pct(before.recall()),
        pct(before.precision()),
    ]);
    table.row(vec![
        format!("+ LSB repair ({repaired} added)"),
        pct(after.recall()),
        pct(after.precision()),
    ]);
    table.print();
}
