//! Prediction-cache lock-scope micro-bench: how much wall time T threads
//! lose when the O(nodes) hit resolution (verbatim clone or transfer
//! re-indexing) runs **inside** the cache mutex versus the fixed design —
//! an O(1) `probe` under the lock and `CacheEntry::resolve` on the
//! caller's thread outside it.
//!
//! "locked" simulates the pre-fix `lookup`-under-mutex scheduler;
//! "split" is what `gamora-serve` now does. The gap is the serialised
//! per-hit O(nodes) work; per-shard caches (`ShardRouter`) shrink it
//! further by giving each worker pool its own mutex.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench cache_contention`

use gamora::Predictions;
use gamora_bench::{time, workload, Scale, Table};
use gamora_circuits::MultiplierKind;
use gamora_serve::cache::{CacheEntry, GraphSignature, PredictionCache};
use std::sync::{Arc, Mutex};

fn dummy_predictions(num_nodes: usize) -> Predictions {
    Predictions {
        root_leaf: (0..num_nodes as u32).map(|i| i % 4).collect(),
        is_xor: (0..num_nodes).map(|i| i % 2 == 0).collect(),
        is_maj: (0..num_nodes).map(|i| i % 3 == 0).collect(),
    }
}

/// Runs `iters` hit-resolutions per thread against one shared cache.
/// `split` = probe under the lock, resolve outside (the fixed scheduler);
/// otherwise the whole lookup holds the mutex (the old behaviour).
fn hammer(
    cache: &Mutex<PredictionCache>,
    sig: &GraphSignature,
    threads: usize,
    iters: usize,
    split: bool,
) -> f64 {
    let (_, secs) = time(|| {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || {
                    for _ in 0..iters {
                        let served = if split {
                            let entry = cache
                                .lock()
                                .expect("cache poisoned")
                                .probe(&sig.key)
                                .expect("entry cached");
                            // O(nodes), no lock held.
                            entry.resolve(sig)
                        } else {
                            // O(nodes) under the mutex: every other
                            // thread's probe waits for it.
                            cache.lock().expect("cache poisoned").lookup(sig)
                        };
                        assert!(served.is_some(), "resolution must hit");
                        std::hint::black_box(&served);
                    }
                });
            }
        });
    });
    (threads * iters) as f64 / secs
}

fn main() {
    let scale = Scale::from_env();
    let bits = scale.pick(8, 12, 16);
    let iters = scale.pick(300, 1500, 6000);

    let subject = workload(MultiplierKind::Csa, bits);
    let sig = GraphSignature::of(&subject.aig);
    let preds = dummy_predictions(subject.aig.num_nodes());
    println!(
        "\n=== Cache lock-scope contention: {}-bit CSA ({} nodes), {iters} hits/thread ===",
        bits,
        subject.aig.num_nodes()
    );

    // Verbatim path: identity matches, resolution clones the stored
    // vectors. Transfer path: identity differs, resolution re-indexes
    // every node through the canonical-hash map (the heaviest hit).
    let mut transfer_sig = sig.clone();
    transfer_sig.identity ^= 1;

    let mut table = Table::new(&[
        "path",
        "threads",
        "locked (hits/s)",
        "split (hits/s)",
        "split/locked",
    ]);
    let mut measured: Vec<(&str, f64, f64)> = Vec::new();
    for (label, lookup_sig) in [("verbatim", &sig), ("transfer", &transfer_sig)] {
        for threads in [1usize, 2, 4] {
            let cache = Mutex::new(PredictionCache::new(8));
            // Seed the cache the way the shipped scheduler inserts: the
            // O(nodes) index build runs in `CacheEntry::new` *outside*
            // the mutex, and only the O(1) `insert_entry` holds it (the
            // old `insert` convenience built the indexes under the lock
            // — the exact pattern this bench exists to measure against).
            let entry = Arc::new(CacheEntry::new(&sig, preds.clone()));
            cache.lock().unwrap().insert_entry(sig.key, entry);
            let locked = hammer(&cache, lookup_sig, threads, iters, false);
            let split = hammer(&cache, lookup_sig, threads, iters, true);
            measured.push((label, locked, split));
            table.row(vec![
                label.to_string(),
                threads.to_string(),
                format!("{locked:.0}"),
                format!("{split:.0}"),
                format!("{:.2}x", split / locked),
            ]);
        }
    }
    // The report must cover both hit-resolution paths, each measured
    // under both lock disciplines — a refactor that silently drops one
    // (or makes a path unhittable) fails here instead of shipping a
    // bench that no longer exercises the shipped code.
    for path in ["verbatim", "transfer"] {
        let rows = measured.iter().filter(|(l, ..)| *l == path).count();
        assert_eq!(rows, 3, "{path} path missing from the report");
        assert!(
            measured
                .iter()
                .filter(|(l, ..)| *l == path)
                .all(|&(_, locked, split)| locked > 0.0 && split > 0.0),
            "{path} path produced empty locked/split measurements"
        );
    }
    table.print();
}
