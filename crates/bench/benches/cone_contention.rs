//! Cone-cache mutex contention micro-bench: the cone tier is a single
//! `Mutex<ConeCache>` shared by every serve worker, so each batch's
//! per-row probes and post-forward inserts serialise on one lock. This
//! bench measures how much probe throughput 2 and 4 workers keep,
//! comparing the shipped discipline — one lock hold per *batch* of rows
//! (`probe` is `&self` and allocation-free, so the hold is short) —
//! against a naive lock-per-row discipline, and adds the scheduler's
//! real write mix (a miss batch inserts its rows after the forward
//! pass).
//!
//! Regenerate: `cargo bench -p gamora-bench --bench cone_contention`

use gamora_bench::{time, Scale, Table};
use gamora_serve::cache::{pack_prediction, ConeCache, ConeKey};
use std::sync::Mutex;

/// Deterministic synthetic cone keys: the structural and simulation
/// channels of real keys are 64-bit hashes, so spreading integers with
/// an odd multiplier reproduces their bucket behaviour.
fn key(i: usize) -> ConeKey {
    let i = i as u64;
    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), !i)
}

/// Runs `iters` batches of `rows` probes per thread against one shared
/// cone cache. `batched` holds the lock once per batch (the shipped
/// scheduler); otherwise every row re-locks. `insert_every > 0` turns
/// each `insert_every`-th batch into a miss batch that inserts its rows,
/// reproducing the serve path's write traffic. Returns rows/second.
fn hammer(
    cache: &Mutex<ConeCache>,
    population: usize,
    threads: usize,
    iters: usize,
    rows: usize,
    batched: bool,
    insert_every: usize,
) -> f64 {
    let (_, secs) = time(|| {
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    let mut hits = 0usize;
                    for i in 0..iters {
                        // Stride the key window per thread and batch so
                        // the probes spread over the population the way
                        // distinct subjects do.
                        let base = (t * 7919 + i * rows) % population;
                        if insert_every > 0 && i % insert_every == 0 {
                            let mut c = cache.lock().expect("cone cache poisoned");
                            for r in 0..rows {
                                c.insert(key(base + r), pack_prediction(1, false, true));
                            }
                        } else if batched {
                            let c = cache.lock().expect("cone cache poisoned");
                            for r in 0..rows {
                                hits += c.probe(key(base + r)).is_some() as usize;
                            }
                        } else {
                            for r in 0..rows {
                                let c = cache.lock().expect("cone cache poisoned");
                                hits += c.probe(key(base + r)).is_some() as usize;
                            }
                        }
                    }
                    std::hint::black_box(hits);
                });
            }
        });
    });
    (threads * iters * rows) as f64 / secs
}

fn main() {
    let scale = Scale::from_env();
    // One "batch" probes as many rows as a merged serve batch has nodes.
    let rows = scale.pick(512, 2048, 8192);
    let iters = scale.pick(200, 800, 2000);
    let capacity = 1 << 20;
    let population = 4 * rows;

    println!(
        "\n=== Cone-cache mutex contention: {rows} rows/batch, {iters} batches/thread, \
         capacity {capacity} ==="
    );
    let mut table = Table::new(&[
        "workload",
        "threads",
        "per-row lock (rows/s)",
        "batched lock (rows/s)",
        "batched/per-row",
        "scaling vs 1T",
    ]);
    let mut measured: Vec<(&str, usize, f64, f64)> = Vec::new();
    for (label, insert_every) in [("probe-only", 0usize), ("1/16 insert", 16)] {
        let mut batched_1t = 0.0;
        for threads in [1usize, 2, 4] {
            let cache = Mutex::new(ConeCache::new(capacity));
            {
                // Pre-populate every probed key: hit-path contention is
                // the question, not miss handling.
                let mut c = cache.lock().unwrap();
                for i in 0..population + rows {
                    c.insert(key(i), pack_prediction(2, true, false));
                }
            }
            let per_row = hammer(
                &cache,
                population,
                threads,
                iters,
                rows,
                false,
                insert_every,
            );
            let batched = hammer(&cache, population, threads, iters, rows, true, insert_every);
            if threads == 1 {
                batched_1t = batched;
            }
            measured.push((label, threads, per_row, batched));
            table.row(vec![
                label.to_string(),
                threads.to_string(),
                format!("{per_row:.0}"),
                format!("{batched:.0}"),
                format!("{:.2}x", batched / per_row),
                format!("{:.2}x", batched / batched_1t),
            ]);
        }
    }
    // The report must cover both workloads at all three pool sizes with
    // non-degenerate numbers — a refactor that breaks a path shows up
    // here instead of shipping an empty table.
    for label in ["probe-only", "1/16 insert"] {
        let rows_for: Vec<_> = measured.iter().filter(|(l, ..)| *l == label).collect();
        assert_eq!(
            rows_for.len(),
            3,
            "{label} workload missing from the report"
        );
        assert!(
            rows_for
                .iter()
                .all(|&&(_, _, per_row, batched)| per_row > 0.0 && batched > 0.0),
            "{label} produced empty measurements"
        );
    }
    table.print();
}
