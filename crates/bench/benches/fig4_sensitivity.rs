//! **Figure 4** — sensitivity analysis on CSA multipliers: reasoning
//! accuracy versus (1) training multiplier bitwidth, (2) single- vs
//! multi-task learning, (3) structural-only vs structural+functional
//! features.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench fig4_sensitivity`
//! (`GAMORA_SCALE=paper` for the full sweep).

use gamora::{score_predictions, FeatureMode, ModelDepth};
use gamora_bench::{pct, time, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;

fn main() {
    let scale = Scale::from_env();
    let train_widths: Vec<usize> = scale.pick(vec![2, 4], vec![2, 4, 6, 8], vec![2, 4, 6, 8, 10]);
    let eval_widths: Vec<usize> = scale.pick(
        vec![12, 16],
        vec![12, 16, 32, 64],
        vec![12, 16, 32, 64, 128, 256, 384, 512],
    );
    let epochs = scale.pick(120, 250, 400);

    // Pre-compute eval workloads and their exact labels once.
    let evals: Vec<_> = eval_widths
        .iter()
        .map(|&b| {
            let m = workload(MultiplierKind::Csa, b);
            let labels = gamora_exact::analyze(&m.aig).labels;
            (b, m, labels)
        })
        .collect();

    println!("\n=== Figure 4: sensitivity on CSA multipliers (scale {scale:?}) ===");
    let settings = [
        (
            "Single Task / Structural Info",
            false,
            FeatureMode::Structural,
        ),
        (
            "Single Task / Structural + Functional Info",
            false,
            FeatureMode::StructuralFunctional,
        ),
        (
            "Multi Task / Structural Info",
            true,
            FeatureMode::Structural,
        ),
        (
            "Multi Task / Structural + Functional Info",
            true,
            FeatureMode::StructuralFunctional,
        ),
    ];
    for (name, multi_task, feature_mode) in settings {
        println!("\n--- {name} ---");
        let mut table = Table::new(
            &std::iter::once("eval bits".to_string())
                .chain(train_widths.iter().map(|w| format!("Mult{w}")))
                .map(|s| s.leak() as &str)
                .collect::<Vec<_>>(),
        );
        // Train one model per training width.
        let mut models: Vec<_> = Vec::new();
        for &tw in &train_widths {
            let (model, secs) = time(|| {
                train_reasoner(
                    MultiplierKind::Csa,
                    &[tw],
                    ModelDepth::Shallow,
                    feature_mode,
                    multi_task,
                    epochs,
                )
            });
            eprintln!("  trained Mult{tw} in {secs:.1}s");
            models.push(model);
        }
        for (bits, m, labels) in &evals {
            let mut row = vec![bits.to_string()];
            for model in &mut models {
                let preds = model.predict(&m.aig);
                let report = score_predictions(&preds, labels);
                row.push(pct(report.mean()));
            }
            table.row(row);
        }
        table.print();
    }
    println!("\npaper reference: multi-task + functional reaches ~100% once trained on >=8-bit;");
    println!("single-task and structural-only settings plateau far lower (Fig. 4).");
}
