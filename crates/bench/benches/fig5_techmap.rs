//! **Figure 5** — reasoning accuracy after technology mapping: CSA and
//! Booth multipliers mapped with the simple (mcnc-style) and complex
//! (ASAP7-style, multi-output adder cells) libraries; models trained on
//! mapped netlists, plus the generalisation of a model trained *without*
//! mapping.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench fig5_techmap`

use gamora::{score_predictions, GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::Aig;
use gamora_bench::{pct, time, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;
use gamora_techmap::{map, Library, MapParams};

fn mapped_aig(kind: MultiplierKind, bits: usize, lib: &Library) -> Aig {
    let m = workload(kind, bits);
    map(&m.aig, lib, &MapParams::default()).to_aig()
}

fn fit_on(aigs: &[Aig], depth: ModelDepth, epochs: usize) -> GamoraReasoner {
    let refs: Vec<&Aig> = aigs.iter().collect();
    let mut r = GamoraReasoner::new(ReasonerConfig {
        depth,
        ..ReasonerConfig::default()
    });
    r.fit(
        &refs,
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    );
    r
}

fn main() {
    let scale = Scale::from_env();
    let train_widths: Vec<usize> = scale.pick(vec![4, 6], vec![4, 6, 8], vec![8, 12, 16, 20, 24]);
    let eval_widths: Vec<usize> = scale.pick(
        vec![12],
        vec![12, 16, 24, 32],
        vec![64, 128, 192, 256, 384, 512, 768],
    );
    let epochs = scale.pick(120, 220, 400);

    println!("\n=== Figure 5: accuracy after technology mapping (scale {scale:?}) ===");
    let libraries = [
        ("simple", Library::simple()),
        ("7nm-style", Library::complex7nm()),
    ];
    for kind in [MultiplierKind::Csa, MultiplierKind::Booth] {
        let depth = match kind {
            MultiplierKind::Csa => ModelDepth::Shallow,
            _ => ModelDepth::Deep,
        };
        for (lib_name, lib) in &libraries {
            println!("\n--- {kind} multiplier, {lib_name} mapping ---");
            // Model trained on mapped netlists.
            let (mapped_model, secs) = time(|| {
                let train: Vec<Aig> = train_widths
                    .iter()
                    .map(|&b| mapped_aig(kind, b, lib))
                    .collect();
                fit_on(&train, depth, epochs)
            });
            // Model trained on unmapped netlists (generalisation line).
            let unmapped_model = train_reasoner(
                kind,
                &train_widths,
                depth,
                gamora::FeatureMode::StructuralFunctional,
                true,
                epochs,
            );
            eprintln!("  trained mapped model in {secs:.1}s");
            let mut table = Table::new(&["eval bits", "retrained (%)", "trained w/o mapping (%)"]);
            for &bits in &eval_widths {
                let subject = mapped_aig(kind, bits, lib);
                let labels = gamora_exact::analyze(&subject).labels;
                let retrained = score_predictions(&mapped_model.predict(&subject), &labels).mean();
                let transferred =
                    score_predictions(&unmapped_model.predict(&subject), &labels).mean();
                table.row(vec![bits.to_string(), pct(retrained), pct(transferred)]);
            }
            table.print();
        }
    }
    println!("\npaper reference: >99% (CSA) / >92% (Booth) with simple mapping; complex");
    println!("7nm-style mapping drops accuracy and generalisation further (Fig. 5).");
}
