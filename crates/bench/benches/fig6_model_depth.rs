//! **Figure 6** — model capacity on Booth multipliers: the shallow
//! (4-layer / 32-channel) model versus the deep (8-layer / 80-channel)
//! model across training bitwidths.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench fig6_model_depth`

use gamora::{score_predictions, FeatureMode, ModelDepth};
use gamora_bench::{pct, time, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;

fn main() {
    let scale = Scale::from_env();
    let train_widths: Vec<usize> = scale.pick(vec![6], vec![8, 12], vec![8, 12, 16, 20, 24]);
    let eval_widths: Vec<usize> = scale.pick(
        vec![12],
        vec![16, 24, 32, 48],
        vec![64, 128, 192, 256, 384, 512, 768],
    );
    let epochs = scale.pick(120, 220, 400);

    println!("\n=== Figure 6: shallow vs deep model on Booth multipliers (scale {scale:?}) ===");
    let evals: Vec<_> = eval_widths
        .iter()
        .map(|&b| {
            let m = workload(MultiplierKind::Booth, b);
            let labels = gamora_exact::analyze(&m.aig).labels;
            (b, m, labels)
        })
        .collect();

    for (name, depth) in [
        ("Shallow model (4 layers x 32)", ModelDepth::Shallow),
        ("Deep model (8 layers x 80)", ModelDepth::Deep),
    ] {
        println!("\n--- {name} ---");
        let mut table = Table::new(
            &std::iter::once("eval bits".to_string())
                .chain(train_widths.iter().map(|w| format!("Mult{w}")))
                .map(|s| s.leak() as &str)
                .collect::<Vec<_>>(),
        );
        let mut models = Vec::new();
        for &tw in &train_widths {
            let (model, secs) = time(|| {
                train_reasoner(
                    MultiplierKind::Booth,
                    &[tw],
                    depth,
                    FeatureMode::StructuralFunctional,
                    true,
                    epochs,
                )
            });
            eprintln!("  trained Mult{tw} in {secs:.1}s");
            models.push(model);
        }
        for (bits, m, labels) in &evals {
            let mut row = vec![bits.to_string()];
            for model in &mut models {
                let report = score_predictions(&model.predict(&m.aig), labels);
                row.push(pct(report.mean()));
            }
            table.row(row);
        }
        table.print();
    }
    println!("\npaper reference: the deep model reaches >97% on Booth multipliers while");
    println!("the shallow model plateaus around 90-94% (Fig. 6).");
}
