//! **Figure 7** — runtime and scalability: Gamora GNN inference versus the
//! exact symbolic flows as CSA multiplier width grows, with netlist sizes
//! annotated.
//!
//! Baselines, from cheap to expensive:
//! * `exact` — cut-based detection + adder pairing (our Rust `&atree`);
//! * `sca-tree` — detection-assisted algebraic verification;
//! * `sca-naive` — naive node-by-node symbolic evaluation, the flow whose
//!   blow-up the paper's six-orders-of-magnitude speedup is measured
//!   against (capped; DNF = exceeded term budget or skipped by scale).
//!
//! Regenerate: `cargo bench -p gamora-bench --bench fig7_runtime`

use gamora::{ModelDepth, ReasonerConfig};
use gamora_bench::{fmt_time, time, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;
use gamora_sca::{product_spec, verify, RewriteParams};

fn main() {
    let scale = Scale::from_env();
    let widths: Vec<usize> = scale.pick(
        vec![16, 32, 64],
        vec![16, 32, 64, 128, 256],
        vec![64, 128, 256, 512, 1024, 2048],
    );
    let naive_max = scale.pick(16, 64, 128);
    let tree_max = scale.pick(32, 128, 512);
    let epochs = scale.pick(120, 250, 400);

    println!("\n=== Figure 7: runtime comparison on CSA multipliers (scale {scale:?}) ===");
    eprintln!("training the reasoner once on 4-8 bit multipliers ...");
    let reasoner = {
        let r = train_reasoner(
            MultiplierKind::Csa,
            &[4, 6, 8],
            ModelDepth::Shallow,
            gamora::FeatureMode::StructuralFunctional,
            true,
            epochs,
        );
        // One warm-up inference so thread pools and caches are hot.
        let warm = workload(MultiplierKind::Csa, 8);
        let _ = r.predict(&warm.aig);
        r
    };
    let _ = ReasonerConfig::default();

    let mut table = Table::new(&[
        "bits",
        "|V|",
        "|E|",
        "gamora",
        "exact",
        "sca-tree",
        "sca-naive",
        "exact/gamora",
    ]);
    for &bits in &widths {
        let m = workload(MultiplierKind::Csa, bits);
        let (v, e) = (m.aig.num_nodes(), 2 * m.aig.num_ands());

        let (_, gamora_t) = time(|| reasoner.predict(&m.aig));
        let (analysis, exact_t) = time(|| gamora_exact::analyze(&m.aig));

        let spec = product_spec(&m.a, &m.b);
        let tree_cell = if bits <= tree_max {
            let (r, t) = time(|| {
                verify(
                    &m.aig,
                    &spec,
                    Some(&analysis.adders),
                    &RewriteParams::default(),
                )
            });
            assert!(r.expect("tree-assisted rewriting fits budget").equivalent);
            fmt_time(t)
        } else {
            "skip".to_string()
        };
        let naive_cell = if bits <= naive_max {
            let (r, t) = time(|| verify(&m.aig, &spec, None, &RewriteParams::default()));
            match r {
                Ok(rep) if rep.equivalent => fmt_time(t),
                Ok(_) => "WRONG".to_string(),
                Err(_) => format!("DNF ({})", fmt_time(t)),
            }
        } else {
            "skip".to_string()
        };

        table.row(vec![
            bits.to_string(),
            v.to_string(),
            e.to_string(),
            fmt_time(gamora_t),
            fmt_time(exact_t),
            tree_cell,
            naive_cell,
            format!("{:.2}x", exact_t / gamora_t),
        ]);
    }
    table.print();
    println!("\npaper reference: ABC's exact flow needs ~1e5-1e6 s at 2048 bits while Gamora");
    println!("inference stays <1 s on an A100 (Fig. 7). On CPU, watch the naive symbolic");
    println!("flow blow up super-linearly while GNN inference scales linearly in |V|.");
}
