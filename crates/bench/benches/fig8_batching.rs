//! **Figure 8** — batched reasoning: average per-netlist inference time and
//! peak memory versus batch size, with the paper's 40 GB device-memory
//! ceiling for context.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench fig8_batching`

use gamora::{inference_memory_estimate, ModelDepth, ReasonerConfig};
use gamora_bench::{fmt_bytes, fmt_time, time, train_reasoner, workload, PeakAlloc, Scale, Table};
use gamora_circuits::MultiplierKind;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn main() {
    let scale = Scale::from_env();
    let widths: Vec<usize> =
        scale.pick(vec![32], vec![32, 64, 128], vec![128, 256, 512, 1024, 2048]);
    let batch_sizes: Vec<usize> = scale.pick(vec![1, 4], vec![1, 2, 4, 8], vec![1, 4, 8, 16, 32]);
    let epochs = scale.pick(120, 250, 400);
    const DEVICE_LIMIT: usize = 40 << 30; // the paper's A100 has 40 GB

    println!("\n=== Figure 8: batched reasoning (scale {scale:?}) ===");
    let reasoner = train_reasoner(
        MultiplierKind::Csa,
        &[4, 6, 8],
        ModelDepth::Shallow,
        gamora::FeatureMode::StructuralFunctional,
        true,
        epochs,
    );

    let mut table = Table::new(&[
        "bits",
        "batch",
        "t/graph",
        "peak heap",
        "est. activations",
        "of 40 GiB",
    ]);
    for &bits in &widths {
        let m = workload(MultiplierKind::Csa, bits);
        for &bs in &batch_sizes {
            let aigs: Vec<&gamora_aig::Aig> = std::iter::repeat_n(&m.aig, bs).collect();
            PeakAlloc::reset_peak();
            let (preds, t) = time(|| reasoner.predict_batch(&aigs));
            assert_eq!(preds.len(), bs);
            let peak = PeakAlloc::peak();
            let est = inference_memory_estimate(
                &ReasonerConfig::default(),
                bs * m.aig.num_nodes(),
                bs * 2 * m.aig.num_ands(),
            );
            table.row(vec![
                bits.to_string(),
                bs.to_string(),
                fmt_time(t / bs as f64),
                fmt_bytes(peak),
                fmt_bytes(est),
                format!("{:.3}%", est as f64 / DEVICE_LIMIT as f64 * 100.0),
            ]);
        }
    }
    table.print();
    println!("\npaper reference: batching amortises per-graph cost until the batch hits the");
    println!("40 GB A100 memory limit (Fig. 8); here the ceiling is host RAM instead.");
}
