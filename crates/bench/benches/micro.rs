//! Criterion micro-benchmarks of the substrate kernels: strashed
//! construction, cut enumeration, exact analysis, GNN layers, technology
//! mapping, simulation and algebraic verification.

use criterion::{criterion_group, criterion_main, Criterion};
use gamora::dataset::build_graph;
use gamora::features::{build_features, FeatureMode};
use gamora_circuits::csa_multiplier;
use gamora_gnn::{Direction, InferenceScratch, Matrix, ModelConfig, MultiTaskSage};
use gamora_sca::{product_spec, verify, RewriteParams};
use gamora_techmap::{map, Library, MapParams};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    c.bench_function("csa_multiplier_32 (strashed build)", |b| {
        b.iter(|| black_box(csa_multiplier(32)))
    });
}

fn bench_cut_enumeration(c: &mut Criterion) {
    let m = csa_multiplier(16);
    c.bench_function("cut_enumeration_16 (K=3)", |b| {
        b.iter(|| {
            black_box(gamora_aig::cut::enumerate_cuts(
                &m.aig,
                &gamora_aig::cut::CutParams::for_adder_extraction(),
            ))
        })
    });
}

fn bench_exact_analysis(c: &mut Criterion) {
    let m = csa_multiplier(16);
    c.bench_function("exact_analyze_16 (detect+extract+label)", |b| {
        b.iter(|| black_box(gamora_exact::analyze(&m.aig)))
    });
}

fn bench_gnn_forward(c: &mut Criterion) {
    let m = csa_multiplier(32);
    let graph = build_graph(&m.aig, Direction::Bidirectional);
    let x = build_features(&m.aig, FeatureMode::StructuralFunctional);
    let model = MultiTaskSage::new(ModelConfig {
        in_dim: 3,
        hidden: 32,
        layers: 4,
        shared_dim: 32,
        task_classes: vec![4, 2, 2],
        seed: 1,
    });
    c.bench_function("sage_forward_32 (4x32 model)", |b| {
        b.iter(|| black_box(model.forward(&graph, &x)))
    });
    let mut scratch = InferenceScratch::default();
    model.infer(&graph, &x, &mut scratch); // warm the buffers
    c.bench_function("sage_infer_32 (4x32 model, reused scratch)", |b| {
        b.iter(|| {
            model.infer(&graph, &x, &mut scratch);
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = Matrix::glorot(4096, 64, &mut rng);
    let w = Matrix::glorot(64, 64, &mut rng);
    c.bench_function("matmul_4096x64x64 (blocked kernel)", |b| {
        b.iter(|| black_box(a.matmul(&w)))
    });
    // The pre-blocking scalar reference: per-element k-ascending loop.
    let naive = |a: &Matrix, b: &Matrix| -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    };
    c.bench_function("matmul_4096x64x64 (naive reference)", |b| {
        b.iter(|| black_box(naive(&a, &w)))
    });
}

/// Fused split-weight SAGE forward vs the unfused composition it replaced
/// (aggregate, concat, matmul, bias add, ReLU as separate passes).
fn bench_fused_layer(c: &mut Criterion) {
    use gamora_gnn::{SageLayer, SageScratch};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let m = csa_multiplier(16);
    let graph = build_graph(&m.aig, Direction::Bidirectional);
    let n = graph.num_nodes();
    let h = Matrix::glorot(n, 32, &mut rng);

    let layer = SageLayer::new(32, 32, &mut rng);
    let mut ws = SageScratch::default();
    let mut out = Matrix::default();
    layer.forward_into(&graph, &h, &mut ws, &mut out); // warm buffers
    c.bench_function("sage_layer_2594x32 (fused split-weight)", |b| {
        b.iter(|| layer.forward_into(&graph, &h, &mut ws, &mut out))
    });

    let w = Matrix::glorot(64, 32, &mut rng);
    let bias = vec![0.01f32; 32];
    let mut agg = Matrix::default();
    let mut concat = Matrix::default();
    let mut y = Matrix::default();
    c.bench_function("sage_layer_2594x32 (unfused concat path)", |b| {
        b.iter(|| {
            graph.mean_aggregate_into(&h, &mut agg);
            h.hconcat_into(&agg, &mut concat);
            concat.matmul_into(&w, &mut y);
            y.add_row_vector(&bias);
            y.relu_in_place();
        })
    });
}

/// Zero-copy graph/batch assembly vs the allocating builders.
fn bench_assembly(c: &mut Criterion) {
    use gamora::dataset::{assemble_batch_into, BatchScratch};
    let m = csa_multiplier(16);
    c.bench_function("build_graph_16 (fresh)", |b| {
        b.iter(|| black_box(build_graph(&m.aig, Direction::Bidirectional)))
    });
    let mut reused = gamora_gnn::Graph::default();
    c.bench_function("build_graph_16 (into reused scratch)", |b| {
        b.iter(|| gamora::dataset::build_graph_into(&m.aig, Direction::Bidirectional, &mut reused))
    });

    let parts: Vec<_> = (0..8).map(|_| csa_multiplier(8)).collect();
    let aigs: Vec<_> = parts.iter().map(|p| &p.aig).collect();
    let mut ws = BatchScratch::default();
    c.bench_function("assemble_batch_8x_csa8 (zero-copy, reused)", |b| {
        b.iter(|| {
            assemble_batch_into(
                &aigs,
                FeatureMode::StructuralFunctional,
                Direction::Bidirectional,
                &mut ws,
            )
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let m = csa_multiplier(8);
    let simple = Library::simple();
    let complex = Library::complex7nm();
    c.bench_function("map_8_simple", |b| {
        b.iter(|| black_box(map(&m.aig, &simple, &MapParams::default())))
    });
    c.bench_function("map_8_complex", |b| {
        b.iter(|| black_box(map(&m.aig, &complex, &MapParams::default())))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let m = csa_multiplier(32);
    c.bench_function("random_simulation_32 (8 words)", |b| {
        b.iter(|| black_box(gamora_aig::sim::random_simulation(&m.aig, 8, 1)))
    });
}

fn bench_sca(c: &mut Criterion) {
    let m = csa_multiplier(8);
    let spec = product_spec(&m.a, &m.b);
    let analysis = gamora_exact::analyze(&m.aig);
    c.bench_function("sca_verify_8_tree_assisted", |b| {
        b.iter(|| {
            black_box(
                verify(
                    &m.aig,
                    &spec,
                    Some(&analysis.adders),
                    &RewriteParams::default(),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction, bench_cut_enumeration, bench_exact_analysis,
              bench_gnn_forward, bench_matmul, bench_fused_layer, bench_assembly,
              bench_mapping, bench_simulation, bench_sca
}
criterion_main!(benches);
