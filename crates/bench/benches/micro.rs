//! Criterion micro-benchmarks of the substrate kernels: strashed
//! construction, cut enumeration, exact analysis, GNN layers, technology
//! mapping, simulation and algebraic verification.

use criterion::{criterion_group, criterion_main, Criterion};
use gamora::dataset::build_graph;
use gamora::features::{build_features, FeatureMode};
use gamora_circuits::csa_multiplier;
use gamora_gnn::{Direction, InferenceScratch, Matrix, ModelConfig, MultiTaskSage};
use gamora_sca::{product_spec, verify, RewriteParams};
use gamora_techmap::{map, Library, MapParams};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    c.bench_function("csa_multiplier_32 (strashed build)", |b| {
        b.iter(|| black_box(csa_multiplier(32)))
    });
}

fn bench_cut_enumeration(c: &mut Criterion) {
    let m = csa_multiplier(16);
    c.bench_function("cut_enumeration_16 (K=3)", |b| {
        b.iter(|| {
            black_box(gamora_aig::cut::enumerate_cuts(
                &m.aig,
                &gamora_aig::cut::CutParams::for_adder_extraction(),
            ))
        })
    });
}

fn bench_exact_analysis(c: &mut Criterion) {
    let m = csa_multiplier(16);
    c.bench_function("exact_analyze_16 (detect+extract+label)", |b| {
        b.iter(|| black_box(gamora_exact::analyze(&m.aig)))
    });
}

fn bench_gnn_forward(c: &mut Criterion) {
    let m = csa_multiplier(32);
    let graph = build_graph(&m.aig, Direction::Bidirectional);
    let x = build_features(&m.aig, FeatureMode::StructuralFunctional);
    let model = MultiTaskSage::new(ModelConfig {
        in_dim: 3,
        hidden: 32,
        layers: 4,
        shared_dim: 32,
        task_classes: vec![4, 2, 2],
        seed: 1,
    });
    c.bench_function("sage_forward_32 (4x32 model)", |b| {
        b.iter(|| black_box(model.forward(&graph, &x)))
    });
    let mut scratch = InferenceScratch::default();
    model.infer(&graph, &x, &mut scratch); // warm the buffers
    c.bench_function("sage_infer_32 (4x32 model, reused scratch)", |b| {
        b.iter(|| {
            model.infer(&graph, &x, &mut scratch);
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = Matrix::glorot(4096, 64, &mut rng);
    let w = Matrix::glorot(64, 64, &mut rng);
    c.bench_function("matmul_4096x64x64", |b| b.iter(|| black_box(a.matmul(&w))));
}

fn bench_mapping(c: &mut Criterion) {
    let m = csa_multiplier(8);
    let simple = Library::simple();
    let complex = Library::complex7nm();
    c.bench_function("map_8_simple", |b| {
        b.iter(|| black_box(map(&m.aig, &simple, &MapParams::default())))
    });
    c.bench_function("map_8_complex", |b| {
        b.iter(|| black_box(map(&m.aig, &complex, &MapParams::default())))
    });
}

fn bench_simulation(c: &mut Criterion) {
    let m = csa_multiplier(32);
    c.bench_function("random_simulation_32 (8 words)", |b| {
        b.iter(|| black_box(gamora_aig::sim::random_simulation(&m.aig, 8, 1)))
    });
}

fn bench_sca(c: &mut Criterion) {
    let m = csa_multiplier(8);
    let spec = product_spec(&m.a, &m.b);
    let analysis = gamora_exact::analyze(&m.aig);
    c.bench_function("sca_verify_8_tree_assisted", |b| {
        b.iter(|| {
            black_box(
                verify(
                    &m.aig,
                    &spec,
                    Some(&analysis.adders),
                    &RewriteParams::default(),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction, bench_cut_enumeration, bench_exact_analysis,
              bench_gnn_forward, bench_matmul, bench_mapping, bench_simulation,
              bench_sca
}
criterion_main!(benches);
