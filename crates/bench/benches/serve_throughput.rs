//! Serving throughput of the `gamora-serve` scheduler: AIGs/sec as a
//! function of micro-batch size, measured **cold** (cache disabled — every
//! submission pays a GNN forward pass) and **hot** (structural-hash cache
//! warmed — repeated submissions skip the model entirely).
//!
//! This is the baseline every later scaling PR (sharding, async I/O,
//! multi-backend) is measured against; the numbers are recorded in
//! CHANGES.md.
//!
//! Regenerate: `cargo bench -p gamora-bench --bench serve_throughput`

use gamora::{FeatureMode, ModelDepth};
use gamora_bench::{time, train_reasoner, workload, Scale, Table};
use gamora_circuits::MultiplierKind;
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    let bits = scale.pick(8, 16, 64);
    let count = scale.pick(32, 128, 512);
    let batch_sizes: Vec<usize> = vec![1, 8, 64];
    let epochs = scale.pick(80, 200, 400);

    println!(
        "\n=== Serving throughput: {count} x {bits}-bit CSA submissions (scale {scale:?}) ==="
    );
    // One shared model for every server below: workers borrow it through
    // the `Arc`, nobody clones the weights.
    let reasoner = Arc::new(train_reasoner(
        MultiplierKind::Csa,
        &[4, 6, 8],
        ModelDepth::Shallow,
        FeatureMode::StructuralFunctional,
        true,
        epochs,
    ));
    let subject = workload(MultiplierKind::Csa, bits);
    println!(
        "subject: {} nodes, {} ANDs; model: {} params",
        subject.aig.num_nodes(),
        subject.aig.num_ands(),
        reasoner.num_params()
    );

    let mut table = Table::new(&[
        "batch",
        "cold (AIGs/s)",
        "hot (AIGs/s)",
        "speedup",
        "fwd passes (cold)",
    ]);
    for &batch in &batch_sizes {
        let run = |server: &Server| {
            for start in (0..count).step_by(batch) {
                let n = batch.min(count - start);
                let jobs = (0..n)
                    .map(|_| (subject.aig.clone(), AnalysisKind::Classify))
                    .collect();
                server.submit_all(jobs).expect("all jobs answered");
            }
        };

        let cold_server = Server::start_shared(
            Arc::clone(&reasoner),
            ServeConfig {
                max_batch: batch,
                workers: 1,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let (_, cold_secs) = time(|| run(&cold_server));
        let cold_stats = cold_server.shutdown();

        let hot_server = Server::start_shared(
            Arc::clone(&reasoner),
            ServeConfig {
                max_batch: batch,
                workers: 1,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        );
        hot_server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("warmup admitted")
            .wait()
            .expect("warmup job answered");
        let (_, hot_secs) = time(|| run(&hot_server));
        let hot_stats = hot_server.shutdown();
        assert_eq!(hot_stats.forward_passes, 1, "hot run must be cache-served");

        let cold_rate = count as f64 / cold_secs;
        let hot_rate = count as f64 / hot_secs;
        table.row(vec![
            batch.to_string(),
            format!("{cold_rate:.1}"),
            format!("{hot_rate:.1}"),
            format!("{:.0}x", hot_rate / cold_rate),
            cold_stats.forward_passes.to_string(),
        ]);
    }
    table.print();
}
