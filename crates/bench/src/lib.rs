//! Shared infrastructure for the figure-regeneration benches: scale
//! selection, workload/training helpers, result tables, and a
//! peak-tracking allocator for the memory measurements of Figure 8.

#![warn(missing_docs)]

use gamora::{FeatureMode, GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::{generate_multiplier, ArithCircuit, MultiplierKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Experiment scale, selected by the `GAMORA_SCALE` environment variable
/// (`quick`, `default`, `paper`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Minutes-level smoke run.
    Quick,
    /// CPU-friendly defaults used for EXPERIMENTS.md.
    Default,
    /// Paper-sized sweeps (hours on a workstation).
    Paper,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("GAMORA_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Picks one of three values by scale.
    pub fn pick<T>(self, quick: T, default: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}

/// Times a closure, returning its result and elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Generates (and caches nothing — generators are fast) a multiplier.
pub fn workload(kind: MultiplierKind, bits: usize) -> ArithCircuit {
    generate_multiplier(kind, bits)
}

/// Trains a reasoner on multipliers of the given widths.
pub fn train_reasoner(
    kind: MultiplierKind,
    widths: &[usize],
    depth: ModelDepth,
    feature_mode: FeatureMode,
    multi_task: bool,
    epochs: usize,
) -> GamoraReasoner {
    let circuits: Vec<ArithCircuit> = widths.iter().map(|&b| workload(kind, b)).collect();
    let refs: Vec<&gamora_aig::Aig> = circuits.iter().map(|c| &c.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth,
        feature_mode,
        multi_task,
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &refs,
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// A simple aligned text table for bench output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Formats seconds as engineering-friendly milliseconds/seconds.
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A system-allocator wrapper tracking live and peak heap usage — the
/// stand-in for the paper's GPU memory meter in Figure 8.
pub struct PeakAlloc;

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let now = ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        ALLOCATED.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl PeakAlloc {
    /// Live heap bytes.
    pub fn current() -> usize {
        ALLOCATED.load(Ordering::Relaxed)
    }

    /// Peak heap bytes since the last [`PeakAlloc::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size.
    pub fn reset_peak() {
        PEAK.store(ALLOCATED.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Bytes formatted as MiB/GiB.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // should not panic
        assert_eq!(pct(0.5), "50.00");
        assert!(fmt_time(0.001).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
        assert!(fmt_bytes(1 << 20).contains("MiB"));
        assert!(fmt_bytes(1 << 31).contains("GiB"));
    }
}
