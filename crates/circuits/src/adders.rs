//! Stand-alone adder generators.

use crate::columns::ripple_merge;
use crate::types::{ArithCircuit, Provenance};
use gamora_aig::{Aig, Lit};

/// Generates a `bits`-wide ripple-carry adder (`a + b`, carry-out included,
/// so the result has `bits + 1` output bits).
///
/// Every bitslice is a textbook full adder, so the exact extractor should
/// recover exactly `bits` adders from this netlist — a useful calibration
/// workload.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let add = gamora_circuits::ripple_carry_adder(8);
/// assert_eq!(add.eval(200, 100), 300);
/// ```
pub fn ripple_carry_adder(bits: usize) -> ArithCircuit {
    assert!(bits > 0);
    let mut aig = Aig::with_capacity(12 * bits);
    aig.set_name(format!("rca{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    let mut provenance = Provenance::default();
    let (mut outputs, carry) = ripple_merge(&mut aig, &a, &b, Lit::FALSE, &mut provenance);
    outputs.push(carry);
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance,
    }
}

/// Generates a `bits`-wide Kogge-Stone parallel-prefix adder.
///
/// Unlike the ripple adder this structure contains *no* full-adder
/// bitslices beyond the initial propagate/generate stage — its carries are
/// computed by a logarithmic prefix network. It serves as a negative
/// control: an adder-tree extractor must not hallucinate FA/MAJ pairs in
/// prefix logic, and Gamora's node classifier sees a realistic non-CSA
/// adder style.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let add = gamora_circuits::kogge_stone_adder(16);
/// assert_eq!(add.eval(40_000, 30_000), 70_000);
/// ```
pub fn kogge_stone_adder(bits: usize) -> ArithCircuit {
    assert!(bits > 0);
    let mut aig = Aig::with_capacity(20 * bits);
    aig.set_name(format!("ks{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    // Stage 0: bitwise propagate/generate.
    let mut g: Vec<Lit> = Vec::with_capacity(bits);
    let mut p: Vec<Lit> = Vec::with_capacity(bits);
    for i in 0..bits {
        g.push(aig.and(a[i], b[i]));
        p.push(aig.xor(a[i], b[i]));
    }
    // Prefix combine: (G, P) o (G', P') = (G | P & G', P & P').
    let mut dist = 1;
    let (mut gg, mut pp) = (g.clone(), p.clone());
    while dist < bits {
        let (prev_g, prev_p) = (gg.clone(), pp.clone());
        for i in dist..bits {
            let pg = aig.and(prev_p[i], prev_g[i - dist]);
            gg[i] = aig.or(prev_g[i], pg);
            pp[i] = aig.and(prev_p[i], prev_p[i - dist]);
        }
        dist *= 2;
    }
    // Sum bits: s_i = p_i ^ c_i with c_0 = 0 and c_{i} = G over [i-1..0].
    let mut outputs = Vec::with_capacity(bits + 1);
    outputs.push(p[0]);
    for i in 1..bits {
        outputs.push(aig.xor(p[i], gg[i - 1]));
    }
    outputs.push(gg[bits - 1]); // carry-out
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance: Provenance::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ripple_adds_exhaustively() {
        let add = ripple_carry_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(add.eval(a, b), (a + b) as u128);
            }
        }
    }

    #[test]
    fn ripple_provenance_counts_bits() {
        let add = ripple_carry_adder(8);
        // First slice has no carry-in (HA after folding); rest are FAs.
        assert_eq!(add.provenance.real_adders().count(), 8);
    }

    #[test]
    fn kogge_stone_adds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x45);
        for bits in [1usize, 2, 3, 8, 16, 33, 64] {
            let add = kogge_stone_adder(bits);
            let mask = if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            for _ in 0..16 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                assert_eq!(add.eval(a, b), a as u128 + b as u128, "{bits}-bit {a}+{b}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_logarithmic_depth() {
        let rc = ripple_carry_adder(64);
        let ks = kogge_stone_adder(64);
        assert!(ks.aig.stats().levels < rc.aig.stats().levels / 2);
    }
}
