//! Radix-4 Booth-encoded multiplier generator.
//!
//! Booth recoding halves the number of partial products by scanning the
//! multiplier in overlapping 3-bit windows and selecting a signed digit in
//! `{-2, -1, 0, +1, +2}` per window. The resulting netlist is markedly less
//! regular than a CSA array — encoder cells, operand muxing, conditional
//! negation and sign-extension bookkeeping — which is exactly why the paper
//! uses it to probe Gamora's generalisation to "structurally complex"
//! designs (Figures 5 and 6).

use crate::columns::reduce_columns;
use crate::types::{ArithCircuit, Provenance};
use gamora_aig::{Aig, Lit};

/// Generates an unsigned `bits x bits -> 2*bits` radix-4 Booth multiplier.
///
/// Each Booth digit `d_k` is recoded from multiplier bits
/// `(b[2k+1], b[2k], b[2k-1])`; the partial product `d_k * a` is formed by
/// muxing `a`/`2a`, conditionally complementing, and adding a two's
/// complement correction bit. Sign extension uses the standard inverted
/// sign-bit trick with a single compile-time constant, so all rows stay
/// `bits + 2` wide before column compression.
///
/// # Panics
///
/// Panics if `bits < 2` (radix-4 needs at least one full digit window).
///
/// ```
/// let m = gamora_circuits::booth_multiplier(8);
/// assert_eq!(m.eval(255, 255), 255 * 255);
/// ```
pub fn booth_multiplier(bits: usize) -> ArithCircuit {
    assert!(bits >= 2, "booth multiplier needs at least 2 bits");
    let n = bits;
    let width = 2 * n;
    let mut aig = Aig::with_capacity(16 * n * n);
    aig.set_name(format!("booth_mult{n}"));
    let a = aig.add_inputs(n);
    let b = aig.add_inputs(n);

    let a_bit = |j: isize| -> Lit {
        if j < 0 || j as usize >= n {
            Lit::FALSE
        } else {
            a[j as usize]
        }
    };
    let b_bit = |j: isize| -> Lit {
        if j < 0 || j as usize >= n {
            Lit::FALSE
        } else {
            b[j as usize]
        }
    };

    let digits = n / 2 + 1;
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    // Accumulates the compile-time constant from the inverted-sign-bit
    // trick: for each row we replace the sign bit `s` at absolute weight
    // `w_k` by `!s` and owe `-2^{w_k}`, summed here as `t` then negated.
    let mut t = vec![false; width];

    for k in 0..digits {
        let (b_hi, b_mid, b_lo) = (
            b_bit(2 * k as isize + 1),
            b_bit(2 * k as isize),
            b_bit(2 * k as isize - 1),
        );
        // Booth encoder: one = +/-1 selected, two = +/-2 selected, neg = sign.
        let one = aig.xor(b_mid, b_lo);
        let hi_mid = aig.xor(b_hi, b_mid);
        let two = aig.and(hi_mid, !one);
        let neg = b_hi;

        // Row bits j = 0 .. n+1 at absolute weight 2k + j.
        for j in 0..=(n + 1) {
            let w = 2 * k + j;
            if w >= width {
                continue;
            }
            let take_one = aig.and(one, a_bit(j as isize));
            let take_two = aig.and(two, a_bit(j as isize - 1));
            let raw = aig.or(take_one, take_two);
            let bit = aig.xor(raw, neg);
            if j == n + 1 {
                // Sign position: push the inverted sign and owe -2^w.
                columns[w].push(!bit);
                add_power(&mut t, w);
            } else {
                columns[w].push(bit);
            }
        }
        // Two's complement correction (+1 when the digit is negative).
        columns[2 * k].push(neg);
    }

    // Convert owed constant -t into +((2^width - t) mod 2^width) and push
    // its set bits as constant-true column entries.
    for (w, bit) in negate_mod(&t).into_iter().enumerate() {
        if bit {
            columns[w].push(Lit::TRUE);
        }
    }

    let mut provenance = Provenance::default();
    let outputs = reduce_columns(&mut aig, columns, &mut provenance);
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance,
    }
}

/// Adds `2^w` into a little-endian bit vector (modulo its width).
fn add_power(bits: &mut [bool], w: usize) {
    let mut carry = true;
    let mut i = w;
    while carry && i < bits.len() {
        carry = bits[i];
        bits[i] = !bits[i];
        i += 1;
    }
}

/// Two's complement negation of a little-endian bit vector (mod 2^width).
fn negate_mod(bits: &[bool]) -> Vec<bool> {
    let mut out: Vec<bool> = bits.iter().map(|b| !b).collect();
    add_power_vec(&mut out, 0);
    out
}

fn add_power_vec(bits: &mut [bool], w: usize) {
    add_power(bits, w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exhaustive_small_widths() {
        for bits in 2..=5usize {
            let m = booth_multiplier(bits);
            for a in 0..(1u64 << bits) {
                for b in 0..(1u64 << bits) {
                    assert_eq!(
                        m.eval(a, b),
                        (a as u128) * (b as u128),
                        "{bits}-bit {a}*{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_large_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
        for bits in [8usize, 16, 24, 32, 48, 64] {
            let m = booth_multiplier(bits);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            for _ in 0..8 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                assert_eq!(
                    m.eval(a, b),
                    (a as u128) * (b as u128),
                    "{bits}-bit {a}*{b}"
                );
            }
        }
    }

    #[test]
    fn corner_cases() {
        let m = booth_multiplier(8);
        for (a, b) in [
            (0, 0),
            (0, 255),
            (255, 0),
            (255, 255),
            (1, 255),
            (128, 128),
            (85, 170),
        ] {
            assert_eq!(m.eval(a, b), (a as u128) * (b as u128), "{a}*{b}");
        }
    }

    #[test]
    fn booth_is_smaller_than_csa_in_partial_products_but_less_regular() {
        // Booth halves the partial-product rows; with our conservative
        // encoder the node count stays within ~2x of CSA while the
        // structure becomes far less regular (more distinct level shapes).
        let booth = booth_multiplier(16);
        let csa = crate::csa_multiplier(16);
        let ratio = booth.aig.num_ands() as f64 / csa.aig.num_ands() as f64;
        assert!(ratio < 2.0, "booth/csa node ratio {ratio}");
    }

    #[test]
    fn bitvec_helpers() {
        let mut v = vec![false; 4];
        add_power(&mut v, 1); // 2
        add_power(&mut v, 1); // 4
        add_power(&mut v, 0); // 5
        assert_eq!(v, vec![true, false, true, false]);
        // negate: -5 mod 16 = 11 = 0b1011
        assert_eq!(negate_mod(&v), vec![true, true, false, true]);
    }
}
