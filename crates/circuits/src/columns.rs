//! Carry-save column compression and carry-propagate merging.
//!
//! Multiplier partial products are organised as *columns* of equal binary
//! weight. Column compression places full/half adders until every column
//! holds at most two bits (the carry-save adder tree that Gamora's task is
//! to rediscover), and a final ripple carry-propagate chain merges the last
//! two rows.

use crate::types::{AdderKind, AdderRecord, Provenance};
use gamora_aig::{Aig, Lit};

/// Adds three weighted bits, recording the placed adder in `prov`.
///
/// Constants among the inputs fold structurally (a full adder with one
/// constant input degenerates into a half-adder pair); the record's kind
/// reflects the number of non-constant inputs.
pub(crate) fn add_bits3(
    aig: &mut Aig,
    prov: &mut Provenance,
    a: Lit,
    b: Lit,
    c: Lit,
) -> (Lit, Lit) {
    let (sum, carry) = aig.full_adder(a, b, c);
    let kind = match [a, b, c].iter().filter(|l| !l.is_const()).count() {
        3 => AdderKind::Full,
        _ => AdderKind::Half,
    };
    prov.adders.push(AdderRecord {
        kind,
        sum,
        carry,
        inputs: [a, b, c],
    });
    (sum, carry)
}

/// Adds two equal-width bit vectors with a ripple-carry chain.
///
/// Returns `(sum_bits, carry_out)`. Every placed bitslice is recorded in
/// `prov`.
///
/// # Panics
///
/// Panics if the vectors differ in width.
pub fn ripple_merge(
    aig: &mut Aig,
    xs: &[Lit],
    ys: &[Lit],
    carry_in: Lit,
    prov: &mut Provenance,
) -> (Vec<Lit>, Lit) {
    assert_eq!(xs.len(), ys.len(), "ripple_merge requires equal widths");
    let mut out = Vec::with_capacity(xs.len());
    let mut carry = carry_in;
    for (&x, &y) in xs.iter().zip(ys) {
        let (s, c) = add_bits3(aig, prov, x, y, carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Compresses weighted bit columns into a single binary result of width
/// `columns.len()` (arithmetic is modulo `2^width`; overflowing carries are
/// dropped).
///
/// Phase 1 walks the columns from least significant weight and places a
/// full adder for every three available bits (first-in-first-out), feeding
/// carries into the next column. Phase 2 merges the remaining ≤2 bits per
/// column with a ripple carry-propagate chain.
pub fn reduce_columns(
    aig: &mut Aig,
    mut columns: Vec<Vec<Lit>>,
    prov: &mut Provenance,
) -> Vec<Lit> {
    let width = columns.len();
    // Phase 1: carry-save compression to at most two bits per column.
    for w in 0..width {
        let mut taken = 0;
        while columns[w].len() - taken >= 3 {
            let (a, b, c) = (
                columns[w][taken],
                columns[w][taken + 1],
                columns[w][taken + 2],
            );
            taken += 3;
            let (s, cy) = add_bits3(aig, prov, a, b, c);
            columns[w].push(s);
            if w + 1 < width {
                columns[w + 1].push(cy);
            }
        }
        columns[w].drain(..taken);
        debug_assert!(columns[w].len() <= 2);
    }
    // Phase 2: final carry-propagate chain over the two remaining rows.
    let mut out = Vec::with_capacity(width);
    let mut carry = Lit::FALSE;
    for col in &columns {
        let x = col.first().copied().unwrap_or(Lit::FALSE);
        let y = col.get(1).copied().unwrap_or(Lit::FALSE);
        if x.is_const() && y.is_const() && carry.is_const() {
            // Pure constants need no gates; fold by hand.
            let bits = [x, y, carry].iter().filter(|l| **l == Lit::TRUE).count() as u32;
            out.push(if bits & 1 == 1 { Lit::TRUE } else { Lit::FALSE });
            carry = if bits >= 2 { Lit::TRUE } else { Lit::FALSE };
        } else {
            let (s, c) = add_bits3(aig, prov, x, y, carry);
            out.push(s);
            carry = c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::sim;

    /// Reduce columns holding a known set of constant-weight input bits and
    /// compare against direct integer addition.
    #[test]
    fn column_reduction_adds_correctly() {
        // Five 3-bit numbers summed: width must cover 5 * 7 = 35 -> 6 bits.
        let mut aig = Aig::new();
        let width = 6;
        let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
        let mut pins = Vec::new();
        for _ in 0..5 {
            let bits = aig.add_inputs(3);
            for (w, &b) in bits.iter().enumerate() {
                columns[w].push(b);
            }
            pins.push(bits);
        }
        let mut prov = Provenance::default();
        let sum_bits = reduce_columns(&mut aig, columns, &mut prov);
        for &s in &sum_bits {
            aig.add_output(s);
        }
        // Try a few assignments.
        for vals in [
            [1u64, 2, 3, 4, 5],
            [7, 7, 7, 7, 7],
            [0, 0, 0, 0, 0],
            [5, 0, 7, 1, 2],
        ] {
            let mut inputs = Vec::new();
            for v in vals {
                for i in 0..3 {
                    inputs.push(v >> i & 1 != 0);
                }
            }
            let out = sim::eval(&aig, &inputs);
            let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            assert_eq!(got, vals.iter().sum::<u64>());
        }
        assert!(prov.real_adders().count() > 0);
    }

    #[test]
    fn ripple_merge_is_addition_with_carry() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let ys = aig.add_inputs(4);
        let mut prov = Provenance::default();
        let (sum, cout) = ripple_merge(&mut aig, &xs, &ys, Lit::TRUE, &mut prov);
        for s in &sum {
            aig.add_output(*s);
        }
        aig.add_output(cout);
        for (a, b) in [(0u64, 0u64), (15, 15), (9, 6), (12, 5)] {
            let mut inputs = Vec::new();
            for i in 0..4 {
                inputs.push(a >> i & 1 != 0);
            }
            for i in 0..4 {
                inputs.push(b >> i & 1 != 0);
            }
            let out = sim::eval(&aig, &inputs);
            let got: u64 = out.iter().enumerate().map(|(i, &v)| (v as u64) << i).sum();
            assert_eq!(got, a + b + 1, "{a} + {b} + 1");
        }
    }

    #[test]
    fn constant_columns_fold_without_gates() {
        let mut aig = Aig::new();
        let columns = vec![vec![Lit::TRUE, Lit::TRUE], vec![Lit::TRUE]]; // 1+1 + 2 = 4 mod 4 = 0
        let mut prov = Provenance::default();
        let out = reduce_columns(&mut aig, columns, &mut prov);
        assert_eq!(aig.num_ands(), 0);
        // 1 + 1 = 0b10 in column 0 -> sum bit 0 = 0, carry into col 1: 1 + 1 = 0 (mod 4)
        assert_eq!(out, vec![Lit::FALSE, Lit::FALSE]);
    }
}
