//! Dadda-style multiplier and carry-select adder — alternative
//! architectures used to probe generalisation beyond the paper's two
//! multiplier families.

use crate::columns::{add_bits3, ripple_merge};
use crate::types::{ArithCircuit, Provenance};
use gamora_aig::{Aig, Lit};

/// Generates an unsigned Dadda multiplier: partial products are compressed
/// with the minimum number of full/half adders per stage, following Dadda's
/// descending height sequence (..., 13, 9, 6, 4, 3, 2), then merged with a
/// ripple carry-propagate adder.
///
/// Compared to [`crate::csa_multiplier`], the adder tree is shallower and
/// placed irregularly — a harder target for structure-based reasoning.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let m = gamora_circuits::dadda_multiplier(8);
/// assert_eq!(m.eval(123, 45), 123 * 45);
/// ```
pub fn dadda_multiplier(bits: usize) -> ArithCircuit {
    assert!(bits > 0, "multiplier width must be positive");
    let mut aig = Aig::with_capacity(12 * bits * bits);
    aig.set_name(format!("dadda_mult{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    let width = 2 * bits;
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = aig.and(aj, bi);
            columns[i + j].push(pp);
        }
    }
    let mut provenance = Provenance::default();

    // Dadda height sequence: d_1 = 2, d_{k+1} = floor(1.5 * d_k).
    let mut heights = vec![2usize];
    while *heights.last().unwrap() < bits {
        let next = heights.last().unwrap() * 3 / 2;
        heights.push(next);
    }
    // Reduce stage by stage to each target height (descending).
    for &target in heights.iter().rev() {
        for w in 0..width {
            while columns[w].len() > target {
                let excess = columns[w].len() - target;
                if excess >= 2 {
                    // Full adder removes two bits from this column.
                    let (x, y, z) = (columns[w][0], columns[w][1], columns[w][2]);
                    columns[w].drain(..3);
                    let (s, c) = add_bits3(&mut aig, &mut provenance, x, y, z);
                    columns[w].push(s);
                    if w + 1 < width {
                        columns[w + 1].push(c);
                    }
                } else {
                    // Half adder removes one bit.
                    let (x, y) = (columns[w][0], columns[w][1]);
                    columns[w].drain(..2);
                    let (s, c) = add_bits3(&mut aig, &mut provenance, x, y, Lit::FALSE);
                    columns[w].push(s);
                    if w + 1 < width {
                        columns[w + 1].push(c);
                    }
                }
            }
        }
    }
    // Final two rows -> ripple carry-propagate addition.
    let xs: Vec<Lit> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(Lit::FALSE))
        .collect();
    let ys: Vec<Lit> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(Lit::FALSE))
        .collect();
    let (outputs, _) = ripple_merge(&mut aig, &xs, &ys, Lit::FALSE, &mut provenance);
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance,
    }
}

/// Generates a carry-select adder: the upper half is computed twice (for
/// carry-in 0 and 1) and selected by the lower half's carry-out. Contains
/// genuine FA/HA slices *plus* mux selection logic — a mixed workload.
///
/// # Panics
///
/// Panics if `bits < 2`.
///
/// ```
/// let add = gamora_circuits::carry_select_adder(8);
/// assert_eq!(add.eval(200, 99), 299);
/// ```
pub fn carry_select_adder(bits: usize) -> ArithCircuit {
    assert!(bits >= 2, "carry-select needs at least 2 bits");
    let mut aig = Aig::with_capacity(30 * bits);
    aig.set_name(format!("csel{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    let half = bits / 2;
    let mut provenance = Provenance::default();
    let (low_sum, low_carry) = ripple_merge(
        &mut aig,
        &a[..half],
        &b[..half],
        Lit::FALSE,
        &mut provenance,
    );
    let (hi0, c0) = ripple_merge(
        &mut aig,
        &a[half..],
        &b[half..],
        Lit::FALSE,
        &mut provenance,
    );
    let (hi1, c1) = ripple_merge(&mut aig, &a[half..], &b[half..], Lit::TRUE, &mut provenance);
    let mut outputs = low_sum;
    for (s0, s1) in hi0.iter().zip(&hi1) {
        outputs.push(aig.mux(low_carry, *s1, *s0));
    }
    outputs.push(aig.mux(low_carry, c1, c0));
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dadda_exhaustive_small() {
        for bits in [1usize, 2, 3, 4] {
            let m = dadda_multiplier(bits);
            for a in 0..(1u64 << bits) {
                for b in 0..(1u64 << bits) {
                    assert_eq!(
                        m.eval(a, b),
                        (a as u128) * (b as u128),
                        "{bits}-bit {a}*{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dadda_random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xDADDA);
        for bits in [8usize, 16, 32] {
            let m = dadda_multiplier(bits);
            let mask = (1u64 << bits) - 1;
            for _ in 0..8 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                assert_eq!(m.eval(a, b), (a as u128) * (b as u128));
            }
        }
    }

    #[test]
    fn dadda_is_shallower_than_csa() {
        let csa = crate::csa_multiplier(16);
        let dadda = dadda_multiplier(16);
        assert!(
            dadda.aig.stats().levels <= csa.aig.stats().levels,
            "dadda {} vs csa {}",
            dadda.aig.stats().levels,
            csa.aig.stats().levels
        );
    }

    #[test]
    fn carry_select_exhaustive_small() {
        for bits in [2usize, 3, 4, 5] {
            let add = carry_select_adder(bits);
            for a in 0..(1u64 << bits) {
                for b in 0..(1u64 << bits) {
                    assert_eq!(add.eval(a, b), (a + b) as u128, "{bits}-bit {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn carry_select_random_wide() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC5E1);
        for bits in [16usize, 32, 48] {
            let add = carry_select_adder(bits);
            let mask = (1u64 << bits) - 1;
            for _ in 0..8 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                assert_eq!(add.eval(a, b), a as u128 + b as u128);
            }
        }
    }
}
