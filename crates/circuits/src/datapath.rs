//! Composite datapath generators used by the examples: circuits that embed
//! multiplier adder trees inside larger logic, the realistic setting for
//! reverse engineering.

use crate::columns::reduce_columns;
use crate::types::{ArithCircuit, Provenance};
use gamora_aig::{Aig, Lit};

/// Generates a fused multiply-accumulate `a * b + c` where `a`, `b` are
/// `bits` wide and the accumulator `c` is `2 * bits` wide; the result has
/// `2 * bits + 1` bits.
///
/// The accumulator bits are injected straight into the partial-product
/// columns, so the multiplier's carry-save tree and the accumulation share
/// adders — hierarchy that is invisible in the flattened netlist.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let mac = gamora_circuits::multiply_accumulate(6);
/// assert_eq!(mac.eval_all(&[60, 50, 1000]), 60 * 50 + 1000);
/// ```
pub fn multiply_accumulate(bits: usize) -> ArithCircuit {
    assert!(bits > 0);
    let mut aig = Aig::with_capacity(14 * bits * bits);
    aig.set_name(format!("mac{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    let c = aig.add_inputs(2 * bits);
    let width = 2 * bits + 1;
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = aig.and(aj, bi);
            columns[i + j].push(pp);
        }
    }
    for (w, &ci) in c.iter().enumerate() {
        columns[w].push(ci);
    }
    let mut provenance = Provenance::default();
    let outputs = reduce_columns(&mut aig, columns, &mut provenance);
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: vec![c],
        outputs,
        provenance,
    }
}

/// Generates a dot product of `lanes` pairs of `bits`-wide operands:
/// `sum_i a_i * b_i`. Operand groups are ordered
/// `a_0, b_0, a_1, b_1, ...` (group `a_0` is `a`, `b_0` is `b`, the rest
/// are `extra_operands`).
///
/// All lane partial products feed one shared carry-save tree — the typical
/// structure of an inner-product datapath after flattening.
///
/// # Panics
///
/// Panics if `bits == 0` or `lanes == 0`.
///
/// ```
/// let dp = gamora_circuits::dot_product(4, 2);
/// assert_eq!(dp.eval_all(&[3, 5, 7, 9]), 3 * 5 + 7 * 9);
/// ```
pub fn dot_product(bits: usize, lanes: usize) -> ArithCircuit {
    assert!(bits > 0 && lanes > 0);
    let mut aig = Aig::with_capacity(14 * bits * bits * lanes);
    aig.set_name(format!("dot{lanes}x{bits}"));
    let mut groups: Vec<Vec<Lit>> = Vec::with_capacity(2 * lanes);
    for _ in 0..lanes {
        groups.push(aig.add_inputs(bits));
        groups.push(aig.add_inputs(bits));
    }
    // Result width: lanes * (2^bits - 1)^2 needs 2*bits + ceil(log2(lanes)).
    let width = 2 * bits + lanes.next_power_of_two().trailing_zeros() as usize + 1;
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for lane in 0..lanes {
        let (a, b) = (&groups[2 * lane], &groups[2 * lane + 1]);
        for (i, &bi) in b.iter().enumerate() {
            for (j, &aj) in a.iter().enumerate() {
                let pp = aig.and(aj, bi);
                columns[i + j].push(pp);
            }
        }
    }
    let mut provenance = Provenance::default();
    let outputs = reduce_columns(&mut aig, columns, &mut provenance);
    for &o in &outputs {
        aig.add_output(o);
    }
    let mut iter = groups.into_iter();
    let a = iter.next().expect("lane 0 a");
    let b = iter.next().expect("lane 0 b");
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: iter.collect(),
        outputs,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mac_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x3AC);
        for bits in [2usize, 4, 8, 12] {
            let mac = multiply_accumulate(bits);
            let mask = (1u64 << bits) - 1;
            let cmask = (1u64 << (2 * bits)) - 1;
            for _ in 0..10 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                let c = rng.gen::<u64>() & cmask;
                assert_eq!(
                    mac.eval_all(&[a, b, c]),
                    a as u128 * b as u128 + c as u128,
                    "{bits}-bit {a}*{b}+{c}"
                );
            }
        }
    }

    #[test]
    fn dot_product_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD07);
        for (bits, lanes) in [(3usize, 2usize), (4, 3), (4, 4), (6, 2)] {
            let dp = dot_product(bits, lanes);
            let mask = (1u64 << bits) - 1;
            for _ in 0..10 {
                let vals: Vec<u64> = (0..2 * lanes).map(|_| rng.gen::<u64>() & mask).collect();
                let expected: u128 = vals.chunks(2).map(|p| p[0] as u128 * p[1] as u128).sum();
                assert_eq!(dp.eval_all(&vals), expected, "{bits}x{lanes} {vals:?}");
            }
        }
    }

    #[test]
    fn mac_embeds_more_adders_than_bare_multiplier() {
        let bits = 6;
        let mult = crate::csa_multiplier(bits);
        let mac = multiply_accumulate(bits);
        assert!(mac.provenance.real_adders().count() > mult.provenance.real_adders().count());
    }
}
