//! # gamora-circuits
//!
//! Generators for the arithmetic workloads evaluated in the Gamora paper:
//! carry-save-array (CSA) and radix-4 Booth-encoded integer multipliers,
//! plus adders and small datapaths (multiply-accumulate, dot product) used
//! by the examples.
//!
//! Every generator emits a plain [`gamora_aig::Aig`] — a flattened,
//! bit-blasted netlist with no module hierarchy, mirroring the output of
//! `abc`'s multiplier generator — together with a [`Provenance`] record of
//! every full/half adder the constructor placed. The provenance is *not*
//! visible to the learning pipeline; it exists to cross-validate the exact
//! reasoning engine (`gamora-exact`), exactly as ABC's generator output
//! validates its `&atree` extraction.
//!
//! ```
//! use gamora_circuits::csa_multiplier;
//! let m = csa_multiplier(4);
//! assert_eq!(m.aig.num_inputs(), 8);
//! assert_eq!(m.outputs.len(), 8);
//! // 4-bit multiplier: check 5 * 7 = 35 by simulation.
//! assert_eq!(m.eval(5, 7), 35);
//! ```

#![warn(missing_docs)]

mod adders;
mod booth;
mod columns;
mod dadda;
mod datapath;
mod mult;
mod types;

pub use adders::{kogge_stone_adder, ripple_carry_adder};
pub use booth::booth_multiplier;
pub use columns::{reduce_columns, ripple_merge};
pub use dadda::{carry_select_adder, dadda_multiplier};
pub use datapath::{dot_product, multiply_accumulate};
pub use mult::csa_multiplier;
pub use types::{AdderKind, AdderRecord, ArithCircuit, MultiplierKind, Provenance};

/// Generates a multiplier of the given kind and operand width.
///
/// ```
/// use gamora_circuits::{generate_multiplier, MultiplierKind};
/// let m = generate_multiplier(MultiplierKind::Booth, 6);
/// assert_eq!(m.eval(63, 63), 63 * 63);
/// ```
pub fn generate_multiplier(kind: MultiplierKind, bits: usize) -> ArithCircuit {
    match kind {
        MultiplierKind::Csa => csa_multiplier(bits),
        MultiplierKind::Booth => booth_multiplier(bits),
        MultiplierKind::Dadda => dadda_multiplier(bits),
    }
}
