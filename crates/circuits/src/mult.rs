//! Carry-save-array multiplier generator.

use crate::columns::reduce_columns;
use crate::types::{ArithCircuit, Provenance};
use gamora_aig::{Aig, Lit};

/// Generates an unsigned `bits x bits -> 2*bits` carry-save-array (CSA)
/// multiplier, the regular workload of the paper's Figures 4, 5, 7 and 8.
///
/// The construction ANDs every operand bit pair into a partial-product
/// matrix, compresses the weight columns with a carry-save adder tree and
/// merges the final two rows with a ripple carry-propagate chain — the same
/// architecture `abc`'s multiplier generator emits, and the one whose adder
/// tree `&atree` (and Gamora) recovers.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// ```
/// let m = gamora_circuits::csa_multiplier(8);
/// assert_eq!(m.eval(250, 201), 250 * 201);
/// assert!(m.provenance.real_adders().count() > 0);
/// ```
pub fn csa_multiplier(bits: usize) -> ArithCircuit {
    assert!(bits > 0, "multiplier width must be positive");
    let mut aig = Aig::with_capacity(12 * bits * bits);
    aig.set_name(format!("csa_mult{bits}"));
    let a = aig.add_inputs(bits);
    let b = aig.add_inputs(bits);
    let width = 2 * bits;
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = aig.and(aj, bi);
            columns[i + j].push(pp);
        }
    }
    let mut provenance = Provenance::default();
    let outputs = reduce_columns(&mut aig, columns, &mut provenance);
    for &o in &outputs {
        aig.add_output(o);
    }
    ArithCircuit {
        aig,
        a,
        b,
        extra_operands: Vec::new(),
        outputs,
        provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AdderKind;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_bit_multiplier_is_an_and() {
        let m = csa_multiplier(1);
        assert_eq!(m.eval(1, 1), 1);
        assert_eq!(m.eval(1, 0), 0);
        assert_eq!(m.outputs.len(), 2);
    }

    #[test]
    fn exhaustive_small_widths() {
        for bits in 2..=5usize {
            let m = csa_multiplier(bits);
            for a in 0..(1u64 << bits) {
                for b in 0..(1u64 << bits) {
                    assert_eq!(
                        m.eval(a, b),
                        (a as u128) * (b as u128),
                        "{bits}-bit {a}*{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_large_widths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC5A);
        for bits in [8usize, 16, 24, 32, 48, 64] {
            let m = csa_multiplier(bits);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            for _ in 0..8 {
                let a = rng.gen::<u64>() & mask;
                let b = rng.gen::<u64>() & mask;
                assert_eq!(
                    m.eval(a, b),
                    (a as u128) * (b as u128),
                    "{bits}-bit {a}*{b}"
                );
            }
        }
    }

    #[test]
    fn three_bit_structure_matches_paper_example() {
        // The paper's Figure 3 walks a 3-bit CSA multiplier with an adder
        // tree of 3 full adders and 3 half adders.
        let m = csa_multiplier(3);
        let fa = m
            .provenance
            .real_adders()
            .filter(|r| r.kind == AdderKind::Full)
            .count();
        let ha = m
            .provenance
            .real_adders()
            .filter(|r| r.kind == AdderKind::Half)
            .count();
        assert_eq!(
            (fa, ha),
            (3, 3),
            "expected 3 FA + 3 HA, got {fa} FA + {ha} HA"
        );
    }

    #[test]
    fn node_count_scales_quadratically() {
        let n8 = csa_multiplier(8).aig.num_ands() as f64;
        let n16 = csa_multiplier(16).aig.num_ands() as f64;
        let n32 = csa_multiplier(32).aig.num_ands() as f64;
        let r1 = n16 / n8;
        let r2 = n32 / n16;
        assert!(r1 > 3.0 && r1 < 5.0, "8->16 ratio {r1}");
        assert!(r2 > 3.0 && r2 < 5.0, "16->32 ratio {r2}");
    }
}
