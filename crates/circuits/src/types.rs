//! Shared types: generated-circuit bundle and adder provenance.

use gamora_aig::{sim, Aig, Lit};
use std::fmt;

/// The flavour of multiplier architecture to generate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MultiplierKind {
    /// Carry-save array: AND partial products + column compression.
    Csa,
    /// Radix-4 Booth encoding: signed digit recoding + column compression.
    Booth,
    /// Dadda tree: minimal-stage column reduction + carry-select merge.
    Dadda,
}

impl fmt::Display for MultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiplierKind::Csa => write!(f, "CSA"),
            MultiplierKind::Booth => write!(f, "Booth"),
            MultiplierKind::Dadda => write!(f, "Dadda"),
        }
    }
}

/// Whether a placed adder bitslice was a half or full adder.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AdderKind {
    /// Two-input half adder (sum = XOR2, carry = AND2).
    Half,
    /// Three-input full adder (sum = XOR3, carry = MAJ3).
    Full,
}

/// One adder bitslice placed by a generator: where its sum and carry ended
/// up in the AIG and which literals fed it.
///
/// Constant folding may collapse a slice (e.g. an input is constant zero);
/// [`AdderRecord::is_degenerate`] identifies records whose outputs are no
/// longer distinct AND nodes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AdderRecord {
    /// Half or full adder.
    pub kind: AdderKind,
    /// The sum literal (XOR of the inputs).
    pub sum: Lit,
    /// The carry-out literal (AND2 / MAJ3 of the inputs).
    pub carry: Lit,
    /// Input literals; `inputs[2]` is constant false for half adders.
    pub inputs: [Lit; 3],
}

impl AdderRecord {
    /// True when folding reduced the slice below a real adder (constant or
    /// pass-through outputs), so it cannot be expected in extraction results.
    pub fn is_degenerate(&self) -> bool {
        self.sum.is_const()
            || self.carry.is_const()
            || self.sum.var() == self.carry.var()
            || self.inputs.iter().any(|i| self.sum.var() == i.var())
    }
}

/// The complete placement record of a generated circuit.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    /// Every adder bitslice in construction order.
    pub adders: Vec<AdderRecord>,
}

impl Provenance {
    /// Records a half adder.
    pub fn push_half(&mut self, a: Lit, b: Lit, sum: Lit, carry: Lit) {
        self.adders.push(AdderRecord {
            kind: AdderKind::Half,
            sum,
            carry,
            inputs: [a, b, Lit::FALSE],
        });
    }

    /// Records a full adder.
    pub fn push_full(&mut self, a: Lit, b: Lit, c: Lit, sum: Lit, carry: Lit) {
        self.adders.push(AdderRecord {
            kind: AdderKind::Full,
            sum,
            carry,
            inputs: [a, b, c],
        });
    }

    /// The records that survived constant folding as real adders.
    pub fn real_adders(&self) -> impl Iterator<Item = &AdderRecord> {
        self.adders.iter().filter(|r| !r.is_degenerate())
    }
}

/// A generated arithmetic circuit: the AIG plus its operand/result pins and
/// construction provenance.
#[derive(Clone, Debug)]
pub struct ArithCircuit {
    /// The flattened netlist.
    pub aig: Aig,
    /// Operand A input literals, least-significant first.
    pub a: Vec<Lit>,
    /// Operand B input literals (empty for single-operand circuits).
    pub b: Vec<Lit>,
    /// Additional operand pin groups (e.g. the accumulator of a MAC, or the
    /// remaining vector lanes of a dot product), in order after `a` and `b`.
    pub extra_operands: Vec<Vec<Lit>>,
    /// Result literals, least-significant first (also the AIG outputs).
    pub outputs: Vec<Lit>,
    /// Adders placed during construction.
    pub provenance: Provenance,
}

impl ArithCircuit {
    /// Evaluates the circuit with one unsigned value per operand group
    /// (`a`, `b`, then each entry of `extra_operands`) and decodes the
    /// result. Intended for widths ≤ 64 per operand and ≤ 128 result bits.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the operand groups,
    /// if a value does not fit its pin vector, or if the result exceeds
    /// 128 bits.
    pub fn eval_all(&self, values: &[u64]) -> u128 {
        let mut groups: Vec<&[Lit]> = Vec::new();
        if !self.a.is_empty() {
            groups.push(&self.a);
        }
        if !self.b.is_empty() {
            groups.push(&self.b);
        }
        for extra in &self.extra_operands {
            groups.push(extra);
        }
        assert_eq!(values.len(), groups.len(), "one value per operand group");
        assert!(self.outputs.len() <= 128, "result exceeds 128 bits");
        let mut words = vec![0u64; self.aig.num_inputs()];
        for (&value, pins) in values.iter().zip(&groups) {
            assert!(
                pins.len() >= 64 || value < (1u64 << pins.len()),
                "operand value {value} too wide for {} pins",
                pins.len()
            );
            for (i, lit) in pins.iter().enumerate() {
                let pos = self
                    .aig
                    .inputs()
                    .iter()
                    .position(|n| *n == lit.var())
                    .expect("operand pin is an input");
                words[pos] = if value >> i & 1 == 1 { u64::MAX } else { 0 };
            }
        }
        let node_values = sim::simulate(&self.aig, &words);
        let mut result = 0u128;
        for (i, &o) in self.outputs.iter().enumerate() {
            let w = node_values[o.var().index()];
            let bit = (if o.is_complement() { !w } else { w }) & 1;
            result |= (bit as u128) << i;
        }
        result
    }

    /// Two-operand convenience wrapper over [`ArithCircuit::eval_all`].
    ///
    /// # Panics
    ///
    /// See [`ArithCircuit::eval_all`].
    pub fn eval(&self, a: u64, b: u64) -> u128 {
        self.eval_all(&[a, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_detection() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let (s, c) = aig.half_adder(a, b);
        let good = AdderRecord {
            kind: AdderKind::Half,
            sum: s,
            carry: c,
            inputs: [a, b, Lit::FALSE],
        };
        assert!(!good.is_degenerate());
        let folded = AdderRecord {
            kind: AdderKind::Half,
            sum: a, // passes through
            carry: Lit::FALSE,
            inputs: [a, Lit::FALSE, Lit::FALSE],
        };
        assert!(folded.is_degenerate());
    }

    #[test]
    fn provenance_filters() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let (s, c) = aig.half_adder(a, b);
        let mut p = Provenance::default();
        p.push_half(a, b, s, c);
        p.push_half(a, Lit::FALSE, a, Lit::FALSE);
        assert_eq!(p.adders.len(), 2);
        assert_eq!(p.real_adders().count(), 1);
    }

    #[test]
    fn multiplier_kind_display() {
        assert_eq!(MultiplierKind::Csa.to_string(), "CSA");
        assert_eq!(MultiplierKind::Booth.to_string(), "Booth");
    }
}
