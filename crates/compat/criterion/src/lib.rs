//! Vendored, dependency-free stand-in for the subset of `criterion` the
//! micro-benchmarks use: `Criterion::bench_function`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics engine — each benchmark is timed over a fixed number of
//! samples and the median ns/iter is printed. Good enough to spot
//! order-of-magnitude regressions offline; not a criterion replacement.

#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0);
        println!(
            "bench: {name:<48} {median:>12} ns/iter ({} samples)",
            b.samples.len()
        );
        self
    }
}

/// Per-benchmark timing helper, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    /// Times one sample of the closure (adaptively batching very fast
    /// routines so timer resolution does not dominate).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One calibration call; batch until ~1ms per sample.
        let start = Instant::now();
        let out = f();
        std::hint::black_box(&out);
        let once = start.elapsed().as_nanos().max(1);
        let reps = (1_000_000 / once).clamp(1, 10_000) as usize;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed().as_nanos() / reps as u128);
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        assert_eq!(runs, 3);
    }
}
