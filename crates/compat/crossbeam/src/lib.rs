//! Vendored, dependency-free stand-in for `crossbeam::thread` scoped
//! threads, backed by `std::thread::scope` (stable since 1.63).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the one API it uses. Semantics match crossbeam closely enough
//! for this codebase: spawned closures receive a `&Scope` they can spawn
//! from, handles `join()` to a `Result`, and `scope` returns `Ok` when all
//! threads complete. One divergence: a panicking child thread propagates
//! the panic out of [`thread::scope`] (std semantics) instead of turning
//! into an `Err` — callers here treat both as fatal, so this is benign.

#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// A scope handle from which threads borrowing local data can be
    /// spawned.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads may borrow non-`'static` data;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this implementation: child panics propagate
    /// as panics (see module docs).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let n = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
