//! Vendored minimal read-only memory mapping (offline stand-in for the
//! `memmap2` crate).
//!
//! Exactly one operation is supported: mapping a whole file read-only and
//! private ([`Mmap::map`]), the way `gamora` serves `.gsnap` snapshots out
//! of the page cache. The mapping dereferences to `&[u8]`, is `Send +
//! Sync` (read-only pages), and is unmapped on drop.
//!
//! On non-Unix targets — or whenever the raw `mmap(2)` call fails —
//! [`Mmap::map`] returns an error and callers fall back to reading the
//! file into owned memory; nothing here panics on platform limits.
//!
//! No `libc` crate is available offline; `std` already links the platform
//! C library, so the two syscall wrappers are declared directly.

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    // Prototypes of the libc wrappers std links anyway. On 64-bit Unix
    // `off_t` is 8 bytes, so the `i64` offset matches the ABI.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// A read-only, private, whole-file memory mapping.
///
/// The kernel backs the pages with the file's page-cache copy, so N
/// processes mapping the same file share one physical copy of its bytes
/// until someone writes (which `PROT_READ` forbids).
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime and
// owned exclusively by this value, so shared references from any thread
// only ever observe frozen bytes.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only and private, covering its current length.
    ///
    /// # Errors
    ///
    /// Fails on unsupported targets, on files whose length does not fit
    /// in `usize`, and when the underlying `mmap(2)` call fails. Callers
    /// are expected to fall back to `std::fs::read`.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        Self::map_len(file, len)
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn map_len(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty file needs no
            // pages at all.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel validates the fd and length and we check for
        // MAP_FAILED before using the pointer.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn map_len(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is not supported on this target",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping (or a
        // dangling pointer with len 0, which from_raw_parts permits).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if self.len > 0 {
            // SAFETY: exactly the region returned by mmap in map_len.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmap-shim-{tag}-{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_read_only() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).expect("mapping a regular file works");
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        std::fs::remove_file(&path).ok();
    }
}
