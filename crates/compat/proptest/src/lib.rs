//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, numeric-range and tuple strategies, `prop_map` /
//! `prop_flat_map`, and `collection::vec`.
//!
//! The build environment has no access to crates.io. This shim keeps the
//! property tests runnable offline: each test body is executed for
//! `ProptestConfig::cases` deterministic pseudo-random inputs. There is no
//! shrinking — a failing case panics with the assertion message directly,
//! and the deterministic per-test seed makes failures reproducible.

#![warn(missing_docs)]

/// Deterministic test RNG (SplitMix64).
pub mod test_runner {
    /// Pseudo-random generator driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name so every run of a given
        /// test sees the same case sequence.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
pub mod config {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating the whole domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u16>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing fixed-length `Vec`s.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of exactly `len` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand ($crate::config::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(v in (2usize..6, 0u8..3), x in any::<u16>()) {
            prop_assert!(v.0 >= 2 && v.0 < 6);
            prop_assert!(v.1 < 3);
            let _ = x;
        }

        /// flat_map-driven vec lengths follow the generated length.
        #[test]
        fn flat_mapped_vecs(items in (1usize..9).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(items.0, items.1.len());
            prop_assert!(items.1.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
