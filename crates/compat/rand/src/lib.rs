//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses (`Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few APIs it needs. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic under a fixed seed, which is all the tests
//! and weight initialisers require. It is **not** cryptographically secure
//! and does not reproduce upstream `StdRng` streams.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (f64::sample(self)) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw 64-bit words (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        // 24 random bits into [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a `Range`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here
                // (and irrelevant to tests, which only need determinism).
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        range.start + (range.end - range.start) * f32::sample(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + (range.end - range.start) * f64::sample(rng)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Small, fast, passes BigCrush; seeded through SplitMix64 as the
    /// xoshiro authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn nested_mut_refs_are_rngs() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            fn inner(rng: &mut impl Rng) -> u64 {
                rng.gen()
            }
            inner(rng)
        }
        let mut rng = StdRng::seed_from_u64(1);
        takes_rng(&mut rng);
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "samples should spread over [0,1)");
    }
}
