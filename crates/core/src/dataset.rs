//! Dataset assembly: AIGs to labelled message-passing graphs, plus
//! disjoint-union batching for Figure 8's batched inference.
//!
//! The inference-side builders are zero-copy: AIG edges stream straight
//! into a reusable CSR [`Graph`] (no intermediate edge list) and batch
//! features are written directly into the merged matrix, so a warmed-up
//! [`BatchScratch`] turns raw `&Aig`s into a ready forward-pass input
//! without touching the heap.

use crate::features::{build_features, write_features_at, FeatureMode, FEATURE_DIM};
use crate::labels::{multi_task_targets, single_task_targets};
use crate::Predictions;
use gamora_aig::Aig;
use gamora_exact::Analysis;
use gamora_gnn::{Direction, Graph, GraphData, Matrix};

/// Builds the message-passing graph of an AIG under a direction mode.
pub fn build_graph(aig: &Aig, direction: Direction) -> Graph {
    let mut graph = Graph::default();
    build_graph_into(aig, direction, &mut graph);
    graph
}

/// [`build_graph`] into a caller-owned graph: streams `aig`'s edges
/// directly into the reused CSR arrays (no intermediate edge vector, no
/// heap allocation once `out` is at capacity).
pub fn build_graph_into(aig: &Aig, direction: Direction, out: &mut Graph) {
    Graph::from_edges_into(
        aig.num_nodes(),
        direction,
        |sink| aig.for_each_edge(|s, d| sink(s.as_u32(), d.as_u32())),
        out,
    );
}

/// Builds a labelled [`GraphData`] from an AIG, running exact analysis for
/// ground truth. Returns the analysis alongside so callers can reuse the
/// extracted adder tree.
pub fn labelled_graph(
    aig: &Aig,
    mode: FeatureMode,
    direction: Direction,
    multi_task: bool,
) -> (GraphData, Analysis) {
    let analysis = gamora_exact::analyze(aig);
    let data = GraphData {
        graph: build_graph(aig, direction),
        features: build_features(aig, mode),
        labels: if multi_task {
            multi_task_targets(&analysis.labels)
        } else {
            single_task_targets(&analysis.labels)
        },
    };
    (data, analysis)
}

/// Builds an *unlabelled* [`GraphData`] (inference only; labels empty).
pub fn inference_graph(aig: &Aig, mode: FeatureMode, direction: Direction) -> (Graph, Matrix) {
    (build_graph(aig, direction), build_features(aig, mode))
}

/// Reusable buffers for zero-copy batch assembly: the merged
/// disjoint-union graph, the merged feature matrix, the per-constituent
/// node offsets, and the merged predictions that
/// [`crate::GamoraReasoner::predict_batch_into`] splits back per netlist.
///
/// Keep one per serve worker alongside an
/// [`gamora_gnn::InferenceScratch`]: after one warmup batch at a given
/// size, every later batch at the same or smaller size is assembled and
/// predicted without any heap allocation.
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    pub(crate) graph: Graph,
    pub(crate) features: Matrix,
    pub(crate) offsets: Vec<usize>,
    pub(crate) merged: Predictions,
    /// Warmed per-netlist outputs parked here when a batch shrinks, so a
    /// later larger batch regrows from pooled capacity instead of
    /// allocating fresh `Predictions` (queue-drain sizes fluctuate in the
    /// serve steady state).
    pub(crate) spare: Vec<Predictions>,
}

impl BatchScratch {
    /// The merged graph assembled by the last batch build.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The merged feature matrix assembled by the last batch build.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Node offset of each constituent in the merged graph.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The merged per-node predictions buffer. The cone-tier serve path
    /// scatters cache-served rows here between
    /// `GamoraReasoner::assemble_batch_timed` (which sizes it to the
    /// batch's total node count) and the row-masked forward pass that
    /// fills the remaining rows.
    pub fn merged_mut(&mut self) -> &mut crate::reasoner::Predictions {
        &mut self.merged
    }

    fn fill_offsets(&mut self, sizes: impl Iterator<Item = usize>) -> usize {
        self.offsets.clear();
        let mut base = 0usize;
        for n in sizes {
            self.offsets.push(base);
            base += n;
        }
        base
    }
}

/// Streams several AIGs into one disjoint-union graph and feature matrix,
/// writing into caller-owned scratch: edges go straight from the AIGs
/// into the reused CSR arrays and features are encoded directly at their
/// merged row offsets — nothing per-constituent is materialised.
///
/// # Panics
///
/// Panics if `aigs` is empty.
pub fn assemble_batch_into(
    aigs: &[&Aig],
    mode: FeatureMode,
    direction: Direction,
    ws: &mut BatchScratch,
) {
    assert!(!aigs.is_empty(), "batch must be non-empty");
    let total = ws.fill_offsets(aigs.iter().map(|a| a.num_nodes()));
    ws.features.reset(total, FEATURE_DIM);
    let BatchScratch {
        graph,
        features,
        offsets,
        ..
    } = ws;
    for (aig, &off) in aigs.iter().zip(offsets.iter()) {
        write_features_at(aig, mode, features, off);
    }
    // Constituents occupy disjoint contiguous node ranges with no
    // cross-constituent edges — exactly the sectioned contract, so the
    // CSR build fans out per constituent on large batches.
    Graph::from_sections_into(
        total,
        direction,
        aigs.len(),
        |i| (offsets[i], aigs[i].num_nodes()),
        |i, sink| {
            let off = offsets[i] as u32;
            aigs[i].for_each_edge(|s, d| sink(s.as_u32() + off, d.as_u32() + off));
        },
        graph,
    );
}

/// [`batch_graphs`] into a caller-owned [`BatchScratch`], for callers that
/// bring pre-built feature matrices (training pipelines, ablations).
///
/// # Panics
///
/// Panics if `parts` is empty, feature widths differ, or a feature matrix
/// does not have one row per node.
pub fn batch_graphs_into(parts: &[(&Aig, &Matrix)], direction: Direction, ws: &mut BatchScratch) {
    assert!(!parts.is_empty(), "batch must be non-empty");
    let dim = parts[0].1.cols();
    let total = ws.fill_offsets(parts.iter().map(|(a, _)| a.num_nodes()));
    ws.features.reset(total, dim);
    let BatchScratch {
        graph,
        features,
        offsets,
        ..
    } = ws;
    for ((aig, x), &off) in parts.iter().zip(offsets.iter()) {
        assert_eq!(x.cols(), dim, "feature width mismatch in batch");
        assert_eq!(x.rows(), aig.num_nodes());
        // Rows are contiguous in row-major layout: one memcpy per part.
        features.as_mut_slice()[off * dim..(off + aig.num_nodes()) * dim]
            .copy_from_slice(x.as_slice());
    }
    Graph::from_sections_into(
        total,
        direction,
        parts.len(),
        |i| (offsets[i], parts[i].0.num_nodes()),
        |i, sink| {
            let off = offsets[i] as u32;
            parts[i]
                .0
                .for_each_edge(|s, d| sink(s.as_u32() + off, d.as_u32() + off));
        },
        graph,
    );
}

/// Disjoint union of several graphs for batched inference: node ids of
/// graph `i` are offset by the total size of graphs `0..i`.
///
/// Returns the merged `(graph, features)` and the node offset of each
/// constituent. Hot paths should reuse a [`BatchScratch`] via
/// [`batch_graphs_into`] (or skip the per-part feature matrices entirely
/// with [`assemble_batch_into`]).
///
/// # Panics
///
/// Panics if `parts` is empty or feature widths differ.
pub fn batch_graphs(
    parts: &[(&Aig, &Matrix)],
    direction: Direction,
) -> (Graph, Matrix, Vec<usize>) {
    let mut ws = BatchScratch::default();
    batch_graphs_into(parts, direction, &mut ws);
    (ws.graph, ws.features, ws.offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;

    #[test]
    fn labelled_graph_is_consistent() {
        let m = csa_multiplier(3);
        let (data, analysis) = labelled_graph(
            &m.aig,
            FeatureMode::StructuralFunctional,
            Direction::Bidirectional,
            true,
        );
        data.validate(3);
        assert_eq!(data.graph.num_nodes(), m.aig.num_nodes());
        // bidirectional: 2 aggregation edges per fanin edge
        assert_eq!(data.graph.num_edges(), 2 * 2 * m.aig.num_ands());
        assert_eq!(analysis.adders.len(), 6); // 3 FA + 3 HA (paper Fig. 3)
    }

    #[test]
    fn single_task_dataset_has_one_label_vector() {
        let m = csa_multiplier(2);
        let (data, _) = labelled_graph(
            &m.aig,
            FeatureMode::StructuralFunctional,
            Direction::Bidirectional,
            false,
        );
        assert_eq!(data.labels.len(), 1);
    }

    /// The zero-copy assembly (features written straight into the merged
    /// matrix, edges streamed into reused CSR arrays) produces exactly
    /// the same batch as the legacy per-part path — including when the
    /// scratch is reused across differently sized batches.
    #[test]
    fn assemble_batch_into_matches_batch_graphs() {
        let m1 = csa_multiplier(2);
        let m2 = csa_multiplier(3);
        let m3 = csa_multiplier(4);
        let mut ws = BatchScratch::default();
        for aigs in [vec![&m2.aig, &m3.aig, &m1.aig], vec![&m1.aig, &m2.aig]] {
            let feats: Vec<Matrix> = aigs
                .iter()
                .map(|a| build_features(a, FeatureMode::StructuralFunctional))
                .collect();
            let parts: Vec<(&Aig, &Matrix)> = aigs.iter().copied().zip(feats.iter()).collect();
            let (graph, features, offsets) = batch_graphs(&parts, Direction::Bidirectional);

            assemble_batch_into(
                &aigs,
                FeatureMode::StructuralFunctional,
                Direction::Bidirectional,
                &mut ws,
            );
            assert_eq!(ws.offsets(), &offsets[..]);
            assert_eq!(ws.features(), &features);
            assert_eq!(ws.graph().num_nodes(), graph.num_nodes());
            assert_eq!(ws.graph().num_edges(), graph.num_edges());
            for v in 0..graph.num_nodes() {
                assert_eq!(ws.graph().neighbors(v), graph.neighbors(v), "node {v}");
            }
        }
    }

    #[test]
    fn batching_offsets_edges_and_features() {
        let m1 = csa_multiplier(2);
        let m2 = csa_multiplier(3);
        let x1 = build_features(&m1.aig, FeatureMode::StructuralFunctional);
        let x2 = build_features(&m2.aig, FeatureMode::StructuralFunctional);
        let (g, x, offs) =
            batch_graphs(&[(&m1.aig, &x1), (&m2.aig, &x2)], Direction::Bidirectional);
        assert_eq!(g.num_nodes(), m1.aig.num_nodes() + m2.aig.num_nodes());
        assert_eq!(offs, vec![0, m1.aig.num_nodes()]);
        assert_eq!(g.num_edges(), 4 * (m1.aig.num_ands() + m2.aig.num_ands()));
        // Features of the second part sit at the offset.
        assert_eq!(x.row(offs[1]), x2.row(0));
        // No cross-part edges: a node of part 1 has no neighbor >= offset.
        for v in 0..m1.aig.num_nodes() {
            assert!(g.neighbors(v).iter().all(|&u| (u as usize) < offs[1]));
        }
    }
}
