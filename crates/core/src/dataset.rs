//! Dataset assembly: AIGs to labelled message-passing graphs, plus
//! disjoint-union batching for Figure 8's batched inference.

use crate::features::{build_features, FeatureMode};
use crate::labels::{multi_task_targets, single_task_targets};
use gamora_aig::Aig;
use gamora_exact::Analysis;
use gamora_gnn::{Direction, Graph, GraphData, Matrix};

/// Builds the message-passing graph of an AIG under a direction mode.
pub fn build_graph(aig: &Aig, direction: Direction) -> Graph {
    let edges: Vec<(u32, u32)> = aig
        .edges()
        .into_iter()
        .map(|(s, d)| (s.as_u32(), d.as_u32()))
        .collect();
    Graph::from_edges(aig.num_nodes(), &edges, direction)
}

/// Builds a labelled [`GraphData`] from an AIG, running exact analysis for
/// ground truth. Returns the analysis alongside so callers can reuse the
/// extracted adder tree.
pub fn labelled_graph(
    aig: &Aig,
    mode: FeatureMode,
    direction: Direction,
    multi_task: bool,
) -> (GraphData, Analysis) {
    let analysis = gamora_exact::analyze(aig);
    let data = GraphData {
        graph: build_graph(aig, direction),
        features: build_features(aig, mode),
        labels: if multi_task {
            multi_task_targets(&analysis.labels)
        } else {
            single_task_targets(&analysis.labels)
        },
    };
    (data, analysis)
}

/// Builds an *unlabelled* [`GraphData`] (inference only; labels empty).
pub fn inference_graph(aig: &Aig, mode: FeatureMode, direction: Direction) -> (Graph, Matrix) {
    (build_graph(aig, direction), build_features(aig, mode))
}

/// Disjoint union of several graphs for batched inference: node ids of
/// graph `i` are offset by the total size of graphs `0..i`.
///
/// Returns the merged `(graph, features)` and the node offset of each
/// constituent.
///
/// # Panics
///
/// Panics if `parts` is empty or feature widths differ.
pub fn batch_graphs(
    parts: &[(&Aig, &Matrix)],
    direction: Direction,
) -> (Graph, Matrix, Vec<usize>) {
    assert!(!parts.is_empty(), "batch must be non-empty");
    let dim = parts[0].1.cols();
    let total: usize = parts.iter().map(|(a, _)| a.num_nodes()).sum();
    let mut edges = Vec::new();
    let mut features = Matrix::zeros(total, dim);
    let mut offsets = Vec::with_capacity(parts.len());
    let mut base = 0usize;
    for (aig, x) in parts {
        assert_eq!(x.cols(), dim, "feature width mismatch in batch");
        assert_eq!(x.rows(), aig.num_nodes());
        offsets.push(base);
        for (s, d) in aig.edges() {
            edges.push((
                (s.as_u32() as usize + base) as u32,
                (d.as_u32() as usize + base) as u32,
            ));
        }
        for r in 0..aig.num_nodes() {
            features.row_mut(base + r).copy_from_slice(x.row(r));
        }
        base += aig.num_nodes();
    }
    (
        Graph::from_edges(total, &edges, direction),
        features,
        offsets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;

    #[test]
    fn labelled_graph_is_consistent() {
        let m = csa_multiplier(3);
        let (data, analysis) = labelled_graph(
            &m.aig,
            FeatureMode::StructuralFunctional,
            Direction::Bidirectional,
            true,
        );
        data.validate(3);
        assert_eq!(data.graph.num_nodes(), m.aig.num_nodes());
        // bidirectional: 2 aggregation edges per fanin edge
        assert_eq!(data.graph.num_edges(), 2 * 2 * m.aig.num_ands());
        assert_eq!(analysis.adders.len(), 6); // 3 FA + 3 HA (paper Fig. 3)
    }

    #[test]
    fn single_task_dataset_has_one_label_vector() {
        let m = csa_multiplier(2);
        let (data, _) = labelled_graph(
            &m.aig,
            FeatureMode::StructuralFunctional,
            Direction::Bidirectional,
            false,
        );
        assert_eq!(data.labels.len(), 1);
    }

    #[test]
    fn batching_offsets_edges_and_features() {
        let m1 = csa_multiplier(2);
        let m2 = csa_multiplier(3);
        let x1 = build_features(&m1.aig, FeatureMode::StructuralFunctional);
        let x2 = build_features(&m2.aig, FeatureMode::StructuralFunctional);
        let (g, x, offs) =
            batch_graphs(&[(&m1.aig, &x1), (&m2.aig, &x2)], Direction::Bidirectional);
        assert_eq!(g.num_nodes(), m1.aig.num_nodes() + m2.aig.num_nodes());
        assert_eq!(offs, vec![0, m1.aig.num_nodes()]);
        assert_eq!(g.num_edges(), 4 * (m1.aig.num_ands() + m2.aig.num_ands()));
        // Features of the second part sit at the offset.
        assert_eq!(x.row(offs[1]), x2.row(0));
        // No cross-part edges: a node of part 1 has no neighbor >= offset.
        for v in 0..m1.aig.num_nodes() {
            assert!(g.neighbors(v).iter().all(|&u| (u as usize) < offs[1]));
        }
    }
}
