//! Adder-tree extraction from GNN predictions (paper §III-B3).
//!
//! The predicted XOR/MAJ/root annotations replace the *functional
//! detection* step of exact extraction; the cheap structural steps (cut
//! support computation and pairing by identical inputs) remain classical.

use crate::reasoner::Predictions;
use gamora_aig::Aig;
use gamora_exact::{
    compare_with_reference, detect, extract_adders, Candidates, ExtractedAdder, TreeComparison,
};

/// Restricts exact candidates to those the model predicted.
///
/// Following the paper's procedure ("after removing the nodes that are not
/// marked as adder roots"), XOR candidates must be predicted XOR *and*
/// root; MAJ/AND carry candidates must be predicted MAJ *and* root.
pub fn filter_candidates(cands: &Candidates, preds: &Predictions) -> Candidates {
    let root = |n: u32| -> bool {
        let c = preds.root_leaf[n as usize];
        c == 1 || c == 3 // Root or RootAndLeaf
    };
    let keep_xor = |n: u32| preds.is_xor[n as usize] && root(n);
    let keep_maj = |n: u32| preds.is_maj[n as usize] && root(n);
    let mut out = cands.clone();
    out.all.retain(|c| match c.class {
        gamora_aig::tt::AdderFunc::Xor2 | gamora_aig::tt::AdderFunc::Xor3 => {
            keep_xor(c.node.as_u32())
        }
        _ => keep_maj(c.node.as_u32()),
    });
    for (i, flag) in out.is_xor.iter_mut().enumerate() {
        *flag = *flag && preds.is_xor[i];
    }
    for (i, flag) in out.is_maj3.iter_mut().enumerate() {
        *flag = *flag && preds.is_maj[i];
    }
    for nodes in out.xor3_by_leaves.values_mut() {
        nodes.retain(|&n| keep_xor(n));
    }
    out.xor3_by_leaves.retain(|_, v| !v.is_empty());
    for nodes in out.maj3_by_leaves.values_mut() {
        nodes.retain(|&n| keep_maj(n));
    }
    out.maj3_by_leaves.retain(|_, v| !v.is_empty());
    for nodes in out.xor2_by_leaves.values_mut() {
        nodes.retain(|&n| keep_xor(n));
    }
    out.xor2_by_leaves.retain(|_, v| !v.is_empty());
    for nodes in out.and2_by_leaves.values_mut() {
        nodes.retain(|&n| keep_maj(n));
    }
    out.and2_by_leaves.retain(|_, v| !v.is_empty());
    out
}

/// Extracts an adder tree using the model's predictions for detection.
pub fn extract_from_predictions(aig: &Aig, preds: &Predictions) -> Vec<ExtractedAdder> {
    let cands = detect(aig);
    let filtered = filter_candidates(&cands, preds);
    extract_adders(aig, &filtered)
}

/// Extracts from predictions and compares against the exact tree.
pub fn compare_extraction(aig: &Aig, preds: &Predictions) -> (Vec<ExtractedAdder>, TreeComparison) {
    let cands = detect(aig);
    let exact = extract_adders(aig, &cands);
    let filtered = filter_candidates(&cands, preds);
    let predicted = extract_adders(aig, &filtered);
    let cmp = compare_with_reference(&predicted, exact.iter().map(|a| (a.sum, a.carry)));
    (predicted, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;
    use gamora_exact::analyze;

    /// With oracle predictions (the exact labels), prediction-driven
    /// extraction must reproduce the exact adder tree bit for bit.
    #[test]
    fn oracle_predictions_reproduce_exact_tree() {
        let m = csa_multiplier(4);
        let analysis = analyze(&m.aig);
        let oracle = Predictions {
            root_leaf: analysis
                .labels
                .root_leaf
                .iter()
                .map(|c| c.as_index() as u32)
                .collect(),
            is_xor: analysis.labels.is_xor.clone(),
            is_maj: analysis.labels.is_maj.clone(),
        };
        let (_, cmp) = compare_extraction(&m.aig, &oracle);
        assert_eq!(cmp.missing, 0, "{cmp}");
        assert_eq!(cmp.spurious, 0, "{cmp}");
    }

    /// Breaking one root prediction loses exactly the adders that depend
    /// on that node.
    #[test]
    fn misprediction_costs_one_adder() {
        let m = csa_multiplier(3);
        let analysis = analyze(&m.aig);
        let mut preds = Predictions {
            root_leaf: analysis
                .labels
                .root_leaf
                .iter()
                .map(|c| c.as_index() as u32)
                .collect(),
            is_xor: analysis.labels.is_xor.clone(),
            is_maj: analysis.labels.is_maj.clone(),
        };
        // Knock out the first extracted adder's sum root (the paper's
        // Figure 3(e) scenario: node 10 mispredicted, one HA lost).
        let victim = analysis.adders[0].sum;
        preds.is_xor[victim.index()] = false;
        let (_, cmp) = compare_extraction(&m.aig, &preds);
        assert_eq!(cmp.missing, 1, "{cmp}");
        assert_eq!(cmp.matched, analysis.adders.len() - 1);
    }

    /// All-false predictions extract nothing.
    #[test]
    fn empty_predictions_extract_nothing() {
        let m = csa_multiplier(3);
        let preds = Predictions {
            root_leaf: vec![0; m.aig.num_nodes()],
            is_xor: vec![false; m.aig.num_nodes()],
            is_maj: vec![false; m.aig.num_nodes()],
        };
        let adders = extract_from_predictions(&m.aig, &preds);
        assert!(adders.is_empty());
    }
}
