//! Node feature encoding (paper §III-B1).
//!
//! Each node carries three binary features:
//!
//! 1. node type — `1` for an internal AND gate, `0` for a primary input or
//!    the constant;
//! 2. whether the first fanin edge is complemented;
//! 3. whether the second fanin edge is complemented.
//!
//! This compressed encoding captures the node's Boolean function (every
//! AND-with-inversions variant) while keeping memory at three values per
//! node — the domain-specific compression the paper credits for
//! billion-node scalability. The *structural-only* ablation of Figure 4
//! zeroes the two functional (inversion) features.

use gamora_aig::{Aig, NodeId, NodeKind};
use gamora_gnn::{parallel, Matrix};

/// Which node features to expose to the model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum FeatureMode {
    /// Node type only (inversion flags zeroed) — Figure 4's
    /// "Structural Info" ablation.
    Structural,
    /// Node type plus fanin inversion flags — the full encoding.
    #[default]
    StructuralFunctional,
}

/// Width of the feature vectors produced by [`build_features`].
pub const FEATURE_DIM: usize = 3;

/// Builds the `num_nodes x 3` feature matrix of an AIG.
pub fn build_features(aig: &Aig, mode: FeatureMode) -> Matrix {
    let mut x = Matrix::default();
    build_features_into(aig, mode, &mut x);
    x
}

/// [`build_features`] into a caller-owned matrix (no heap allocation once
/// `x` has enough capacity).
pub fn build_features_into(aig: &Aig, mode: FeatureMode, x: &mut Matrix) {
    x.reset(aig.num_nodes(), FEATURE_DIM);
    write_features_at(aig, mode, x, 0);
}

/// Writes the features of `aig` into rows `base..base + aig.num_nodes()`
/// of an already-zeroed `x` — the building block of zero-copy batch
/// assembly, where every constituent writes straight into the merged
/// feature matrix.
///
/// # Panics
///
/// Panics if the target rows do not exist or `x` is narrower than
/// [`FEATURE_DIM`].
pub fn write_features_at(aig: &Aig, mode: FeatureMode, x: &mut Matrix, base: usize) {
    assert!(x.cols() >= FEATURE_DIM, "feature matrix too narrow");
    assert!(
        base + aig.num_nodes() <= x.rows(),
        "feature rows out of range"
    );
    let cols = x.cols();
    let n = aig.num_nodes();
    if n == 0 {
        return;
    }
    // Tile the AIG's node range over row blocks: million-node subjects
    // encode in parallel, small ones take the serial path unchanged. Each
    // row depends only on its own node, so the output is identical at any
    // thread count.
    let rows = &mut x.as_mut_slice()[base * cols..(base + n) * cols];
    parallel::for_each_row_block(rows, cols, FEATURE_BLOCK_ROWS, |n0, block| {
        for (i, row) in block.chunks_mut(cols).enumerate() {
            let node = NodeId::new((n0 + i) as u32);
            if aig.kind(node) != NodeKind::And {
                continue;
            }
            row[0] = 1.0;
            if mode == FeatureMode::StructuralFunctional {
                let (f0, f1) = aig.fanins(node);
                if f0.is_complement() {
                    row[1] = 1.0;
                }
                if f1.is_complement() {
                    row[2] = 1.0;
                }
            }
        }
    });
}

/// Row-block height for tiled feature writes: feature rows are tiny
/// (three floats), so blocks are tall to amortise the per-block dispatch.
const FEATURE_BLOCK_ROWS: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vectors_match_paper_examples() {
        // The paper: a PI has [0,0,0]; an AND with no negation [1,0,0];
        // an AND with both inputs inverted [1,1,1].
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let plain = aig.and(a, b);
        let nor = aig.and(!a, !b);
        aig.add_output(plain);
        aig.add_output(nor);
        let x = build_features(&aig, FeatureMode::StructuralFunctional);
        assert_eq!(x.row(a.var().index()), &[0.0, 0.0, 0.0]);
        assert_eq!(x.row(plain.var().index()), &[1.0, 0.0, 0.0]);
        assert_eq!(x.row(nor.var().index()), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn structural_mode_zeroes_inversions() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let nor = aig.and(!a, !b);
        aig.add_output(nor);
        let x = build_features(&aig, FeatureMode::Structural);
        assert_eq!(x.row(nor.var().index()), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn mixed_polarity_distinguished() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let g = aig.and(a, !b); // second fanin complemented after ordering?
        aig.add_output(g);
        let x = build_features(&aig, FeatureMode::StructuralFunctional);
        let row = x.row(g.var().index());
        // exactly one inversion flag set
        assert_eq!(row[0], 1.0);
        assert_eq!(row[1] + row[2], 1.0);
    }
}
