//! Task-label encoding: exact-analysis labels to per-task class vectors.

use gamora_exact::Labels;

/// Classes per task in the multi-task setting:
/// root/leaf (4), XOR (2), MAJ (2).
pub const TASK_CLASSES: [usize; 3] = [4, 2, 2];

/// Number of tasks.
pub const NUM_TASKS: usize = 3;

/// Number of classes in the collapsed single-task encoding
/// (`4 * 2 * 2` joint assignments).
pub const SINGLE_TASK_CLASSES: usize = 16;

/// Converts exact labels into three per-node class vectors
/// (multi-task encoding).
pub fn multi_task_targets(labels: &Labels) -> Vec<Vec<u32>> {
    let n = labels.num_nodes();
    let mut t1 = Vec::with_capacity(n);
    let mut t2 = Vec::with_capacity(n);
    let mut t3 = Vec::with_capacity(n);
    for i in 0..n {
        t1.push(labels.root_leaf[i].as_index() as u32);
        t2.push(labels.is_xor[i] as u32);
        t3.push(labels.is_maj[i] as u32);
    }
    vec![t1, t2, t3]
}

/// Collapses the three tasks into one joint 16-class label
/// (the single-task ablation of Figure 4).
pub fn single_task_targets(labels: &Labels) -> Vec<Vec<u32>> {
    let joint = (0..labels.num_nodes())
        .map(|i| {
            encode_joint(
                labels.root_leaf[i].as_index() as u32,
                labels.is_xor[i] as u32,
                labels.is_maj[i] as u32,
            )
        })
        .collect();
    vec![joint]
}

/// Packs (root/leaf class, xor flag, maj flag) into a joint class index.
pub fn encode_joint(root_leaf: u32, xor: u32, maj: u32) -> u32 {
    root_leaf | xor << 2 | maj << 3
}

/// Unpacks a joint class index back into the three task predictions.
pub fn decode_joint(joint: u32) -> (u32, u32, u32) {
    (joint & 3, joint >> 2 & 1, joint >> 3 & 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;

    #[test]
    fn joint_encoding_roundtrips() {
        for rl in 0..4u32 {
            for xor in 0..2u32 {
                for maj in 0..2u32 {
                    let j = encode_joint(rl, xor, maj);
                    assert!(j < SINGLE_TASK_CLASSES as u32);
                    assert_eq!(decode_joint(j), (rl, xor, maj));
                }
            }
        }
    }

    #[test]
    fn target_vectors_cover_every_node() {
        let m = csa_multiplier(4);
        let analysis = gamora_exact::analyze(&m.aig);
        let multi = multi_task_targets(&analysis.labels);
        assert_eq!(multi.len(), NUM_TASKS);
        for (t, targets) in multi.iter().enumerate() {
            assert_eq!(targets.len(), m.aig.num_nodes());
            let max = *targets.iter().max().unwrap() as usize;
            assert!(max < TASK_CLASSES[t], "task {t} class {max}");
        }
        let single = single_task_targets(&analysis.labels);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].len(), m.aig.num_nodes());
        // Joint and multi encodings agree node by node.
        for i in 0..m.aig.num_nodes() {
            let (rl, x, mj) = decode_joint(single[0][i]);
            assert_eq!(rl, multi[0][i]);
            assert_eq!(x, multi[1][i]);
            assert_eq!(mj, multi[2][i]);
        }
    }

    #[test]
    fn multiplier_has_all_three_positive_classes() {
        let m = csa_multiplier(4);
        let analysis = gamora_exact::analyze(&m.aig);
        let multi = multi_task_targets(&analysis.labels);
        assert!(multi[0].contains(&1), "roots exist");
        assert!(multi[0].contains(&2), "leaves exist");
        assert!(multi[1].contains(&1), "xors exist");
        assert!(multi[2].contains(&1), "majs exist");
    }
}
