//! # gamora
//!
//! The core of the reproduction of **"Gamora: Graph Learning based Symbolic
//! Reasoning for Large-Scale Boolean Networks"** (DAC 2023): a multi-task
//! GraphSAGE model that annotates every node of a flattened AIG with its
//! high-level role (adder root/leaf, XOR function, MAJ function), from
//! which full/half adder trees are extracted structurally — replacing the
//! expensive functional-detection step of word-level abstraction.
//!
//! The pipeline:
//!
//! 1. [`features`] — the paper's 3-bit functional node encoding;
//! 2. [`labels`] — ground-truth targets from exact analysis
//!    (`gamora-exact`);
//! 3. [`GamoraReasoner`] — train on small multipliers, infer on large ones;
//! 4. [`extract_from_predictions`] — pair predicted XOR/MAJ roots into
//!    adders;
//! 5. [`lsb_correction`] — the paper's post-processing fix for the
//!    systematically-missed LSB half adder.
//!
//! Trained reasoners are durable: [`GamoraReasoner::save`] writes a
//! versioned, checksummed binary snapshot (see [`snapshot`]) and
//! [`GamoraReasoner::load`] restores it bit-exactly in a fresh process —
//! the foundation of the `gamora-serve` inference service, which trains
//! once and serves many netlists.
//!
//! ```
//! use gamora::{GamoraReasoner, ReasonerConfig, ModelDepth};
//! use gamora_gnn::TrainConfig;
//! let train = gamora_circuits::csa_multiplier(4);
//! let test = gamora_circuits::csa_multiplier(8);
//! let mut reasoner = GamoraReasoner::new(ReasonerConfig {
//!     depth: ModelDepth::Custom { layers: 3, hidden: 16 },
//!     ..ReasonerConfig::default()
//! });
//! reasoner.fit(&[&train.aig], &TrainConfig { epochs: 40, ..TrainConfig::default() });
//! let report = reasoner.evaluate(&test.aig);
//! assert!(report.mean() > 0.75); // quick doc run; benches train properly
//! ```

#![warn(missing_docs)]

pub mod dataset;
mod extract;
pub mod features;
pub mod labels;
mod postprocess;
mod reasoner;
pub mod snapshot;

pub use dataset::BatchScratch;
pub use extract::{compare_extraction, extract_from_predictions, filter_candidates};
pub use features::FeatureMode;
pub use postprocess::{lsb_correction, lsb_correction_with};
pub use reasoner::{
    inference_memory_estimate, score_predictions, BatchTimings, EvalReport, GamoraReasoner,
    ModelDepth, Predictions, ReasonerConfig,
};
pub use snapshot::SnapshotError;

// Re-export the neighbouring layers a user needs to drive the pipeline.
pub use gamora_gnn::{
    Direction, ForwardObserver, ForwardStage, InferenceScratch, TrainConfig, TrainReport,
};
