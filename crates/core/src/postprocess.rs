//! Post-processing repair of systematic mispredictions.
//!
//! The paper observes that "several nodes near the least significant bit
//! are always mispredicted due to their shallow neighborhood structure"
//! (the LSB half adder sits one hop from the inputs, so a K-layer model
//! cannot distinguish it from generic AND/XOR glue) and notes the miss "can
//! be easily corrected during post-processing". This module implements that
//! correction: structurally complete the extracted tree with HA pairs whose
//! support is primary inputs only.

use gamora_aig::{Aig, NodeId};
use gamora_exact::{detect, extract_adders, Candidates, ExtractedAdder};

/// Logic level below which an adder's leaves count as "shallow" (primary
/// inputs are level 0; partial-product AND gates are level 1 — the support
/// of the paper's systematically-missed LSB half adder).
pub const SHALLOW_LEAF_LEVEL: u32 = 1;

/// Adds shallow-support adders that exact pairing finds but the
/// prediction-driven extraction missed. Returns how many were added.
///
/// Only pairs whose sum and carry nodes are not already roots of an
/// extracted adder are added, so the correction never double-counts.
pub fn lsb_correction(aig: &Aig, adders: &mut Vec<ExtractedAdder>) -> usize {
    let cands = detect(aig);
    lsb_correction_with(aig, &cands, adders)
}

/// [`lsb_correction`] with a pre-computed candidate index.
pub fn lsb_correction_with(
    aig: &Aig,
    cands: &Candidates,
    adders: &mut Vec<ExtractedAdder>,
) -> usize {
    let mut used = vec![false; aig.num_nodes()];
    for a in adders.iter() {
        used[a.sum.index()] = true;
        used[a.carry.index()] = true;
    }
    let levels = aig.levels();
    let exact = extract_adders(aig, cands);
    let mut added = 0;
    for cand in exact {
        let shallow = cand
            .leaf_slice()
            .iter()
            .all(|&l| levels[NodeId::new(l).index()] <= SHALLOW_LEAF_LEVEL);
        if !shallow {
            continue;
        }
        if used[cand.sum.index()] || used[cand.carry.index()] {
            continue;
        }
        used[cand.sum.index()] = true;
        used[cand.carry.index()] = true;
        adders.push(cand);
        added += 1;
    }
    adders.sort_by_key(|a| (a.sum, a.carry));
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;

    #[test]
    fn repairs_missing_lsb_half_adder() {
        let m = csa_multiplier(3);
        let analysis = gamora_exact::analyze(&m.aig);
        let levels = m.aig.levels();
        // Simulate the paper's Figure 3(e): drop an adder whose leaves are
        // all shallow (the LSB HA over partial-product bits).
        let mut adders = analysis.adders.clone();
        let lsb_pos = adders
            .iter()
            .position(|a| {
                a.leaf_slice()
                    .iter()
                    .all(|&l| levels[l as usize] <= SHALLOW_LEAF_LEVEL)
            })
            .expect("CSA multiplier has a shallow-support adder");
        let dropped = adders.remove(lsb_pos);
        let added = lsb_correction(&m.aig, &mut adders);
        assert_eq!(added, 1);
        assert!(adders
            .iter()
            .any(|a| a.sum == dropped.sum && a.carry == dropped.carry));
        assert_eq!(adders.len(), analysis.adders.len());
    }

    #[test]
    fn complete_tree_needs_no_repair() {
        let m = csa_multiplier(4);
        let analysis = gamora_exact::analyze(&m.aig);
        let mut adders = analysis.adders.clone();
        let added = lsb_correction(&m.aig, &mut adders);
        assert_eq!(added, 0);
        assert_eq!(adders.len(), analysis.adders.len());
    }

    #[test]
    fn interior_misses_are_not_touched() {
        // Dropping a deep adder (leaves not all PIs) is *not* repaired by
        // the LSB pass — that is the point: only the systematic shallow
        // misses are corrected structurally.
        let m = csa_multiplier(4);
        let analysis = gamora_exact::analyze(&m.aig);
        let levels = m.aig.levels();
        let mut adders = analysis.adders.clone();
        let deep_pos = adders
            .iter()
            .position(|a| {
                a.leaf_slice()
                    .iter()
                    .any(|&l| levels[l as usize] > SHALLOW_LEAF_LEVEL)
            })
            .expect("deep adder exists");
        adders.remove(deep_pos);
        let added = lsb_correction(&m.aig, &mut adders);
        assert_eq!(added, 0);
        assert_eq!(adders.len(), analysis.adders.len() - 1);
    }
}
