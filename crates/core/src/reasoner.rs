//! The Gamora reasoner: train on small netlists, infer node functions on
//! large ones (paper §III).

use crate::dataset::{assemble_batch_into, inference_graph, labelled_graph, BatchScratch};
use crate::features::{FeatureMode, FEATURE_DIM};
use crate::labels::{decode_joint, SINGLE_TASK_CLASSES, TASK_CLASSES};
use gamora_aig::Aig;
use gamora_gnn::loss::argmax;
use gamora_gnn::{
    train, Direction, ForwardObserver, Graph, GraphData, InferenceScratch, Matrix, ModelConfig,
    MultiTaskSage, TrainConfig, TrainReport,
};
use std::time::Instant;

/// Wall times of the phases inside one batched prediction, in microseconds
/// (see [`GamoraReasoner::predict_batch_into_timed`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchTimings {
    /// Streaming the AIGs into the merged batch graph + feature matrix.
    pub assemble_micros: u64,
    /// The GNN forward pass over the merged graph.
    pub forward_micros: u64,
    /// Argmax decode plus splitting merged predictions back per netlist.
    pub split_micros: u64,
}

/// Model capacity presets (paper §IV-A).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ModelDepth {
    /// 4 layers, 32 hidden channels — CSA multipliers and simple mapping.
    #[default]
    Shallow,
    /// 8 layers, 80 hidden channels — Booth multipliers and complex
    /// mapping.
    Deep,
    /// Explicit layer count and hidden width.
    Custom {
        /// Number of SAGE layers.
        layers: usize,
        /// Hidden channel width.
        hidden: usize,
    },
}

/// Configuration of a [`GamoraReasoner`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReasonerConfig {
    /// Model capacity preset.
    pub depth: ModelDepth,
    /// Feature encoding (full or structural-only ablation).
    pub feature_mode: FeatureMode,
    /// Message-passing direction over AIG edges.
    pub direction: Direction,
    /// Multi-task heads (paper default) vs collapsed single-task ablation.
    pub multi_task: bool,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for ReasonerConfig {
    fn default() -> Self {
        ReasonerConfig {
            depth: ModelDepth::Shallow,
            feature_mode: FeatureMode::StructuralFunctional,
            direction: Direction::Bidirectional,
            multi_task: true,
            seed: 0xDAC23,
        }
    }
}

impl ReasonerConfig {
    fn model_config(&self) -> ModelConfig {
        let (layers, hidden) = match self.depth {
            ModelDepth::Shallow => (4, 32),
            ModelDepth::Deep => (8, 80),
            ModelDepth::Custom { layers, hidden } => (layers, hidden),
        };
        ModelConfig {
            in_dim: FEATURE_DIM,
            hidden,
            layers,
            shared_dim: 32,
            task_classes: if self.multi_task {
                TASK_CLASSES.to_vec()
            } else {
                vec![SINGLE_TASK_CLASSES]
            },
            seed: self.seed,
        }
    }
}

/// Per-node predictions for the three reasoning tasks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Predictions {
    /// Task 1: root/leaf class index per node (see
    /// [`gamora_exact::RootLeafClass`]).
    pub root_leaf: Vec<u32>,
    /// Task 2: XOR-function flag per node.
    pub is_xor: Vec<bool>,
    /// Task 3: MAJ-function flag per node.
    pub is_maj: Vec<bool>,
}

impl Predictions {
    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.root_leaf.len()
    }
}

/// Node-level accuracy of a prediction against exact ground truth.
#[derive(Copy, Clone, Debug)]
pub struct EvalReport {
    /// Accuracy per task (root/leaf, XOR, MAJ).
    pub task_accuracy: [f64; 3],
    /// Nodes evaluated.
    pub num_nodes: usize,
}

impl EvalReport {
    /// Mean accuracy over the three tasks — the single number the paper's
    /// figures plot.
    pub fn mean(&self) -> f64 {
        self.task_accuracy.iter().sum::<f64>() / 3.0
    }
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc: root/leaf {:.2}% | xor {:.2}% | maj {:.2}% | mean {:.2}% ({} nodes)",
            self.task_accuracy[0] * 100.0,
            self.task_accuracy[1] * 100.0,
            self.task_accuracy[2] * 100.0,
            self.mean() * 100.0,
            self.num_nodes
        )
    }
}

/// The trained (or trainable) Gamora model with its preprocessing pipeline.
#[derive(Clone, Debug)]
pub struct GamoraReasoner {
    config: ReasonerConfig,
    model: MultiTaskSage,
}

impl GamoraReasoner {
    /// Creates an untrained reasoner.
    pub fn new(config: ReasonerConfig) -> GamoraReasoner {
        let model = MultiTaskSage::new(config.model_config());
        GamoraReasoner { config, model }
    }

    /// Creates a zero-weight skeleton with the right shapes for `config`
    /// — for snapshot loaders, which fill (or borrow) every weight and
    /// must not pay the Glorot initialisation of [`GamoraReasoner::new`]
    /// on the cold-start path.
    pub(crate) fn new_zeroed(config: ReasonerConfig) -> GamoraReasoner {
        let model = MultiTaskSage::new_zeroed(config.model_config());
        GamoraReasoner { config, model }
    }

    /// The reasoner's configuration.
    pub fn config(&self) -> &ReasonerConfig {
        &self.config
    }

    /// The underlying model (snapshot serialisation).
    pub(crate) fn model(&self) -> &MultiTaskSage {
        &self.model
    }

    /// Mutable access to the underlying model (weight injection when
    /// loading a snapshot).
    pub(crate) fn model_mut(&mut self) -> &mut MultiTaskSage {
        &mut self.model
    }

    /// Scalar parameter count of the underlying model.
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }

    /// Builds the i8-quantised read-only weight store (per-output-column
    /// scales, `f32` accumulation): inference serves i8 weights from
    /// then on at ~4x smaller resident size, with argmax predictions
    /// matching the `f32` path on ≥ 99.9% of nodes (guarded by the
    /// `quant_equivalence` test). Training still reads the `f32` weights
    /// and invalidates the store; re-invoke after further `fit` calls.
    /// [`GamoraReasoner::save`] persists a quantised reasoner in the v2
    /// snapshot format (i8 payload + scales).
    pub fn quantise(&mut self) {
        self.model.quantise();
    }

    /// Whether inference currently serves from the quantised store.
    pub fn is_quantised(&self) -> bool {
        self.model.is_quantised()
    }

    /// Resident bytes of the weight stores as currently served.
    pub fn resident_weight_bytes(&self) -> usize {
        self.model.resident_weight_bytes()
    }

    /// Trains on a set of netlists; ground truth comes from exact analysis
    /// of each (the role ABC's `&atree` plays in the paper).
    pub fn fit(&mut self, aigs: &[&Aig], cfg: &TrainConfig) -> TrainReport {
        let data: Vec<GraphData> = aigs
            .iter()
            .map(|aig| {
                labelled_graph(
                    aig,
                    self.config.feature_mode,
                    self.config.direction,
                    self.config.multi_task,
                )
                .0
            })
            .collect();
        let cfg = self.adjust_weights(cfg);
        train(&mut self.model, &data, &cfg)
    }

    /// Trains on pre-built graph data (used by benches that cache datasets).
    pub fn fit_prepared(&mut self, data: &[GraphData], cfg: &TrainConfig) -> TrainReport {
        let cfg = self.adjust_weights(cfg);
        train(&mut self.model, data, &cfg)
    }

    fn adjust_weights(&self, cfg: &TrainConfig) -> TrainConfig {
        let mut cfg = cfg.clone();
        if !self.config.multi_task {
            cfg.task_weights = vec![1.0];
        }
        cfg
    }

    /// Creates a reusable inference workspace for this reasoner.
    ///
    /// Buffers are sized lazily on first use, so a fresh scratch is cheap;
    /// the point is to *keep* one per worker/thread and pass it to the
    /// `_with`/`_into` prediction variants, which then run allocation-free
    /// once warmed up.
    pub fn scratch(&self) -> InferenceScratch {
        InferenceScratch::default()
    }

    /// Creates a reusable batch-assembly workspace for this reasoner.
    ///
    /// Like [`GamoraReasoner::scratch`], buffers are sized lazily: keep
    /// one per worker and pass it to [`GamoraReasoner::predict_batch_with`]
    /// / [`GamoraReasoner::predict_batch_into`], which then assemble the
    /// merged batch graph and features without heap allocation once
    /// warmed up.
    pub fn batch_scratch(&self) -> BatchScratch {
        BatchScratch::default()
    }

    /// Predicts node functions for a netlist.
    pub fn predict(&self, aig: &Aig) -> Predictions {
        self.predict_with(&mut InferenceScratch::default(), aig)
    }

    /// [`GamoraReasoner::predict`] through a caller-owned workspace.
    pub fn predict_with(&self, scratch: &mut InferenceScratch, aig: &Aig) -> Predictions {
        let (graph, features) =
            inference_graph(aig, self.config.feature_mode, self.config.direction);
        self.predict_prepared_with(scratch, &graph, &features)
    }

    /// Predicts node functions on a pre-built graph (or a batch built with
    /// [`crate::dataset::batch_graphs`]).
    pub fn predict_prepared(&self, graph: &Graph, features: &Matrix) -> Predictions {
        self.predict_prepared_with(&mut InferenceScratch::default(), graph, features)
    }

    /// [`GamoraReasoner::predict_prepared`] through a caller-owned
    /// workspace.
    pub fn predict_prepared_with(
        &self,
        scratch: &mut InferenceScratch,
        graph: &Graph,
        features: &Matrix,
    ) -> Predictions {
        let mut out = Predictions::default();
        self.predict_prepared_into(scratch, graph, features, &mut out);
        out
    }

    /// The allocation-free hot path: predicts into a caller-owned
    /// [`Predictions`] through a caller-owned workspace. After one warmup
    /// call at a given graph size, subsequent calls at the same or smaller
    /// size perform **zero heap allocations** (guarded by the
    /// `alloc_regression` test) while the tensor kernels stay serial;
    /// graphs large enough to cross `gamora_gnn::parallel`'s per-thread
    /// row cutoff spawn scoped worker threads, which allocate.
    pub fn predict_prepared_into(
        &self,
        scratch: &mut InferenceScratch,
        graph: &Graph,
        features: &Matrix,
        out: &mut Predictions,
    ) {
        let logits = self.model.infer(graph, features, scratch);
        self.decode_logits(logits, out);
    }

    /// [`GamoraReasoner::predict_prepared_into`] with timing: returns the
    /// wall times of the GNN forward and the argmax decode, in
    /// microseconds, and forwards per-layer stage times to `observer` when
    /// one is given. Costs four monotonic clock reads over the plain path
    /// (plus two per forward stage when observed) and stays
    /// allocation-free.
    pub fn predict_prepared_into_observed(
        &self,
        scratch: &mut InferenceScratch,
        graph: &Graph,
        features: &Matrix,
        out: &mut Predictions,
        observer: Option<&dyn ForwardObserver>,
    ) -> (u64, u64) {
        let forward_start = Instant::now();
        let logits = self
            .model
            .infer_observed(graph, features, scratch, observer);
        let forward_micros = forward_start.elapsed().as_micros() as u64;
        let decode_start = Instant::now();
        self.decode_logits(logits, out);
        (forward_micros, decode_start.elapsed().as_micros() as u64)
    }

    /// Argmax-decodes per-task logits into per-node predictions.
    fn decode_logits(&self, logits: &[Matrix], out: &mut Predictions) {
        let n = logits[0].rows();
        out.root_leaf.clear();
        out.is_xor.clear();
        out.is_maj.clear();
        out.root_leaf.reserve(n);
        out.is_xor.reserve(n);
        out.is_maj.reserve(n);
        if self.config.multi_task {
            for r in 0..n {
                out.root_leaf.push(argmax(logits[0].row(r)) as u32);
                out.is_xor.push(argmax(logits[1].row(r)) == 1);
                out.is_maj.push(argmax(logits[2].row(r)) == 1);
            }
        } else {
            for r in 0..n {
                let (rl, xor, maj) = decode_joint(argmax(logits[0].row(r)) as u32);
                out.root_leaf.push(rl);
                out.is_xor.push(xor == 1);
                out.is_maj.push(maj == 1);
            }
        }
    }

    /// Runs batched inference over several netlists in one forward pass
    /// (the paper's Figure 8 batching), returning per-netlist predictions.
    pub fn predict_batch(&self, aigs: &[&Aig]) -> Vec<Predictions> {
        self.predict_batch_with(
            &mut BatchScratch::default(),
            &mut InferenceScratch::default(),
            aigs,
        )
    }

    /// [`GamoraReasoner::predict_batch`] through caller-owned workspaces
    /// (batch assembly and forward buffers).
    pub fn predict_batch_with(
        &self,
        batch: &mut BatchScratch,
        scratch: &mut InferenceScratch,
        aigs: &[&Aig],
    ) -> Vec<Predictions> {
        let mut outs = Vec::new();
        self.predict_batch_into(batch, scratch, aigs, &mut outs);
        outs
    }

    /// The allocation-free batch hot path: streams raw AIGs into the
    /// merged batch graph/features held by `batch`, runs one forward pass
    /// through `scratch`, and splits the merged predictions into
    /// caller-owned per-netlist outputs (capacity reused; entries trimmed
    /// by a smaller batch park in `batch`'s spare pool and come back when
    /// the batch grows again). After one warmup batch at a given size,
    /// the entire pipeline — graph construction included — performs
    /// **zero heap allocations** at the same or smaller sizes, even with
    /// fluctuating batch sizes, while the kernels stay on their serial
    /// path (see [`GamoraReasoner::predict_prepared_into`]); guarded by
    /// the `alloc_regression` test.
    ///
    /// # Panics
    ///
    /// Panics if `aigs` is empty.
    pub fn predict_batch_into(
        &self,
        batch: &mut BatchScratch,
        scratch: &mut InferenceScratch,
        aigs: &[&Aig],
        outs: &mut Vec<Predictions>,
    ) {
        self.predict_batch_into_timed(batch, scratch, aigs, outs, None);
    }

    /// [`GamoraReasoner::predict_batch_into`] with per-phase timing: the
    /// same allocation-free batch pipeline, returning the wall time of
    /// batch assembly, GNN forward and prediction split, and reporting
    /// per-layer forward stages to `observer` when one is given. The
    /// timing overhead is a handful of monotonic clock reads per *batch*
    /// — nothing per node — so the serve path can stay instrumented
    /// permanently (guarded by the `metrics_overhead` test).
    ///
    /// # Panics
    ///
    /// Panics if `aigs` is empty.
    pub fn predict_batch_into_timed(
        &self,
        batch: &mut BatchScratch,
        scratch: &mut InferenceScratch,
        aigs: &[&Aig],
        outs: &mut Vec<Predictions>,
        observer: Option<&dyn ForwardObserver>,
    ) -> BatchTimings {
        // Chaos seam: `assemble` fires before the merged graph is built.
        // An injected `err` is thrown as a typed payload; the serve layer
        // catches it and answers the batch `AnalysisFailed`.
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::BatchAssemble);
        let assemble_start = Instant::now();
        assemble_batch_into(aigs, self.config.feature_mode, self.config.direction, batch);
        let assemble_micros = assemble_start.elapsed().as_micros() as u64;
        // Resize `outs` without discarding warmed capacity: trimmed
        // entries park in the scratch's spare pool and are reused on
        // regrowth (serve queue-drain sizes fluctuate batch to batch).
        while outs.len() > aigs.len() {
            batch.spare.push(outs.pop().expect("len checked"));
        }
        while outs.len() < aigs.len() {
            outs.push(batch.spare.pop().unwrap_or_default());
        }
        let BatchScratch {
            graph,
            features,
            offsets,
            merged,
            ..
        } = batch;
        let (forward_micros, decode_micros) =
            self.predict_prepared_into_observed(scratch, graph, features, merged, observer);
        // Chaos seam: `split` fires after the forward pass but before any
        // per-netlist output is written.
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::PredictionSplit);
        let scatter_start = Instant::now();
        for ((out, &aig), &start) in outs.iter_mut().zip(aigs).zip(offsets.iter()) {
            let end = start + aig.num_nodes();
            out.root_leaf.clear();
            out.root_leaf
                .extend_from_slice(&merged.root_leaf[start..end]);
            out.is_xor.clear();
            out.is_xor.extend_from_slice(&merged.is_xor[start..end]);
            out.is_maj.clear();
            out.is_maj.extend_from_slice(&merged.is_maj[start..end]);
        }
        BatchTimings {
            assemble_micros,
            forward_micros,
            split_micros: decode_micros + scatter_start.elapsed().as_micros() as u64,
        }
    }

    /// First phase of the cone-tier split pipeline: assembles the merged
    /// batch graph/features into `batch` (timed, behind the same
    /// `assemble` chaos seam as the one-shot path) and pre-sizes the
    /// merged [`Predictions`] to the batch's total node count so the
    /// caller can scatter cache-served rows in place before
    /// [`GamoraReasoner::predict_assembled_rows_into_timed`] fills the
    /// rest. Returns the assembly wall time in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `aigs` is empty.
    pub fn assemble_batch_timed(&self, batch: &mut BatchScratch, aigs: &[&Aig]) -> u64 {
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::BatchAssemble);
        let assemble_start = Instant::now();
        assemble_batch_into(aigs, self.config.feature_mode, self.config.direction, batch);
        let total: usize = aigs.iter().map(|a| a.num_nodes()).sum();
        let merged = batch.merged_mut();
        merged.root_leaf.clear();
        merged.root_leaf.resize(total, 0);
        merged.is_xor.clear();
        merged.is_xor.resize(total, false);
        merged.is_maj.clear();
        merged.is_maj.resize(total, false);
        assemble_start.elapsed().as_micros() as u64
    }

    /// Second phase of the cone-tier split pipeline: row-masked inference
    /// over a batch already assembled by
    /// [`GamoraReasoner::assemble_batch_timed`]. Only the merged-graph
    /// rows listed in `rows` are pushed through the shared linear, the
    /// heads and the argmax decode (the SAGE trunk necessarily runs on
    /// the full graph — any node can sit in a kept row's receptive
    /// field); all other rows of the merged predictions are left exactly
    /// as the caller scattered them. The merged predictions are then
    /// split per netlist like the one-shot path, behind the same `split`
    /// chaos seam.
    ///
    /// Kept rows decode bit-identically to the full pass
    /// (`MultiTaskSage::infer_rows_observed` is per-row bit-stable), so
    /// with `rows` = all rows this *is* `predict_batch_into_timed` minus
    /// assembly. With `rows` empty no forward pass runs at all.
    ///
    /// Allocation-free after warmup like the one-shot path; the returned
    /// timings carry `assemble_micros: 0` (phase one reports it).
    ///
    /// # Panics
    ///
    /// Panics if `aigs` is empty, if `batch` was not assembled from
    /// exactly `aigs`, or if a row index is out of range.
    pub fn predict_assembled_rows_into_timed(
        &self,
        batch: &mut BatchScratch,
        scratch: &mut InferenceScratch,
        aigs: &[&Aig],
        rows: &[u32],
        outs: &mut Vec<Predictions>,
        observer: Option<&dyn ForwardObserver>,
    ) -> BatchTimings {
        assert!(!aigs.is_empty(), "empty batch");
        while outs.len() > aigs.len() {
            batch.spare.push(outs.pop().expect("len checked"));
        }
        while outs.len() < aigs.len() {
            outs.push(batch.spare.pop().unwrap_or_default());
        }
        let BatchScratch {
            graph,
            features,
            offsets,
            merged,
            ..
        } = batch;
        let total: usize = aigs.iter().map(|a| a.num_nodes()).sum();
        assert_eq!(merged.root_leaf.len(), total, "batch not pre-assembled");
        let (mut forward_micros, mut decode_micros) = (0, 0);
        if !rows.is_empty() {
            let forward_start = Instant::now();
            let logits = self
                .model
                .infer_rows_observed(graph, features, rows, scratch, observer);
            forward_micros = forward_start.elapsed().as_micros() as u64;
            let decode_start = Instant::now();
            self.decode_logit_rows(logits, rows, merged);
            decode_micros = decode_start.elapsed().as_micros() as u64;
        }
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::PredictionSplit);
        let scatter_start = Instant::now();
        for ((out, &aig), &start) in outs.iter_mut().zip(aigs).zip(offsets.iter()) {
            let end = start + aig.num_nodes();
            out.root_leaf.clear();
            out.root_leaf
                .extend_from_slice(&merged.root_leaf[start..end]);
            out.is_xor.clear();
            out.is_xor.extend_from_slice(&merged.is_xor[start..end]);
            out.is_maj.clear();
            out.is_maj.extend_from_slice(&merged.is_maj[start..end]);
        }
        BatchTimings {
            assemble_micros: 0,
            forward_micros,
            split_micros: decode_micros + scatter_start.elapsed().as_micros() as u64,
        }
    }

    /// Argmax-decodes compacted logits (row `k` = merged row `rows[k]`)
    /// into the listed rows of the merged predictions.
    fn decode_logit_rows(&self, logits: &[Matrix], rows: &[u32], merged: &mut Predictions) {
        if self.config.multi_task {
            for (k, &r) in rows.iter().enumerate() {
                let r = r as usize;
                merged.root_leaf[r] = argmax(logits[0].row(k)) as u32;
                merged.is_xor[r] = argmax(logits[1].row(k)) == 1;
                merged.is_maj[r] = argmax(logits[2].row(k)) == 1;
            }
        } else {
            for (k, &r) in rows.iter().enumerate() {
                let r = r as usize;
                let (rl, xor, maj) = decode_joint(argmax(logits[0].row(k)) as u32);
                merged.root_leaf[r] = rl;
                merged.is_xor[r] = xor == 1;
                merged.is_maj[r] = maj == 1;
            }
        }
    }

    /// Number of SAGE trunk layers in the underlying model (sizing the
    /// per-layer forward-timing histograms in the serve layer).
    pub fn num_layers(&self) -> usize {
        self.model.config().layers
    }

    /// Predicts and scores against exact ground truth.
    pub fn evaluate(&self, aig: &Aig) -> EvalReport {
        let preds = self.predict(aig);
        let analysis = gamora_exact::analyze(aig);
        score_predictions(&preds, &analysis.labels)
    }
}

/// Scores predictions against exact labels, task by task.
///
/// # Panics
///
/// Panics if the node counts differ.
pub fn score_predictions(preds: &Predictions, labels: &gamora_exact::Labels) -> EvalReport {
    let n = labels.num_nodes();
    assert_eq!(preds.num_nodes(), n, "prediction/label node count mismatch");
    let mut correct = [0usize; 3];
    for i in 0..n {
        if preds.root_leaf[i] == labels.root_leaf[i].as_index() as u32 {
            correct[0] += 1;
        }
        if preds.is_xor[i] == labels.is_xor[i] {
            correct[1] += 1;
        }
        if preds.is_maj[i] == labels.is_maj[i] {
            correct[2] += 1;
        }
    }
    EvalReport {
        task_accuracy: [
            correct[0] as f64 / n.max(1) as f64,
            correct[1] as f64 / n.max(1) as f64,
            correct[2] as f64 / n.max(1) as f64,
        ],
        num_nodes: n,
    }
}

/// Estimated peak inference memory in bytes for a graph of `num_nodes`
/// nodes under a config — the analytic model behind the Figure 8 memory
/// plot (feature row + two layer activations + aggregation scratch +
/// logits, all `f32`, plus CSR overhead per edge). The split-weight SAGE
/// kernel needs no concat buffer, which removes `2 * hidden` floats per
/// node from the old estimate.
pub fn inference_memory_estimate(
    config: &ReasonerConfig,
    num_nodes: usize,
    num_edges: usize,
) -> usize {
    let (_, hidden) = match config.depth {
        ModelDepth::Shallow => (4usize, 32usize),
        ModelDepth::Deep => (8, 80),
        ModelDepth::Custom { layers, hidden } => (layers, hidden),
    };
    let per_node_f32 = FEATURE_DIM      // input features
        + 2 * hidden                    // current + aggregated embeddings
        + hidden                        // next-layer output
        + 32                            // shared layer
        + 8; // logits
    num_nodes * per_node_f32 * 4 + num_edges * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::csa_multiplier;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 150,
            lr: 1e-2,
            task_weights: vec![0.8, 1.0, 1.0],
            log_every: 0,
        }
    }

    /// The two-phase cone pipeline (assemble, scatter, row-masked
    /// predict) reproduces the one-shot batch path exactly: with all rows
    /// kept it is bit-identical, and with a subset kept the remaining
    /// rows pass through whatever the caller scattered.
    #[test]
    fn assembled_rows_pipeline_matches_one_shot_batch() {
        let m3 = csa_multiplier(3);
        let m4 = csa_multiplier(4);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(&[&m3.aig], &quick_cfg());
        let aigs: [&Aig; 2] = [&m3.aig, &m4.aig];
        let total: usize = aigs.iter().map(|a| a.num_nodes()).sum();

        let mut batch = BatchScratch::default();
        let mut scratch = InferenceScratch::default();
        let mut expected = Vec::new();
        reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut expected);

        // All rows kept == the one-shot path.
        let mut outs = Vec::new();
        let all_rows: Vec<u32> = (0..total as u32).collect();
        reasoner.assemble_batch_timed(&mut batch, &aigs);
        reasoner.predict_assembled_rows_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &all_rows,
            &mut outs,
            None,
        );
        assert_eq!(outs, expected);

        // Odd rows kept, even rows scattered from the known-good merged
        // predictions (simulating cone-cache hits): output still exact.
        reasoner.assemble_batch_timed(&mut batch, &aigs);
        {
            let merged = batch.merged_mut();
            let mut row = 0usize;
            for p in &expected {
                for i in 0..p.root_leaf.len() {
                    if row.is_multiple_of(2) {
                        merged.root_leaf[row] = p.root_leaf[i];
                        merged.is_xor[row] = p.is_xor[i];
                        merged.is_maj[row] = p.is_maj[i];
                    }
                    row += 1;
                }
            }
        }
        let odd_rows: Vec<u32> = (0..total as u32).filter(|r| r % 2 == 1).collect();
        reasoner.predict_assembled_rows_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &odd_rows,
            &mut outs,
            None,
        );
        assert_eq!(outs, expected);

        // No rows kept: everything comes from the scattered values.
        reasoner.assemble_batch_timed(&mut batch, &aigs);
        {
            let merged = batch.merged_mut();
            let mut row = 0usize;
            for p in &expected {
                for i in 0..p.root_leaf.len() {
                    merged.root_leaf[row] = p.root_leaf[i];
                    merged.is_xor[row] = p.is_xor[i];
                    merged.is_maj[row] = p.is_maj[i];
                    row += 1;
                }
            }
        }
        reasoner.predict_assembled_rows_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &[],
            &mut outs,
            None,
        );
        assert_eq!(outs, expected);
    }

    #[test]
    fn overfits_small_multiplier() {
        let m = csa_multiplier(4);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 3,
                hidden: 16,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(&[&m.aig], &quick_cfg());
        let report = reasoner.evaluate(&m.aig);
        assert!(report.mean() > 0.9, "{report}");
    }

    #[test]
    fn generalises_across_sizes_cheaply() {
        // Train on 4-bit, evaluate on 8-bit: even a quick run must beat
        // the majority-class baseline by a wide margin.
        let train_m = csa_multiplier(4);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 3,
                hidden: 16,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(&[&train_m.aig], &quick_cfg());
        let report = reasoner.evaluate(&csa_multiplier(8).aig);
        assert!(report.mean() > 0.8, "{report}");
    }

    #[test]
    fn single_task_predictions_decode() {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            multi_task: false,
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 5,
                ..quick_cfg()
            },
        );
        let preds = reasoner.predict(&m.aig);
        assert_eq!(preds.num_nodes(), m.aig.num_nodes());
        assert!(preds.root_leaf.iter().all(|&c| c < 4));
    }

    /// One scratch workspace reused across differently sized netlists (and
    /// across `predict`/`predict_prepared_into`) yields predictions
    /// bit-identical to fresh-scratch calls.
    #[test]
    fn reused_scratch_is_bit_identical() {
        let m1 = csa_multiplier(3);
        let m2 = csa_multiplier(5);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m1.aig],
            &TrainConfig {
                epochs: 10,
                ..quick_cfg()
            },
        );
        let mut scratch = reasoner.scratch();
        // Big netlist first, then a smaller one into the same buffers.
        let big = reasoner.predict_with(&mut scratch, &m2.aig);
        let small = reasoner.predict_with(&mut scratch, &m1.aig);
        assert_eq!(big.root_leaf, reasoner.predict(&m2.aig).root_leaf);
        assert_eq!(small.root_leaf, reasoner.predict(&m1.aig).root_leaf);

        // The in-place variant refills a reused output without drift.
        let (graph, features) = crate::dataset::inference_graph(
            &m1.aig,
            reasoner.config().feature_mode,
            reasoner.config().direction,
        );
        let mut out = Predictions::default();
        reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
        reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
        assert_eq!(out.root_leaf, small.root_leaf);
        assert_eq!(out.is_xor, small.is_xor);
        assert_eq!(out.is_maj, small.is_maj);
    }

    #[test]
    fn batch_predictions_match_individual() {
        let m1 = csa_multiplier(3);
        let m2 = csa_multiplier(4);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m1.aig],
            &TrainConfig {
                epochs: 10,
                ..quick_cfg()
            },
        );
        let batched = reasoner.predict_batch(&[&m1.aig, &m2.aig]);
        let solo1 = reasoner.predict(&m1.aig);
        let solo2 = reasoner.predict(&m2.aig);
        assert_eq!(batched[0].root_leaf, solo1.root_leaf);
        assert_eq!(batched[1].root_leaf, solo2.root_leaf);
        assert_eq!(batched[1].is_xor, solo2.is_xor);
    }

    #[test]
    fn memory_estimate_scales_linearly() {
        let cfg = ReasonerConfig::default();
        let small = inference_memory_estimate(&cfg, 1000, 2000);
        let large = inference_memory_estimate(&cfg, 10_000, 20_000);
        assert!(large > 9 * small && large < 11 * small);
    }
}
