//! Versioned binary snapshots of trained reasoners (`.gsnap`).
//!
//! The format is hand-rolled little-endian with no external dependencies —
//! the first durable on-disk artifact of the workspace, written once by
//! `gamora train` and served many times by `gamora infer` / `gamora-serve`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    : 4 bytes  b"GMRS"
//! version  : u32      (1 = f32, 2 = section-tagged)
//! config   : depth tag u8, layers u32, hidden u32,
//!            feature_mode u8, direction u8, multi_task u8, seed u64
//! tensors  : count u32, then per tensor
//!            v1: { len u32, f32 data (LE bits) }
//!            v2: { section tag u8,
//!                  tag 0 (f32): len u32, f32 data (LE bits)
//!                  tag 1 (i8):  rows u32, cols u32, i8 data,
//!                               f32 scales (cols) }
//! checksum : u64      Fx hash of every byte from magic through the last
//!                     tensor, in file order
//! ```
//!
//! An unquantised reasoner is written in the **v1** layout — byte-exact
//! with files produced before v2 existed, so old snapshots and new
//! `f32` snapshots are one format. A quantised reasoner (see
//! [`GamoraReasoner::quantise`]) is written as **v2**: every weight
//! matrix becomes an i8 section (payload + per-output-column scales,
//! ~4x smaller), biases stay `f32` sections. The reader accepts the full
//! `v1..=v2` range; v1 files load bit-exactly under the v2 reader
//! (guarded by the `snapshot_compat` test).
//!
//! Floats are serialised via `f32::to_le_bytes`, so a save/load round trip
//! is bit-exact (for v2: the i8 payload and scales round-trip exactly,
//! and served predictions are bit-identical) and a reloaded reasoner
//! reproduces in-process predictions and `evaluate` scores exactly. The
//! trailing checksum turns truncation and bit corruption into
//! [`SnapshotError::Corrupt`] instead of a silently wrong model.

use crate::features::FeatureMode;
use crate::reasoner::{GamoraReasoner, ModelDepth, ReasonerConfig};
use gamora_aig::hasher::FxHasher;
use gamora_gnn::{Direction, MultiTaskSage, QuantisedMatrix};
use std::fmt;
use std::fs::File;
use std::hash::Hasher;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: "GaMoRa Snapshot".
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GMRS";

/// Oldest snapshot format version this build reads.
pub const SNAPSHOT_VERSION_MIN: u32 = 1;

/// Newest snapshot format version this build reads and writes (v2 adds
/// per-tensor section tags with i8-quantised weight blocks; unquantised
/// models are still written as v1).
pub const SNAPSHOT_VERSION_MAX: u32 = 2;

/// Section tag of a plain `f32` tensor in a v2 snapshot.
const SECTION_F32: u8 = 0;

/// Section tag of an i8-quantised weight block in a v2 snapshot.
const SECTION_I8: u8 = 1;

/// Errors produced by snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file is a snapshot, but of an unknown format version.
    UnsupportedVersion(u32),
    /// Structurally invalid or checksum-mismatched content.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a gamora snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads \
                     v{SNAPSHOT_VERSION_MIN}-v{SNAPSHOT_VERSION_MAX})"
                )
            }
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Writer adapter that Fx-hashes every byte it forwards.
struct HashingWriter<W> {
    inner: W,
    hasher: FxHasher,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hasher: FxHasher::default(),
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.write(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter that Fx-hashes every byte it yields.
struct HashingReader<R> {
    inner: R,
    hasher: FxHasher,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hasher: FxHasher::default(),
        }
    }

    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> Result<(), SnapshotError> {
        self.inner.read_exact(buf).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => corrupt("truncated snapshot"),
            _ => SnapshotError::Io(e),
        })?;
        self.hasher.write(buf);
        Ok(())
    }

    fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        let mut b = [0u8; 1];
        self.read_exact_hashed(&mut b)?;
        Ok(b[0])
    }

    fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_f32s(&mut self, out: &mut [f32]) -> Result<(), SnapshotError> {
        let mut buf = [0u8; 4];
        for v in out.iter_mut() {
            self.read_exact_hashed(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        Ok(())
    }
}

fn depth_tag(depth: ModelDepth) -> (u8, u32, u32) {
    match depth {
        ModelDepth::Shallow => (0, 0, 0),
        ModelDepth::Deep => (1, 0, 0),
        ModelDepth::Custom { layers, hidden } => (2, layers as u32, hidden as u32),
    }
}

fn depth_from_tag(tag: u8, layers: u32, hidden: u32) -> Result<ModelDepth, SnapshotError> {
    match tag {
        0 => Ok(ModelDepth::Shallow),
        1 => Ok(ModelDepth::Deep),
        2 => {
            // Sanity caps: a corrupt header must not trigger a huge model
            // allocation before the checksum gets a chance to reject it.
            if layers == 0 || hidden == 0 || layers > 1024 || hidden > 65536 {
                return Err(corrupt(format!(
                    "implausible custom depth ({layers} layers, {hidden} hidden)"
                )));
            }
            Ok(ModelDepth::Custom {
                layers: layers as usize,
                hidden: hidden as usize,
            })
        }
        t => Err(corrupt(format!("unknown depth tag {t}"))),
    }
}

fn feature_mode_tag(mode: FeatureMode) -> u8 {
    match mode {
        FeatureMode::Structural => 0,
        FeatureMode::StructuralFunctional => 1,
    }
}

fn feature_mode_from_tag(tag: u8) -> Result<FeatureMode, SnapshotError> {
    match tag {
        0 => Ok(FeatureMode::Structural),
        1 => Ok(FeatureMode::StructuralFunctional),
        t => Err(corrupt(format!("unknown feature-mode tag {t}"))),
    }
}

fn direction_tag(dir: Direction) -> u8 {
    match dir {
        Direction::Fanin => 0,
        Direction::Fanout => 1,
        Direction::Bidirectional => 2,
    }
}

fn direction_from_tag(tag: u8) -> Result<Direction, SnapshotError> {
    match tag {
        0 => Ok(Direction::Fanin),
        1 => Ok(Direction::Fanout),
        2 => Ok(Direction::Bidirectional),
        t => Err(corrupt(format!("unknown direction tag {t}"))),
    }
}

fn write_f32s<W: Write>(w: &mut W, values: &[f32]) -> Result<(), SnapshotError> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Serialises a reasoner (config + every parameter tensor) to `w`.
///
/// An unquantised reasoner is written in the v1 layout (byte-exact with
/// pre-v2 files); a quantised one (see [`GamoraReasoner::quantise`]) in
/// the section-tagged v2 layout with i8 weight blocks.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_snapshot<W: Write>(reasoner: &GamoraReasoner, w: W) -> Result<(), SnapshotError> {
    let quantised = reasoner.is_quantised();
    let version = if quantised { 2 } else { SNAPSHOT_VERSION_MIN };
    let mut w = HashingWriter::new(BufWriter::new(w));
    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&version.to_le_bytes())?;

    let cfg = reasoner.config();
    let (tag, layers, hidden) = depth_tag(cfg.depth);
    w.write_all(&[tag])?;
    w.write_all(&layers.to_le_bytes())?;
    w.write_all(&hidden.to_le_bytes())?;
    w.write_all(&[feature_mode_tag(cfg.feature_mode)])?;
    w.write_all(&[direction_tag(cfg.direction)])?;
    w.write_all(&[cfg.multi_task as u8])?;
    w.write_all(&cfg.seed.to_le_bytes())?;

    if quantised {
        // v2: one weight + one bias section per linear, section-tagged.
        let linears = reasoner.model().linears();
        w.write_all(&((linears.len() * 2) as u32).to_le_bytes())?;
        for lin in linears {
            let q = lin
                .quantised()
                .expect("is_quantised() implies a store on every layer");
            w.write_all(&[SECTION_I8])?;
            w.write_all(&(q.rows() as u32).to_le_bytes())?;
            w.write_all(&(q.cols() as u32).to_le_bytes())?;
            // i8 -> u8 is a bit-preserving cast.
            let bytes: Vec<u8> = q.values().iter().map(|&v| v as u8).collect();
            w.write_all(&bytes)?;
            write_f32s(&mut w, q.scales())?;
            w.write_all(&[SECTION_F32])?;
            w.write_all(&(lin.b.len() as u32).to_le_bytes())?;
            write_f32s(&mut w, &lin.b)?;
        }
    } else {
        let tensors = reasoner.model().param_slices();
        w.write_all(&(tensors.len() as u32).to_le_bytes())?;
        for t in tensors {
            w.write_all(&(t.len() as u32).to_le_bytes())?;
            write_f32s(&mut w, t)?;
        }
    }

    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Reads the section-tagged v2 tensor stream into a freshly built model:
/// per linear layer, one weight section (f32 or an i8-quantised block,
/// whose shape must match the skeleton) followed by one f32 bias
/// section. Every length is validated against the skeleton before any
/// payload-sized buffer is allocated, so a lying header cannot trigger a
/// huge allocation, and a truncated stream surfaces as
/// [`SnapshotError::Corrupt`] from the hashed reads — never a panic.
fn read_v2_sections<R: Read>(
    r: &mut HashingReader<R>,
    model: &mut MultiTaskSage,
) -> Result<(), SnapshotError> {
    for (i, lin) in model.linears_mut().into_iter().enumerate() {
        match r.read_u8()? {
            SECTION_F32 => {
                let len = r.read_u32()? as usize;
                let want = lin.w.rows() * lin.w.cols();
                if len != want {
                    return Err(corrupt(format!(
                        "weight tensor {i} has {len} scalars, model expects {want}"
                    )));
                }
                r.read_f32s(lin.w.as_mut_slice())?;
            }
            SECTION_I8 => {
                let rows = r.read_u32()? as usize;
                let cols = r.read_u32()? as usize;
                if (rows, cols) != (lin.w.rows(), lin.w.cols()) {
                    return Err(corrupt(format!(
                        "quantised block {i} is {rows}x{cols}, model expects {}x{}",
                        lin.w.rows(),
                        lin.w.cols()
                    )));
                }
                let mut bytes = vec![0u8; rows * cols];
                r.read_exact_hashed(&mut bytes)?;
                let data: Vec<i8> = bytes.into_iter().map(|b| b as i8).collect();
                let mut scales = vec![0.0f32; cols];
                r.read_f32s(&mut scales)?;
                lin.install_quantised(QuantisedMatrix::from_parts(rows, cols, data, scales));
            }
            t => return Err(corrupt(format!("unknown section tag {t} (tensor {i})"))),
        }
        match r.read_u8()? {
            SECTION_F32 => {
                let len = r.read_u32()? as usize;
                if len != lin.b.len() {
                    return Err(corrupt(format!(
                        "bias tensor {i} has {len} scalars, model expects {}",
                        lin.b.len()
                    )));
                }
                r.read_f32s(&mut lin.b)?;
            }
            SECTION_I8 => {
                return Err(corrupt(format!("bias tensor {i} cannot be an i8 section")));
            }
            t => return Err(corrupt(format!("unknown section tag {t} (bias {i})"))),
        }
    }
    Ok(())
}

/// Deserialises a reasoner previously written by [`write_snapshot`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure, wrong magic, unknown version,
/// shape mismatch, or checksum mismatch.
pub fn read_snapshot<R: Read>(r: R) -> Result<GamoraReasoner, SnapshotError> {
    // Chaos seam: an injected `err` surfaces as a typed corruption error
    // through the same path real corruption takes.
    gamora_fault::hit(gamora_fault::FaultPoint::SnapshotLoad)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let mut r = HashingReader::new(BufReader::new(r));

    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.read_u32()?;
    if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION_MAX).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    let depth_tag = r.read_u8()?;
    let layers = r.read_u32()?;
    let hidden = r.read_u32()?;
    let config = ReasonerConfig {
        depth: depth_from_tag(depth_tag, layers, hidden)?,
        feature_mode: feature_mode_from_tag(r.read_u8()?)?,
        direction: direction_from_tag(r.read_u8()?)?,
        multi_task: match r.read_u8()? {
            0 => false,
            1 => true,
            t => return Err(corrupt(format!("bad multi_task flag {t}"))),
        },
        seed: r.read_u64()?,
    };

    // Build the skeleton from the config, then inject the stored weights.
    let mut reasoner = GamoraReasoner::new(config);
    let num_tensors = r.read_u32()? as usize;
    let expected = reasoner.model().param_slices().len();
    if num_tensors != expected {
        return Err(corrupt(format!(
            "tensor count {num_tensors} does not match model shape ({expected} expected)"
        )));
    }
    if version == 1 {
        let mut slots = reasoner.model_mut().param_slices_mut();
        for (i, slot) in slots.iter_mut().enumerate() {
            let len = r.read_u32()? as usize;
            if len != slot.len() {
                return Err(corrupt(format!(
                    "tensor {i} has {len} scalars, model expects {}",
                    slot.len()
                )));
            }
            r.read_f32s(slot)?;
        }
    } else {
        read_v2_sections(&mut r, reasoner.model_mut())?;
    }

    let expected = r.hasher.finish();
    // The checksum itself is not part of the hashed payload.
    let mut tail = [0u8; 8];
    r.inner.read_exact(&mut tail).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => corrupt("truncated snapshot (missing checksum)"),
        _ => SnapshotError::Io(e),
    })?;
    let stored = u64::from_le_bytes(tail);
    if stored != expected {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {expected:#018x})"
        )));
    }
    // Trailing garbage after the checksum is also corruption.
    let mut probe = [0u8; 1];
    match r.inner.read(&mut probe)? {
        0 => Ok(reasoner),
        _ => Err(corrupt("trailing bytes after checksum")),
    }
}

impl GamoraReasoner {
    /// Saves the trained reasoner to `path` in the versioned `.gsnap`
    /// binary format (see the [`crate::snapshot`] module docs).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_snapshot(self, File::create(path)?)
    }

    /// Loads a reasoner saved by [`GamoraReasoner::save`]. The result is
    /// bit-exact: predictions and `evaluate` scores match the saved
    /// instance's.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for missing files, foreign formats,
    /// version skew, or corruption (checksum mismatch).
    pub fn load(path: impl AsRef<Path>) -> Result<GamoraReasoner, SnapshotError> {
        read_snapshot(File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reasoner::{ModelDepth, ReasonerConfig};
    use gamora_circuits::csa_multiplier;
    use gamora_gnn::TrainConfig;

    fn trained_reasoner() -> GamoraReasoner {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 20,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        reasoner
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let reasoner = trained_reasoner();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();

        assert_eq!(back.config(), reasoner.config());
        let src: Vec<Vec<f32>> = reasoner
            .model()
            .param_slices()
            .iter()
            .map(|s| s.to_vec())
            .collect();
        let dst: Vec<Vec<f32>> = back
            .model()
            .param_slices()
            .iter()
            .map(|s| s.to_vec())
            .collect();
        assert_eq!(src, dst, "weights must survive bit-exactly");

        // And behaviour matches exactly on a fresh workload.
        let subject = csa_multiplier(4);
        let original = reasoner;
        let a = original.predict(&subject.aig);
        let b = back.predict(&subject.aig);
        assert_eq!(a.root_leaf, b.root_leaf);
        assert_eq!(a.is_xor, b.is_xor);
        assert_eq!(a.is_maj, b.is_maj);
    }

    #[test]
    fn file_roundtrip_via_save_load() {
        let reasoner = trained_reasoner();
        let path =
            std::env::temp_dir().join(format!("gamora-snap-test-{}.gsnap", std::process::id()));
        reasoner.save(&path).unwrap();
        let back = GamoraReasoner::load(&path).unwrap();
        assert_eq!(back.config(), reasoner.config());
        assert_eq!(back.num_params(), reasoner.num_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_snapshot(&b"NOPE....."[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");
    }

    #[test]
    fn unknown_version_is_rejected_with_readable_range() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf[4] = 99; // bump the version field
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::UnsupportedVersion(99)),
            "{err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("v1") && msg.contains("v2"),
            "the error must report the full readable range: {msg}"
        );
        // Version 0 is below the readable range, not corrupt.
        buf[4] = 0;
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(0)), "{err}");
    }

    /// An unquantised reasoner still writes the v1 layout byte for byte;
    /// a quantised one writes v2 with i8 sections roughly a quarter of
    /// the v1 size of the same weights.
    #[test]
    fn writer_picks_version_by_weight_store() {
        let mut reasoner = trained_reasoner();
        let mut v1 = Vec::new();
        write_snapshot(&reasoner, &mut v1).unwrap();
        assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1);

        reasoner.quantise();
        let mut v2 = Vec::new();
        write_snapshot(&reasoner, &mut v2).unwrap();
        assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
        assert!(
            v2.len() < v1.len() / 2,
            "v2 with i8 weight blocks must be much smaller ({} vs {} bytes)",
            v2.len(),
            v1.len()
        );
    }

    /// Quantise -> save -> load round-trips the i8 payload and scales
    /// exactly; the reloaded reasoner serves bit-identical predictions
    /// and re-saving produces identical bytes.
    #[test]
    fn quantised_roundtrip_is_exact() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();
        assert!(back.is_quantised());
        assert_eq!(back.config(), reasoner.config());

        for (a, b) in reasoner
            .model()
            .linears()
            .iter()
            .zip(back.model().linears())
        {
            let (qa, qb) = (a.quantised().unwrap(), b.quantised().unwrap());
            assert_eq!(qa.values(), qb.values(), "i8 payload must round-trip");
            let sa: Vec<u32> = qa.scales().iter().map(|s| s.to_bits()).collect();
            let sb: Vec<u32> = qb.scales().iter().map(|s| s.to_bits()).collect();
            assert_eq!(sa, sb, "scales must round-trip bit-exactly");
            assert_eq!(a.b, b.b, "biases must round-trip");
        }

        let subject = csa_multiplier(4);
        assert_eq!(
            reasoner.predict(&subject.aig),
            back.predict(&subject.aig),
            "served predictions must be bit-identical"
        );

        let mut again = Vec::new();
        write_snapshot(&back, &mut again).unwrap();
        assert_eq!(buf, again, "save -> load -> save must be a fixed point");
    }

    /// Truncating a v2 file anywhere — inside a section header, the i8
    /// payload, the scales, or the checksum — fails with a structured
    /// error, never a panic.
    #[test]
    fn truncated_v2_is_corruption_not_panic() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        for keep in [30usize, 40, 60, buf.len() / 2, buf.len() - 9, buf.len() - 1] {
            let err = read_snapshot(&buf[..keep]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Corrupt(_)),
                "truncation at {keep}: {err}"
            );
        }
    }

    /// Bit corruption in a v2 body (section tags included) is caught by
    /// structure checks or the trailing checksum.
    #[test]
    fn v2_corruption_anywhere_fails() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut pristine = Vec::new();
        write_snapshot(&reasoner, &mut pristine).unwrap();
        for pos in [28usize, 33, 40, pristine.len() / 2, pristine.len() - 9] {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x10;
            assert!(
                read_snapshot(&buf[..]).is_err(),
                "bit flip at {pos} must not load cleanly"
            );
        }
    }

    #[test]
    fn corruption_anywhere_fails_checksum() {
        let mut pristine = Vec::new();
        write_snapshot(&trained_reasoner(), &mut pristine).unwrap();
        // Flip one bit in several places across the payload (skipping the
        // magic/version, which produce their own error kinds).
        for pos in [16usize, 40, pristine.len() / 2, pristine.len() - 9] {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x10;
            assert!(
                read_snapshot(&buf[..]).is_err(),
                "bit flip at {pos} must not load cleanly"
            );
        }
    }

    #[test]
    fn truncation_is_corruption() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf.truncate(buf.len() - 13);
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf.extend_from_slice(b"junk");
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }
}
