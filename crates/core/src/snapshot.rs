//! Versioned binary snapshots of trained reasoners (`.gsnap`).
//!
//! The format is hand-rolled little-endian with no external dependencies —
//! the first durable on-disk artifact of the workspace, written once by
//! `gamora train` and served many times by `gamora infer` / `gamora-serve`.
//!
//! Layout of the legacy v1/v2 stream formats (all integers
//! little-endian):
//!
//! ```text
//! magic    : 4 bytes  b"GMRS"
//! version  : u32      (1 = f32, 2 = section-tagged)
//! config   : depth tag u8, layers u32, hidden u32,
//!            feature_mode u8, direction u8, multi_task u8, seed u64
//! tensors  : count u32, then per tensor
//!            v1: { len u32, f32 data (LE bits) }
//!            v2: { section tag u8,
//!                  tag 0 (f32): len u32, f32 data (LE bits)
//!                  tag 1 (i8):  rows u32, cols u32, i8 data,
//!                               f32 scales (cols) }
//! checksum : u64      Fx hash of every byte from magic through the last
//!                     tensor, in file order
//! ```
//!
//! **v3** is the mmap-ready layout [`write_snapshot`] emits today: the
//! header carries an explicit section table (tag, rows, cols, byte
//! offset, byte length per tensor) and the weight payloads live in a
//! trailing 64-byte-aligned payload region, so a loader can validate the
//! header in O(header) and borrow every weight slice straight out of a
//! memory-mapped file ([`GamoraReasoner::load_mmap`]) — zero copies, one
//! physical page-cache copy shared across processes:
//!
//! ```text
//! magic         : 4 bytes  b"GMRS"
//! version       : u32     (3)
//! config        : 20 bytes (identical to v1/v2)
//! section_count : u32
//! sections      : per section { tag u8, rows u32, cols u32,
//!                               offset u64 (payload-relative, 64-aligned),
//!                               len u64 (bytes) }
//! payload_base  : u64     (absolute file offset, 64-aligned)
//! payload_len   : u64
//! payload_hash  : u64     Fx hash of the whole payload region
//! header_hash   : u64     Fx hash of every preceding header byte
//! padding       : zeros to payload_base
//! payload       : the sections' bytes, each 64-aligned, in model order
//!                 (per linear: f32 weights + f32 bias, or i8 values +
//!                 f32 scales + f32 bias when quantised)
//! ```
//!
//! Both hashes are computed as a single `FxHasher::write` over the
//! covered byte range. The reader recomputes the *canonical* section
//! offsets from the model shapes and rejects any deviation, so even a
//! re-signed lying header can never size an allocation or a borrow from
//! attacker-chosen fields. Owned loads verify both hashes; mmap loads
//! verify the header hash only (payload pages are faulted in lazily).
//!
//! An unquantised reasoner used to be written in the **v1** layout and a
//! quantised one (see [`GamoraReasoner::quantise`]) as **v2** (i8 weight
//! sections, ~4x smaller); [`write_snapshot_legacy`] still emits those
//! byte-exact layouts and the reader accepts the full `v1..=v3` range
//! (guarded by the `snapshot_compat` test).
//!
//! Floats are serialised via `f32::to_le_bytes`, so a save/load round trip
//! is bit-exact (for quantised stores: the i8 payload and scales
//! round-trip exactly, and served predictions are bit-identical) and a
//! reloaded reasoner reproduces in-process predictions and `evaluate`
//! scores exactly. The checksums turn truncation and bit corruption into
//! [`SnapshotError::Corrupt`] instead of a silently wrong model.

use crate::features::FeatureMode;
use crate::reasoner::{GamoraReasoner, ModelDepth, ReasonerConfig};
use gamora_aig::hasher::FxHasher;
use gamora_gnn::{Direction, Matrix, MultiTaskSage, QuantisedMatrix, WeightRegion};
use std::fmt;
use std::fs::File;
use std::hash::Hasher;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// File magic: "GaMoRa Snapshot".
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GMRS";

/// Oldest snapshot format version this build reads.
pub const SNAPSHOT_VERSION_MIN: u32 = 1;

/// Newest snapshot format version this build reads and writes. v3 is the
/// mmap-ready layout — a header-resident section table with explicit
/// offsets/lengths and 64-byte-aligned weight payloads — and is what
/// [`write_snapshot`] always emits; v1 (plain f32) and v2 (i8 sections)
/// files remain fully readable, and [`write_snapshot_legacy`] still
/// emits them byte-exactly for compatibility tooling.
pub const SNAPSHOT_VERSION_MAX: u32 = 3;

/// Alignment of the v3 payload region and of every section inside it:
/// each tensor's bytes start on a 64-byte boundary, both file-relative
/// and payload-relative, so mapped weight slices are always aligned for
/// their element type (and for cache lines).
pub const SNAPSHOT_ALIGN: usize = 64;

/// Section tag of a plain `f32` tensor in a v2/v3 snapshot.
const SECTION_F32: u8 = 0;

/// Section tag of an i8-quantised weight block in a v2/v3 snapshot.
const SECTION_I8: u8 = 1;

/// Errors produced by snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file is a snapshot, but of an unknown format version.
    UnsupportedVersion(u32),
    /// Structurally invalid or checksum-mismatched content.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a gamora snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads \
                     v{SNAPSHOT_VERSION_MIN}-v{SNAPSHOT_VERSION_MAX})"
                )
            }
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Writer adapter that Fx-hashes every byte it forwards.
struct HashingWriter<W> {
    inner: W,
    hasher: FxHasher,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hasher: FxHasher::default(),
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.write(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter that Fx-hashes every byte it yields.
struct HashingReader<R> {
    inner: R,
    hasher: FxHasher,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hasher: FxHasher::default(),
        }
    }

    fn read_exact_hashed(&mut self, buf: &mut [u8]) -> Result<(), SnapshotError> {
        self.inner.read_exact(buf).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => corrupt("truncated snapshot"),
            _ => SnapshotError::Io(e),
        })?;
        self.hasher.write(buf);
        Ok(())
    }

    fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        let mut b = [0u8; 1];
        self.read_exact_hashed(&mut b)?;
        Ok(b[0])
    }

    fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let mut b = [0u8; 4];
        self.read_exact_hashed(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let mut b = [0u8; 8];
        self.read_exact_hashed(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_f32s(&mut self, out: &mut [f32]) -> Result<(), SnapshotError> {
        let mut buf = [0u8; 4];
        for v in out.iter_mut() {
            self.read_exact_hashed(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        Ok(())
    }
}

fn depth_tag(depth: ModelDepth) -> (u8, u32, u32) {
    match depth {
        ModelDepth::Shallow => (0, 0, 0),
        ModelDepth::Deep => (1, 0, 0),
        ModelDepth::Custom { layers, hidden } => (2, layers as u32, hidden as u32),
    }
}

fn depth_from_tag(tag: u8, layers: u32, hidden: u32) -> Result<ModelDepth, SnapshotError> {
    match tag {
        0 => Ok(ModelDepth::Shallow),
        1 => Ok(ModelDepth::Deep),
        2 => {
            // Sanity caps: a corrupt header must not trigger a huge model
            // allocation before the checksum gets a chance to reject it.
            if layers == 0 || hidden == 0 || layers > 1024 || hidden > 65536 {
                return Err(corrupt(format!(
                    "implausible custom depth ({layers} layers, {hidden} hidden)"
                )));
            }
            Ok(ModelDepth::Custom {
                layers: layers as usize,
                hidden: hidden as usize,
            })
        }
        t => Err(corrupt(format!("unknown depth tag {t}"))),
    }
}

fn feature_mode_tag(mode: FeatureMode) -> u8 {
    match mode {
        FeatureMode::Structural => 0,
        FeatureMode::StructuralFunctional => 1,
    }
}

fn feature_mode_from_tag(tag: u8) -> Result<FeatureMode, SnapshotError> {
    match tag {
        0 => Ok(FeatureMode::Structural),
        1 => Ok(FeatureMode::StructuralFunctional),
        t => Err(corrupt(format!("unknown feature-mode tag {t}"))),
    }
}

fn direction_tag(dir: Direction) -> u8 {
    match dir {
        Direction::Fanin => 0,
        Direction::Fanout => 1,
        Direction::Bidirectional => 2,
    }
}

fn direction_from_tag(tag: u8) -> Result<Direction, SnapshotError> {
    match tag {
        0 => Ok(Direction::Fanin),
        1 => Ok(Direction::Fanout),
        2 => Ok(Direction::Bidirectional),
        t => Err(corrupt(format!("unknown direction tag {t}"))),
    }
}

fn write_f32s<W: Write>(w: &mut W, values: &[f32]) -> Result<(), SnapshotError> {
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// One entry of the v3 header section table.
struct SectionEntry {
    tag: u8,
    rows: u32,
    cols: u32,
    /// Payload-relative byte offset (64-aligned).
    offset: u64,
    /// Byte length of the section's data.
    len: u64,
}

/// Byte size of one serialised [`SectionEntry`].
const SECTION_ENTRY_BYTES: usize = 1 + 4 + 4 + 8 + 8;

/// Byte size of the v3 header around the section table: magic + version
/// + config + count before it, payload_base/len/hash + header hash after.
const V3_FIXED_HEADER_BYTES: usize = 32 + 32;

/// The canonical v3 section plan for a model: per linear, `f32` weights
/// and bias, or (quantised) i8 values, scales and bias, each section
/// packed at the next 64-aligned payload offset. Returns the entries and
/// the total payload length. Writer and reader both derive offsets from
/// this one function, which is what lets the reader reject lying headers.
fn v3_section_plan(model: &MultiTaskSage) -> (Vec<SectionEntry>, usize) {
    let mut sections = Vec::new();
    let mut cursor = 0usize;
    let mut push =
        |sections: &mut Vec<SectionEntry>, tag: u8, rows: usize, cols: usize, byte_len: usize| {
            cursor = align_up(cursor, SNAPSHOT_ALIGN);
            sections.push(SectionEntry {
                tag,
                rows: rows as u32,
                cols: cols as u32,
                offset: cursor as u64,
                len: byte_len as u64,
            });
            cursor += byte_len;
            cursor
        };
    let mut total = 0;
    for lin in model.linears() {
        match lin.quantised() {
            Some(q) => {
                push(
                    &mut sections,
                    SECTION_I8,
                    q.rows(),
                    q.cols(),
                    q.rows() * q.cols(),
                );
                push(&mut sections, SECTION_F32, 1, q.cols(), q.cols() * 4);
                total = push(&mut sections, SECTION_F32, 1, lin.b.len(), lin.b.len() * 4);
            }
            None => {
                let (r, c) = (lin.w.rows(), lin.w.cols());
                push(&mut sections, SECTION_F32, r, c, r * c * 4);
                total = push(&mut sections, SECTION_F32, 1, lin.b.len(), lin.b.len() * 4);
            }
        }
    }
    (sections, total)
}

/// Bump-pointer writer into a preallocated image buffer.
struct ImageWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl ImageWriter<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.buf[self.pos..self.pos + bytes.len()].copy_from_slice(bytes);
        self.pos += bytes.len();
    }
}

fn copy_f32s(dst: &mut [u8], src: &[f32]) {
    for (chunk, &v) in dst.chunks_exact_mut(4).zip(src) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Builds the complete v3 file image in memory (payload first, then the
/// hashes, then the header around them).
fn build_v3_image(reasoner: &GamoraReasoner) -> Vec<u8> {
    let model = reasoner.model();
    let (sections, payload_len) = v3_section_plan(model);
    let header_len = V3_FIXED_HEADER_BYTES + SECTION_ENTRY_BYTES * sections.len();
    let payload_base = align_up(header_len, SNAPSHOT_ALIGN);
    let mut image = vec![0u8; payload_base + payload_len];

    // Payload region: every section at its canonical 64-aligned offset
    // (the zero-init of the image is the inter-section padding).
    let span = |entry: &SectionEntry| {
        let at = payload_base + entry.offset as usize;
        at..at + entry.len as usize
    };
    let mut si = 0;
    for lin in model.linears() {
        match lin.quantised() {
            Some(q) => {
                for (d, &v) in image[span(&sections[si])].iter_mut().zip(q.values()) {
                    // i8 -> u8 is a bit-preserving cast.
                    *d = v as u8;
                }
                copy_f32s(&mut image[span(&sections[si + 1])], q.scales());
                copy_f32s(&mut image[span(&sections[si + 2])], &lin.b);
                si += 3;
            }
            None => {
                copy_f32s(&mut image[span(&sections[si])], lin.w.as_slice());
                copy_f32s(&mut image[span(&sections[si + 1])], &lin.b);
                si += 2;
            }
        }
    }
    debug_assert_eq!(si, sections.len());
    let mut payload_hasher = FxHasher::default();
    payload_hasher.write(&image[payload_base..]);
    let payload_hash = payload_hasher.finish();

    // Header.
    let mut w = ImageWriter {
        buf: &mut image,
        pos: 0,
    };
    w.put(&SNAPSHOT_MAGIC);
    w.put(&3u32.to_le_bytes());
    let cfg = reasoner.config();
    let (tag, layers, hidden) = depth_tag(cfg.depth);
    w.put(&[tag]);
    w.put(&layers.to_le_bytes());
    w.put(&hidden.to_le_bytes());
    w.put(&[feature_mode_tag(cfg.feature_mode)]);
    w.put(&[direction_tag(cfg.direction)]);
    w.put(&[cfg.multi_task as u8]);
    w.put(&cfg.seed.to_le_bytes());
    w.put(&(sections.len() as u32).to_le_bytes());
    for s in &sections {
        w.put(&[s.tag]);
        w.put(&s.rows.to_le_bytes());
        w.put(&s.cols.to_le_bytes());
        w.put(&s.offset.to_le_bytes());
        w.put(&s.len.to_le_bytes());
    }
    w.put(&(payload_base as u64).to_le_bytes());
    w.put(&(payload_len as u64).to_le_bytes());
    w.put(&payload_hash.to_le_bytes());
    let hash_pos = w.pos;
    debug_assert_eq!(hash_pos + 8, header_len);
    let mut header_hasher = FxHasher::default();
    header_hasher.write(&image[..hash_pos]);
    let header_hash = header_hasher.finish();
    image[hash_pos..hash_pos + 8].copy_from_slice(&header_hash.to_le_bytes());
    image
}

/// Serialises a reasoner (config + every parameter tensor) to `w` in the
/// mmap-ready **v3** layout (see the module docs): section table in the
/// header, 64-byte-aligned weight payloads, independent header and
/// payload checksums. Quantised reasoners write their i8 stores; the
/// served bits round-trip exactly either way.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_snapshot<W: Write>(reasoner: &GamoraReasoner, w: W) -> Result<(), SnapshotError> {
    let image = build_v3_image(reasoner);
    let mut w = BufWriter::new(w);
    w.write_all(&image)?;
    w.flush()?;
    Ok(())
}

/// Serialises a reasoner in the **legacy** stream layouts: v1 for an
/// unquantised reasoner (byte-exact with pre-v2 files), section-tagged
/// v2 with i8 weight blocks for a quantised one (see
/// [`GamoraReasoner::quantise`]). [`write_snapshot`] emits v3 today;
/// this writer exists for compatibility tooling and the pinned-layout
/// tests, and its outputs stay loadable forever.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_snapshot_legacy<W: Write>(
    reasoner: &GamoraReasoner,
    w: W,
) -> Result<(), SnapshotError> {
    let quantised = reasoner.is_quantised();
    let version = if quantised { 2 } else { SNAPSHOT_VERSION_MIN };
    let mut w = HashingWriter::new(BufWriter::new(w));
    w.write_all(&SNAPSHOT_MAGIC)?;
    w.write_all(&version.to_le_bytes())?;

    let cfg = reasoner.config();
    let (tag, layers, hidden) = depth_tag(cfg.depth);
    w.write_all(&[tag])?;
    w.write_all(&layers.to_le_bytes())?;
    w.write_all(&hidden.to_le_bytes())?;
    w.write_all(&[feature_mode_tag(cfg.feature_mode)])?;
    w.write_all(&[direction_tag(cfg.direction)])?;
    w.write_all(&[cfg.multi_task as u8])?;
    w.write_all(&cfg.seed.to_le_bytes())?;

    if quantised {
        // v2: one weight + one bias section per linear, section-tagged.
        let linears = reasoner.model().linears();
        w.write_all(&((linears.len() * 2) as u32).to_le_bytes())?;
        for lin in linears {
            let q = lin
                .quantised()
                .expect("is_quantised() implies a store on every layer");
            w.write_all(&[SECTION_I8])?;
            w.write_all(&(q.rows() as u32).to_le_bytes())?;
            w.write_all(&(q.cols() as u32).to_le_bytes())?;
            // i8 -> u8 is a bit-preserving cast.
            let bytes: Vec<u8> = q.values().iter().map(|&v| v as u8).collect();
            w.write_all(&bytes)?;
            write_f32s(&mut w, q.scales())?;
            w.write_all(&[SECTION_F32])?;
            w.write_all(&(lin.b.len() as u32).to_le_bytes())?;
            write_f32s(&mut w, &lin.b)?;
        }
    } else {
        let tensors = reasoner.model().param_slices();
        w.write_all(&(tensors.len() as u32).to_le_bytes())?;
        for t in tensors {
            w.write_all(&(t.len() as u32).to_le_bytes())?;
            write_f32s(&mut w, t)?;
        }
    }

    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

/// Reads the section-tagged v2 tensor stream into a freshly built model:
/// per linear layer, one weight section (f32 or an i8-quantised block,
/// whose shape must match the skeleton) followed by one f32 bias
/// section. Every length is validated against the skeleton before any
/// payload-sized buffer is allocated, so a lying header cannot trigger a
/// huge allocation, and a truncated stream surfaces as
/// [`SnapshotError::Corrupt`] from the hashed reads — never a panic.
fn read_v2_sections<R: Read>(
    r: &mut HashingReader<R>,
    model: &mut MultiTaskSage,
) -> Result<(), SnapshotError> {
    for (i, lin) in model.linears_mut().into_iter().enumerate() {
        match r.read_u8()? {
            SECTION_F32 => {
                let len = r.read_u32()? as usize;
                let want = lin.w.rows() * lin.w.cols();
                if len != want {
                    return Err(corrupt(format!(
                        "weight tensor {i} has {len} scalars, model expects {want}"
                    )));
                }
                r.read_f32s(lin.w.as_mut_slice())?;
            }
            SECTION_I8 => {
                let rows = r.read_u32()? as usize;
                let cols = r.read_u32()? as usize;
                if (rows, cols) != (lin.w.rows(), lin.w.cols()) {
                    return Err(corrupt(format!(
                        "quantised block {i} is {rows}x{cols}, model expects {}x{}",
                        lin.w.rows(),
                        lin.w.cols()
                    )));
                }
                let mut bytes = vec![0u8; rows * cols];
                r.read_exact_hashed(&mut bytes)?;
                let data: Vec<i8> = bytes.into_iter().map(|b| b as i8).collect();
                let mut scales = vec![0.0f32; cols];
                r.read_f32s(&mut scales)?;
                lin.install_quantised(QuantisedMatrix::from_parts(rows, cols, data, scales));
            }
            t => return Err(corrupt(format!("unknown section tag {t} (tensor {i})"))),
        }
        match r.read_u8()? {
            SECTION_F32 => {
                let len = r.read_u32()? as usize;
                if len != lin.b.len() {
                    return Err(corrupt(format!(
                        "bias tensor {i} has {len} scalars, model expects {}",
                        lin.b.len()
                    )));
                }
                r.read_f32s(&mut lin.b)?;
            }
            SECTION_I8 => {
                return Err(corrupt(format!("bias tensor {i} cannot be an i8 section")));
            }
            t => return Err(corrupt(format!("unknown section tag {t} (bias {i})"))),
        }
    }
    Ok(())
}

/// Zero-allocation cursor over an in-memory snapshot image; every read
/// is bounds-checked into a typed error, never a panic.
struct ByteParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteParser<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("header offset overflow"))?;
        if end > self.bytes.len() {
            return Err(corrupt("truncated snapshot"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn parse_f32s(bytes: &[u8], out: &mut [f32]) {
    debug_assert_eq!(bytes.len(), out.len() * 4);
    for (chunk, v) in bytes.chunks_exact(4).zip(out.iter_mut()) {
        *v = f32::from_le_bytes(chunk.try_into().unwrap());
    }
}

/// Advances the canonical section walk by one expected section and
/// validates the declared table entry against it — tag, shape, offset
/// and length all have exactly one legal value, so a header that lies
/// about any of them (even a re-signed one) is rejected before its
/// fields can size an allocation or a borrow.
fn expect_v3_section<'t>(
    table: &'t [SectionEntry],
    idx: &mut usize,
    cursor: &mut u64,
    tag: u8,
    rows: usize,
    cols: usize,
    byte_len: usize,
) -> Result<&'t SectionEntry, SnapshotError> {
    let i = *idx;
    let entry = table
        .get(i)
        .ok_or_else(|| corrupt(format!("missing section {i} (table too short for model)")))?;
    let offset = align_up(*cursor as usize, SNAPSHOT_ALIGN) as u64;
    if entry.tag != tag
        || (entry.rows as usize, entry.cols as usize) != (rows, cols)
        || entry.offset != offset
        || entry.len != byte_len as u64
    {
        return Err(corrupt(format!(
            "section {i} deviates from the canonical layout \
             (declared tag {} {}x{} at {}+{}, expected tag {tag} {rows}x{cols} at {offset}+{byte_len})",
            entry.tag, entry.rows, entry.cols, entry.offset, entry.len
        )));
    }
    *cursor = offset + byte_len as u64;
    *idx = i + 1;
    Ok(entry)
}

/// Parses a complete v3 image. With `region` set (the mmap path), weight
/// matrices borrow their spans from it in O(header) — only biases are
/// copied — and the payload hash is *not* recomputed; otherwise all
/// payloads are copied into owned storage and both hashes are verified.
///
/// `region`, when present, must be backed by exactly the bytes passed as
/// `bytes`.
fn read_v3_from_bytes(
    bytes: &[u8],
    verify_payload: bool,
    region: Option<&Arc<dyn WeightRegion>>,
) -> Result<GamoraReasoner, SnapshotError> {
    if let Some(r) = region {
        debug_assert!(std::ptr::eq(r.bytes().as_ptr(), bytes.as_ptr()));
    }
    let mut p = ByteParser { bytes, pos: 0 };
    if p.take(4)? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = p.u32()?;
    if version != 3 {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    let depth_tag = p.u8()?;
    let layers = p.u32()?;
    let hidden = p.u32()?;
    let config = ReasonerConfig {
        depth: depth_from_tag(depth_tag, layers, hidden)?,
        feature_mode: feature_mode_from_tag(p.u8()?)?,
        direction: direction_from_tag(p.u8()?)?,
        multi_task: match p.u8()? {
            0 => false,
            1 => true,
            t => return Err(corrupt(format!("bad multi_task flag {t}"))),
        },
        seed: p.u64()?,
    };

    let count = p.u32()? as usize;
    // The table must fit in the file: a lying count cannot drive a large
    // allocation.
    if count > (bytes.len() - p.pos) / SECTION_ENTRY_BYTES {
        return Err(corrupt(format!(
            "section table ({count} entries) larger than file"
        )));
    }
    let mut table = Vec::with_capacity(count);
    for _ in 0..count {
        table.push(SectionEntry {
            tag: p.u8()?,
            rows: p.u32()?,
            cols: p.u32()?,
            offset: p.u64()?,
            len: p.u64()?,
        });
    }
    let payload_base = p.u64()?;
    let payload_len = p.u64()?;
    let payload_hash = p.u64()?;
    let hash_pos = p.pos;
    let header_hash = p.u64()?;
    let header_len = p.pos;

    let mut hasher = FxHasher::default();
    hasher.write(&bytes[..hash_pos]);
    if hasher.finish() != header_hash {
        return Err(corrupt("header checksum mismatch"));
    }

    // Geometry: the payload region starts at the first 64-aligned offset
    // after the header and runs exactly to EOF.
    let base = usize::try_from(payload_base).map_err(|_| corrupt("payload base overflow"))?;
    if base != align_up(header_len, SNAPSHOT_ALIGN) {
        return Err(corrupt(format!(
            "payload base {base} is not the canonical {} for this header",
            align_up(header_len, SNAPSHOT_ALIGN)
        )));
    }
    let plen = usize::try_from(payload_len).map_err(|_| corrupt("payload length overflow"))?;
    match base.checked_add(plen) {
        Some(end) if end == bytes.len() => {}
        Some(end) if end < bytes.len() => return Err(corrupt("trailing bytes after payload")),
        _ => return Err(corrupt("truncated snapshot (payload escapes file)")),
    }
    if bytes[header_len..base].iter().any(|&b| b != 0) {
        return Err(corrupt("nonzero header padding"));
    }
    if verify_payload {
        let mut hasher = FxHasher::default();
        hasher.write(&bytes[base..]);
        if hasher.finish() != payload_hash {
            return Err(corrupt("payload checksum mismatch"));
        }
    }

    // Canonical walk over the skeleton's linears; every declared entry
    // must match exactly.
    let mut reasoner = GamoraReasoner::new_zeroed(config);
    let mut idx = 0usize;
    let mut cursor = 0u64;
    for lin in reasoner.model_mut().linears_mut() {
        let (rows, cols) = (lin.w.rows(), lin.w.cols());
        let quantised = table.get(idx).map(|e| e.tag) == Some(SECTION_I8);
        if quantised {
            let values = expect_v3_section(
                &table,
                &mut idx,
                &mut cursor,
                SECTION_I8,
                rows,
                cols,
                rows * cols,
            )?;
            let scales = expect_v3_section(
                &table,
                &mut idx,
                &mut cursor,
                SECTION_F32,
                1,
                cols,
                cols * 4,
            )?;
            let bias = expect_v3_section(
                &table,
                &mut idx,
                &mut cursor,
                SECTION_F32,
                1,
                lin.b.len(),
                lin.b.len() * 4,
            )?;
            let (voff, soff) = (base + values.offset as usize, base + scales.offset as usize);
            match region {
                Some(region) => {
                    let q = QuantisedMatrix::from_region(rows, cols, region, voff, soff)
                        .map_err(|e| corrupt(e.to_string()))?;
                    lin.install_quantised_serving(q);
                }
                None => {
                    let data: Vec<i8> = bytes[voff..voff + rows * cols]
                        .iter()
                        .map(|&b| b as i8)
                        .collect();
                    let mut sc = vec![0.0f32; cols];
                    parse_f32s(&bytes[soff..soff + cols * 4], &mut sc);
                    lin.install_quantised(QuantisedMatrix::from_parts(rows, cols, data, sc));
                }
            }
            let boff = base + bias.offset as usize;
            parse_f32s(&bytes[boff..boff + lin.b.len() * 4], &mut lin.b);
        } else {
            let weights = expect_v3_section(
                &table,
                &mut idx,
                &mut cursor,
                SECTION_F32,
                rows,
                cols,
                rows * cols * 4,
            )?;
            let bias = expect_v3_section(
                &table,
                &mut idx,
                &mut cursor,
                SECTION_F32,
                1,
                lin.b.len(),
                lin.b.len() * 4,
            )?;
            let woff = base + weights.offset as usize;
            match region {
                Some(region) => {
                    lin.w = Matrix::from_region(rows, cols, region, woff)
                        .map_err(|e| corrupt(e.to_string()))?;
                }
                None => parse_f32s(&bytes[woff..woff + rows * cols * 4], lin.w.as_mut_slice()),
            }
            let boff = base + bias.offset as usize;
            parse_f32s(&bytes[boff..boff + lin.b.len() * 4], &mut lin.b);
        }
    }
    if idx != table.len() {
        return Err(corrupt(format!(
            "section table has {} entries, model consumes {idx}",
            table.len()
        )));
    }
    if cursor != payload_len {
        return Err(corrupt(format!(
            "payload length {payload_len} does not match the canonical {cursor}"
        )));
    }
    Ok(reasoner)
}

/// Deserialises a reasoner previously written by [`write_snapshot`] (v3)
/// or [`write_snapshot_legacy`] (v1/v2) — the full `v1..=v3` range.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure, wrong magic, unknown version,
/// shape mismatch, or checksum mismatch.
pub fn read_snapshot<R: Read>(r: R) -> Result<GamoraReasoner, SnapshotError> {
    // Chaos seam: an injected `err` surfaces as a typed corruption error
    // through the same path real corruption takes.
    gamora_fault::hit(gamora_fault::FaultPoint::SnapshotLoad)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    let mut r = HashingReader::new(BufReader::new(r));

    let mut magic = [0u8; 4];
    r.read_exact_hashed(&mut magic)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.read_u32()?;
    if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION_MAX).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if version == 3 {
        // v3 is parsed from a contiguous image (the same code path the
        // mmap loader uses); reconstitute the full bytes from the stream.
        let mut full = Vec::new();
        full.extend_from_slice(&SNAPSHOT_MAGIC);
        full.extend_from_slice(&3u32.to_le_bytes());
        r.inner.read_to_end(&mut full)?;
        return read_v3_from_bytes(&full, true, None);
    }

    let depth_tag = r.read_u8()?;
    let layers = r.read_u32()?;
    let hidden = r.read_u32()?;
    let config = ReasonerConfig {
        depth: depth_from_tag(depth_tag, layers, hidden)?,
        feature_mode: feature_mode_from_tag(r.read_u8()?)?,
        direction: direction_from_tag(r.read_u8()?)?,
        multi_task: match r.read_u8()? {
            0 => false,
            1 => true,
            t => return Err(corrupt(format!("bad multi_task flag {t}"))),
        },
        seed: r.read_u64()?,
    };

    // Build the skeleton from the config, then inject the stored weights
    // (zeroed: every parameter is overwritten below, so the Glorot pass
    // of `GamoraReasoner::new` would be wasted cold-start work).
    let mut reasoner = GamoraReasoner::new_zeroed(config);
    let num_tensors = r.read_u32()? as usize;
    let expected = reasoner.model().param_slices().len();
    if num_tensors != expected {
        return Err(corrupt(format!(
            "tensor count {num_tensors} does not match model shape ({expected} expected)"
        )));
    }
    if version == 1 {
        let mut slots = reasoner.model_mut().param_slices_mut();
        for (i, slot) in slots.iter_mut().enumerate() {
            let len = r.read_u32()? as usize;
            if len != slot.len() {
                return Err(corrupt(format!(
                    "tensor {i} has {len} scalars, model expects {}",
                    slot.len()
                )));
            }
            r.read_f32s(slot)?;
        }
    } else {
        read_v2_sections(&mut r, reasoner.model_mut())?;
    }

    let expected = r.hasher.finish();
    // The checksum itself is not part of the hashed payload.
    let mut tail = [0u8; 8];
    r.inner.read_exact(&mut tail).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => corrupt("truncated snapshot (missing checksum)"),
        _ => SnapshotError::Io(e),
    })?;
    let stored = u64::from_le_bytes(tail);
    if stored != expected {
        return Err(corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {expected:#018x})"
        )));
    }
    // Trailing garbage after the checksum is also corruption.
    let mut probe = [0u8; 1];
    match r.inner.read(&mut probe)? {
        0 => Ok(reasoner),
        _ => Err(corrupt("trailing bytes after checksum")),
    }
}

/// A whole snapshot file held as one shared read-only region. The weight
/// matrices of an mmap-loaded reasoner borrow their spans from this
/// region through an `Arc`, so the `Arc` (not the reasoner) owns the
/// mapping and N reasoners — or N processes mapping the same file —
/// share one physical page-cache copy of the weights.
pub struct MappedSnapshot {
    map: mmap::Mmap,
}

impl WeightRegion for MappedSnapshot {
    fn bytes(&self) -> &[u8] {
        &self.map
    }
}

/// How [`GamoraReasoner::load_mmap`] actually loaded a snapshot.
#[derive(Clone, Copy, Debug)]
pub struct MmapLoadStats {
    /// Whether the weights are borrowed zero-copy from a shared mapping
    /// (`false` = the read-to-owned fallback ran: non-v3 file, non-Unix
    /// target, big-endian host, or a failed `mmap(2)`).
    pub mapped: bool,
    /// Snapshot file size in bytes.
    pub file_bytes: u64,
    /// Wall-clock microseconds from `open(2)` to a serving-ready
    /// reasoner.
    pub load_micros: u64,
}

impl GamoraReasoner {
    /// Saves the trained reasoner to `path` in the versioned `.gsnap`
    /// binary format (see the [`crate::snapshot`] module docs).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_snapshot(self, File::create(path)?)
    }

    /// Loads a snapshot by memory-mapping it and borrowing every weight
    /// slice out of the mapping — O(header) work and near-zero resident
    /// weight bytes, instead of reading and copying the whole payload.
    /// Header validation (checksum, canonical section layout) still runs
    /// in full; the payload hash is skipped so pages fault in lazily on
    /// first use.
    ///
    /// Falls back to the plain owned [`read_snapshot`] path — same
    /// result, just copied — for v1/v2 files, on targets without `mmap`,
    /// on big-endian hosts (the payload is little-endian), or when the
    /// mapping itself fails; `stats.mapped` reports which path ran.
    ///
    /// A quantised reasoner loaded this way is **serving-only**: the
    /// training-path `f32` weights keep their skeleton zeros (see
    /// [`gamora_gnn::Linear::install_quantised_serving`]). Inference,
    /// which is all the serve path does, is bit-identical to an
    /// owned load.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for missing files, foreign formats,
    /// version skew, or corruption — the same errors as
    /// [`GamoraReasoner::load`].
    pub fn load_mmap(
        path: impl AsRef<Path>,
    ) -> Result<(GamoraReasoner, MmapLoadStats), SnapshotError> {
        let start = Instant::now();
        let file = File::open(path)?;
        let file_bytes = file.metadata()?.len();
        let stats = |mapped: bool| MmapLoadStats {
            mapped,
            file_bytes,
            load_micros: start.elapsed().as_micros() as u64,
        };
        if cfg!(target_endian = "little") {
            if let Ok(map) = mmap::Mmap::map(&file) {
                let bytes: &[u8] = &map;
                let is_v3 = bytes.len() >= 8
                    && bytes[0..4] == SNAPSHOT_MAGIC
                    && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) == 3;
                if is_v3 {
                    // Same chaos seam as `read_snapshot` (the fallback
                    // paths below reach it through `read_snapshot`).
                    gamora_fault::hit(gamora_fault::FaultPoint::SnapshotLoad)
                        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
                    let snap = Arc::new(MappedSnapshot { map });
                    let region: Arc<dyn WeightRegion> = snap;
                    let reasoner = read_v3_from_bytes(region.bytes(), false, Some(&region))?;
                    return Ok((reasoner, stats(true)));
                }
                // Mapped fine but not zero-copy-loadable: parse the mapped
                // bytes through the owned reader (v1/v2, or its errors).
                let reasoner = read_snapshot(bytes)?;
                return Ok((reasoner, stats(false)));
            }
        }
        let reasoner = read_snapshot(file)?;
        Ok((reasoner, stats(false)))
    }

    /// Loads a reasoner saved by [`GamoraReasoner::save`]. The result is
    /// bit-exact: predictions and `evaluate` scores match the saved
    /// instance's.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] for missing files, foreign formats,
    /// version skew, or corruption (checksum mismatch).
    pub fn load(path: impl AsRef<Path>) -> Result<GamoraReasoner, SnapshotError> {
        read_snapshot(File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reasoner::{ModelDepth, ReasonerConfig};
    use gamora_circuits::csa_multiplier;
    use gamora_gnn::TrainConfig;

    fn trained_reasoner() -> GamoraReasoner {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 20,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        reasoner
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let reasoner = trained_reasoner();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();

        assert_eq!(back.config(), reasoner.config());
        let src: Vec<Vec<f32>> = reasoner
            .model()
            .param_slices()
            .iter()
            .map(|s| s.to_vec())
            .collect();
        let dst: Vec<Vec<f32>> = back
            .model()
            .param_slices()
            .iter()
            .map(|s| s.to_vec())
            .collect();
        assert_eq!(src, dst, "weights must survive bit-exactly");

        // And behaviour matches exactly on a fresh workload.
        let subject = csa_multiplier(4);
        let original = reasoner;
        let a = original.predict(&subject.aig);
        let b = back.predict(&subject.aig);
        assert_eq!(a.root_leaf, b.root_leaf);
        assert_eq!(a.is_xor, b.is_xor);
        assert_eq!(a.is_maj, b.is_maj);
    }

    #[test]
    fn file_roundtrip_via_save_load() {
        let reasoner = trained_reasoner();
        let path =
            std::env::temp_dir().join(format!("gamora-snap-test-{}.gsnap", std::process::id()));
        reasoner.save(&path).unwrap();
        let back = GamoraReasoner::load(&path).unwrap();
        assert_eq!(back.config(), reasoner.config());
        assert_eq!(back.num_params(), reasoner.num_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_snapshot(&b"NOPE....."[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");
    }

    #[test]
    fn unknown_version_is_rejected_with_readable_range() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf[4] = 99; // bump the version field
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::UnsupportedVersion(99)),
            "{err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("v1") && msg.contains("v3"),
            "the error must report the full readable range: {msg}"
        );
        // Version 0 is below the readable range, not corrupt.
        buf[4] = 0;
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(0)), "{err}");
    }

    /// The legacy writer still picks v1 for unquantised and v2 (with i8
    /// sections roughly a quarter of the v1 size) for quantised
    /// reasoners, and both load under today's reader.
    #[test]
    fn legacy_writer_picks_version_by_weight_store() {
        let mut reasoner = trained_reasoner();
        let mut v1 = Vec::new();
        write_snapshot_legacy(&reasoner, &mut v1).unwrap();
        assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1);
        assert!(read_snapshot(&v1[..]).is_ok());

        reasoner.quantise();
        let mut v2 = Vec::new();
        write_snapshot_legacy(&reasoner, &mut v2).unwrap();
        assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
        assert!(
            v2.len() < v1.len() / 2,
            "v2 with i8 weight blocks must be much smaller ({} vs {} bytes)",
            v2.len(),
            v1.len()
        );
        assert!(read_snapshot(&v2[..]).is_ok());
    }

    /// The default writer emits v3: section table in the header, payload
    /// region 64-aligned, every section on a 64-byte boundary.
    #[test]
    fn v3_writer_emits_aligned_sectioned_layout() {
        let reasoner = trained_reasoner();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 3);
        let count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        // Two f32 sections (weights + bias) per linear.
        assert_eq!(count, reasoner.model().linears().len() * 2);
        let tail = 32 + SECTION_ENTRY_BYTES * count;
        let payload_base = u64::from_le_bytes(buf[tail..tail + 8].try_into().unwrap()) as usize;
        let payload_len = u64::from_le_bytes(buf[tail + 8..tail + 16].try_into().unwrap()) as usize;
        assert_eq!(payload_base % SNAPSHOT_ALIGN, 0);
        assert_eq!(payload_base + payload_len, buf.len());
        for i in 0..count {
            let at = 32 + SECTION_ENTRY_BYTES * i;
            let offset = u64::from_le_bytes(buf[at + 9..at + 17].try_into().unwrap()) as usize;
            assert_eq!(offset % SNAPSHOT_ALIGN, 0, "section {i} offset {offset}");
        }
    }

    /// Quantise -> save -> load round-trips the i8 payload and scales
    /// exactly; the reloaded reasoner serves bit-identical predictions
    /// and re-saving produces identical bytes.
    #[test]
    fn quantised_roundtrip_is_exact() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();
        assert!(back.is_quantised());
        assert_eq!(back.config(), reasoner.config());

        for (a, b) in reasoner
            .model()
            .linears()
            .iter()
            .zip(back.model().linears())
        {
            let (qa, qb) = (a.quantised().unwrap(), b.quantised().unwrap());
            assert_eq!(qa.values(), qb.values(), "i8 payload must round-trip");
            let sa: Vec<u32> = qa.scales().iter().map(|s| s.to_bits()).collect();
            let sb: Vec<u32> = qb.scales().iter().map(|s| s.to_bits()).collect();
            assert_eq!(sa, sb, "scales must round-trip bit-exactly");
            assert_eq!(a.b, b.b, "biases must round-trip");
        }

        let subject = csa_multiplier(4);
        assert_eq!(
            reasoner.predict(&subject.aig),
            back.predict(&subject.aig),
            "served predictions must be bit-identical"
        );

        let mut again = Vec::new();
        write_snapshot(&back, &mut again).unwrap();
        assert_eq!(buf, again, "save -> load -> save must be a fixed point");
    }

    /// Truncating a v2 file anywhere — inside a section header, the i8
    /// payload, the scales, or the checksum — fails with a structured
    /// error, never a panic.
    #[test]
    fn truncated_v2_is_corruption_not_panic() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot_legacy(&reasoner, &mut buf).unwrap();
        for keep in [30usize, 40, 60, buf.len() / 2, buf.len() - 9, buf.len() - 1] {
            let err = read_snapshot(&buf[..keep]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Corrupt(_)),
                "truncation at {keep}: {err}"
            );
        }
    }

    /// Bit corruption in a v2 body (section tags included) is caught by
    /// structure checks or the trailing checksum.
    #[test]
    fn v2_corruption_anywhere_fails() {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut pristine = Vec::new();
        write_snapshot_legacy(&reasoner, &mut pristine).unwrap();
        for pos in [28usize, 33, 40, pristine.len() / 2, pristine.len() - 9] {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x10;
            assert!(
                read_snapshot(&buf[..]).is_err(),
                "bit flip at {pos} must not load cleanly"
            );
        }
    }

    #[test]
    fn corruption_anywhere_fails_checksum() {
        let mut pristine = Vec::new();
        write_snapshot_legacy(&trained_reasoner(), &mut pristine).unwrap();
        // Flip one bit in several places across the payload (skipping the
        // magic/version, which produce their own error kinds).
        for pos in [16usize, 40, pristine.len() / 2, pristine.len() - 9] {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x10;
            assert!(
                read_snapshot(&buf[..]).is_err(),
                "bit flip at {pos} must not load cleanly"
            );
        }
    }

    #[test]
    fn truncation_is_corruption() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf.truncate(buf.len() - 13);
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        buf.extend_from_slice(b"junk");
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    /// Recomputes and installs a v3 header hash — for tests that tamper
    /// with header fields and need the tampering itself (not the stale
    /// signature) to be what the reader rejects.
    fn resign_v3(buf: &mut [u8]) {
        let count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        let hash_pos = 32 + SECTION_ENTRY_BYTES * count + 24;
        let mut h = FxHasher::default();
        h.write(&buf[..hash_pos]);
        let sig = h.finish();
        buf[hash_pos..hash_pos + 8].copy_from_slice(&sig.to_le_bytes());
    }

    /// Truncating or bit-flipping a v3 file anywhere — header, section
    /// table, padding, payload — is a typed error, never a panic.
    #[test]
    fn v3_truncation_and_corruption_are_typed_errors() {
        let mut reasoner = trained_reasoner();
        for quantised in [false, true] {
            if quantised {
                reasoner.quantise();
            }
            let mut pristine = Vec::new();
            write_snapshot(&reasoner, &mut pristine).unwrap();
            for keep in [7usize, 20, 33, 60, pristine.len() / 2, pristine.len() - 1] {
                let err = read_snapshot(&pristine[..keep]).unwrap_err();
                assert!(
                    matches!(err, SnapshotError::Corrupt(_)),
                    "truncation at {keep} (quantised {quantised}): {err}"
                );
            }
            for pos in [9usize, 30, 40, 64, pristine.len() / 2, pristine.len() - 1] {
                let mut buf = pristine.clone();
                buf[pos] ^= 0x10;
                assert!(
                    read_snapshot(&buf[..]).is_err(),
                    "bit flip at {pos} (quantised {quantised}) must not load cleanly"
                );
            }
        }
    }

    /// A *re-signed* lying v3 header (valid checksum, fields that deviate
    /// from the canonical layout) is still rejected: offsets, shapes,
    /// payload base and section count all have exactly one legal value.
    #[test]
    fn v3_resigned_lying_headers_are_rejected() {
        let reasoner = trained_reasoner();
        let mut pristine = Vec::new();
        write_snapshot(&reasoner, &mut pristine).unwrap();
        let count = u32::from_le_bytes(pristine[28..32].try_into().unwrap()) as usize;
        let tail = 32 + SECTION_ENTRY_BYTES * count;

        // Shift the second section's offset by one alignment unit.
        let mut buf = pristine.clone();
        let at = 32 + SECTION_ENTRY_BYTES + 9;
        let off = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap()) + 64;
        buf[at..at + 8].copy_from_slice(&off.to_le_bytes());
        resign_v3(&mut buf);
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");

        // Inflate a section's row count (a would-be huge allocation).
        let mut buf = pristine.clone();
        buf[32 + 1..32 + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        resign_v3(&mut buf);
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");

        // Move the payload base.
        let mut buf = pristine.clone();
        let base = u64::from_le_bytes(buf[tail..tail + 8].try_into().unwrap()) + 64;
        buf[tail..tail + 8].copy_from_slice(&base.to_le_bytes());
        resign_v3(&mut buf);
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");

        // Claim a giant section table (the count cap rejects this before
        // any signature check, so no re-sign is possible or needed).
        let mut buf = pristine.clone();
        buf[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    /// `load_mmap` on a v3 file borrows the weights (near-zero resident
    /// bytes) and serves predictions bit-identical to the owned load —
    /// for both f32 and quantised snapshots.
    #[test]
    fn load_mmap_serves_bit_identically() {
        let mut reasoner = trained_reasoner();
        let subject = csa_multiplier(4);
        for quantised in [false, true] {
            if quantised {
                reasoner.quantise();
            }
            let path = std::env::temp_dir().join(format!(
                "gamora-snap-mmap-{}-{quantised}.gsnap",
                std::process::id()
            ));
            reasoner.save(&path).unwrap();
            let owned = GamoraReasoner::load(&path).unwrap();
            let (mapped, stats) = GamoraReasoner::load_mmap(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(mapped.config(), reasoner.config());
            assert_eq!(
                mapped.predict(&subject.aig),
                owned.predict(&subject.aig),
                "mmap-loaded predictions must be bit-identical (quantised {quantised})"
            );
            if cfg!(all(unix, target_pointer_width = "64")) {
                assert!(stats.mapped, "expected the zero-copy path on this target");
                // Only biases stay owned; the weight payloads live in the
                // mapping (biases dominate on this tiny test model, so the
                // bound is deliberately loose).
                assert!(
                    mapped.resident_weight_bytes() * 2 < owned.resident_weight_bytes(),
                    "borrowed weights should be ~non-resident: {} vs {} bytes",
                    mapped.resident_weight_bytes(),
                    owned.resident_weight_bytes()
                );
            }
            assert!(stats.file_bytes > 0 && stats.load_micros > 0);
        }
    }

    /// `load_mmap` on a legacy (v1/v2) file transparently falls back to
    /// the owned reader and reports `mapped: false`.
    #[test]
    fn load_mmap_falls_back_for_legacy_files() {
        let reasoner = trained_reasoner();
        let path = std::env::temp_dir().join(format!(
            "gamora-snap-mmap-legacy-{}.gsnap",
            std::process::id()
        ));
        write_snapshot_legacy(&reasoner, File::create(&path).unwrap()).unwrap();
        let (back, stats) = GamoraReasoner::load_mmap(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(!stats.mapped);
        let subject = csa_multiplier(4);
        assert_eq!(back.predict(&subject.aig), reasoner.predict(&subject.aig));
    }
}
