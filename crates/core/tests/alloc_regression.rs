//! Steady-state allocation regression guard for the inference hot path.
//!
//! The whole point of the tape/scratch refactor is that a warmed-up
//! `predict_prepared_into` call performs **zero** heap allocations: every
//! buffer (per-layer activations, aggregation/concat scratch, logits, the
//! output `Predictions`) is reused at its high-water capacity. This test
//! installs a counting global allocator and fails if the steady state ever
//! touches the heap again.
//!
//! It must stay the only `#[test]` in this binary: a global allocator is
//! process-wide, and concurrent tests would perturb the counter. Counting
//! is additionally gated on a thread-local flag so that only the
//! measuring thread is observed — the libtest harness thread runs
//! concurrently and its channel waits can allocate at arbitrary points.

use gamora::{GamoraReasoner, ModelDepth, Predictions, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Set only on the measuring thread, only around the measured window.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    // `try_with` so allocations during TLS teardown never panic.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// System allocator wrapper that counts allocation calls on the opted-in
/// thread (deallocations are free to happen; only new acquisitions
/// indicate churn).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn predict_prepared_into_is_allocation_free_after_warmup() {
    let m = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner; // frozen: inference is `&self` from here on

    let (graph, features) = gamora::dataset::inference_graph(
        &m.aig,
        reasoner.config().feature_mode,
        reasoner.config().direction,
    );
    let mut scratch = reasoner.scratch();
    let mut out = Predictions::default();

    // Warmup: buffers grow to their high-water marks.
    reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
    let expected = out.clone();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state predict_prepared_into must not allocate"
    );

    // And the allocation-free passes still compute the right thing.
    assert_eq!(out.root_leaf, expected.root_leaf);
    assert_eq!(out.is_xor, expected.is_xor);
    assert_eq!(out.is_maj, expected.is_maj);
}
