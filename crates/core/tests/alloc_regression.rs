//! Steady-state allocation regression guard for the inference hot path.
//!
//! The whole point of the tape/scratch refactor is that a warmed-up
//! `predict_prepared_into` call performs **zero** heap allocations: every
//! buffer (per-layer activations, aggregation scratch, logits, the output
//! `Predictions`) is reused at its high-water capacity. Since the
//! zero-copy batch-assembly work, the same holds for the **full** path
//! from raw `&Aig`s — graph construction, feature encoding, batch
//! assembly and the forward pass (`predict_batch_into`). These tests
//! install a counting global allocator and fail if either steady state
//! ever touches the heap again.
//!
//! The allocator is process-wide, so the tests in this binary serialise
//! on a mutex and counting is additionally gated on a thread-local flag:
//! only the measuring thread inside its measured window is observed — the
//! libtest harness thread runs concurrently and its channel waits can
//! allocate at arbitrary points.

use gamora::{GamoraReasoner, ModelDepth, Predictions, ReasonerConfig, TrainConfig};
use gamora_aig::Aig;
use gamora_circuits::csa_multiplier;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serialises the measuring tests (one process-wide counter).
static TEST_LOCK: Mutex<()> = Mutex::new(());

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Set only on the measuring thread, only around the measured window.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    // `try_with` so allocations during TLS teardown never panic.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// System allocator wrapper that counts allocation calls on the opted-in
/// thread (deallocations are free to happen; only new acquisitions
/// indicate churn).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn predict_prepared_into_is_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let m = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner; // frozen: inference is `&self` from here on

    let (graph, features) = gamora::dataset::inference_graph(
        &m.aig,
        reasoner.config().feature_mode,
        reasoner.config().direction,
    );
    let mut scratch = reasoner.scratch();
    let mut out = Predictions::default();

    // Warmup: buffers grow to their high-water marks.
    reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
    let expected = out.clone();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state predict_prepared_into must not allocate"
    );

    // And the allocation-free passes still compute the right thing.
    assert_eq!(out.root_leaf, expected.root_leaf);
    assert_eq!(out.is_xor, expected.is_xor);
    assert_eq!(out.is_maj, expected.is_maj);
}

/// The *entire* batch pipeline from raw `&Aig`s — streaming graph
/// construction, feature encoding, disjoint-union batch assembly, the
/// forward pass, and the per-netlist split — is allocation-free once the
/// worker-owned scratch (`BatchScratch` + `InferenceScratch` + recycled
/// outputs) has warmed up. This is exactly the serve worker's miss path.
#[test]
fn predict_batch_into_full_path_is_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let m3 = csa_multiplier(3);
    let m4 = csa_multiplier(4);
    let m5 = csa_multiplier(5);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m3.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner;

    // Mixed sizes in one batch, largest not first, so the split offsets
    // and capacity-reuse paths all get exercised.
    let aigs: Vec<&Aig> = vec![&m4.aig, &m3.aig, &m5.aig];
    let mut batch = reasoner.batch_scratch();
    let mut scratch = reasoner.scratch();
    let mut outs: Vec<Predictions> = Vec::new();

    // Warmup: every buffer — CSR arrays, merged features, forward
    // scratch, merged and per-netlist predictions — grows to its
    // high-water mark.
    reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut outs);
    let expected = outs.clone();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut outs);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state predict_batch_into (graph build + features + batch \
         assembly + forward) must not allocate"
    );
    assert_eq!(outs, expected);

    // Fluctuating batch sizes (the serve steady state: queue drains vary
    // batch to batch) must also stay allocation-free — entries trimmed by
    // a shrink park in the scratch's spare pool and return on regrowth.
    let small: Vec<&Aig> = vec![&m3.aig];
    reasoner.predict_batch_into(&mut batch, &mut scratch, &small, &mut outs);
    let expected_small = outs.clone();
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..8 {
        reasoner.predict_batch_into(&mut batch, &mut scratch, &small, &mut outs);
        reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut outs);
    }
    COUNTING.with(|c| c.set(false));
    assert_eq!(
        ALLOC_CALLS.load(Ordering::SeqCst) - before,
        0,
        "alternating batch sizes must recycle warmed buffers, not reallocate"
    );
    assert_eq!(outs, expected);
    reasoner.predict_batch_into(&mut batch, &mut scratch, &small, &mut outs);
    assert_eq!(outs, expected_small);
}

/// The instrumented batch path — `predict_batch_into_timed` with a live
/// [`ForwardObserver`] recording every stage into lock-free obs
/// histograms — must be exactly as allocation-free as the bare path.
/// Observability that allocates on the hot path is a perf regression in
/// disguise; this pins the "recording is allocation-free" contract from
/// the serve worker's point of view.
#[test]
fn instrumented_batch_path_is_allocation_free_after_warmup() {
    use gamora::{ForwardObserver, ForwardStage};
    use gamora_obs::Histogram;

    /// Test observer mirroring the serve crate's per-layer hook: one
    /// preallocated histogram per stage, plain `record` calls.
    struct HistObserver {
        layers: Vec<Histogram>,
        shared: Histogram,
        heads: Histogram,
    }

    impl ForwardObserver for HistObserver {
        fn record_stage(&self, stage: ForwardStage, micros: u64) {
            match stage {
                ForwardStage::Sage(l) => {
                    if let Some(h) = self.layers.get(l) {
                        h.record(micros);
                    }
                }
                ForwardStage::Shared => self.shared.record(micros),
                ForwardStage::Heads => self.heads.record(micros),
            }
        }
    }

    let _guard = TEST_LOCK.lock().unwrap();
    let m3 = csa_multiplier(3);
    let m4 = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m3.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner;

    let observer = HistObserver {
        layers: (0..reasoner.num_layers())
            .map(|_| Histogram::new())
            .collect(),
        shared: Histogram::new(),
        heads: Histogram::new(),
    };

    let aigs: Vec<&Aig> = vec![&m4.aig, &m3.aig];
    let mut batch = reasoner.batch_scratch();
    let mut scratch = reasoner.scratch();
    let mut outs: Vec<Predictions> = Vec::new();

    // Warmup (already instrumented: the observer must never allocate,
    // warm or cold — histograms preallocate all buckets up front).
    reasoner.predict_batch_into_timed(&mut batch, &mut scratch, &aigs, &mut outs, Some(&observer));
    let expected = outs.clone();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        reasoner.predict_batch_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &mut outs,
            Some(&observer),
        );
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state instrumented predict_batch_into_timed (stage timing \
         + per-layer histogram recording) must not allocate"
    );
    assert_eq!(outs, expected);

    // The observer really saw every stage of every pass: 33 batches x
    // (3 trunk layers + shared + heads).
    for (l, h) in observer.layers.iter().enumerate() {
        assert_eq!(h.snapshot().count(), 33, "layer {l} recorded per pass");
    }
    assert_eq!(observer.shared.snapshot().count(), 33);
    assert_eq!(observer.heads.snapshot().count(), 33);
}

/// A batch large enough to route through the *sectioned* assembly entry
/// point (`Graph::from_sections_into`) must honour the same zero-alloc
/// contract. With the intra-thread cap forced to 1 the sectioned build
/// takes its serial fallback — the exact dispatch the serve path uses
/// when a worker's thread budget is exhausted — and that fallback must
/// reuse the caller's scratch without touching the heap. (The
/// multi-thread path reuses the same buffers but pays scoped-thread
/// spawns, which allocate by nature; its bit-identical output is pinned
/// by the gnn `assembly_equivalence` suite instead.)
#[test]
fn sectioned_assembly_serial_dispatch_is_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let prev_cap = gamora_gnn::parallel::intra_threads();
    gamora_gnn::parallel::set_intra_threads(1);

    // 4 x 16-bit CSA = 10376 merged nodes: above the per-thread row
    // cutoff, so without the cap this batch *would* fan out.
    let m16 = csa_multiplier(16);
    let m3 = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m3.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner;

    let aigs: Vec<&Aig> = vec![&m16.aig, &m16.aig, &m16.aig, &m16.aig];
    let mut batch = reasoner.batch_scratch();
    let mut scratch = reasoner.scratch();
    let mut outs: Vec<Predictions> = Vec::new();

    reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut outs);
    let expected = outs.clone();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..4 {
        reasoner.predict_batch_into(&mut batch, &mut scratch, &aigs, &mut outs);
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    gamora_gnn::parallel::set_intra_threads(prev_cap);
    assert_eq!(
        after - before,
        0,
        "serial-dispatch sectioned batch assembly must not allocate after warmup"
    );
    assert_eq!(outs, expected);
}

/// Borrowed weight storage is invisible to the hot path: a model loaded
/// with [`GamoraReasoner::load_mmap`] keeps every tensor as a slice into
/// the snapshot mapping, and warmed-up inference over those borrowed
/// matrices must be exactly as allocation-free as over owned ones — for
/// both the f32 kernels and the quantised i8 kernels. A storage seam
/// that secretly copies-on-read (or a `make_owned` sneaking onto the
/// read path) shows up here as a nonzero count.
#[test]
fn mmap_loaded_borrowed_weights_infer_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let m = csa_multiplier(4);
    for quantised in [false, true] {
        let mut trained = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 3,
                hidden: 16,
            },
            ..ReasonerConfig::default()
        });
        trained.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        if quantised {
            trained.quantise();
        }
        let path = std::env::temp_dir().join(format!(
            "gamora-alloc-mmap-{}-{quantised}.gsnap",
            std::process::id()
        ));
        trained.save(&path).expect("save snapshot");
        let (reasoner, _stats) = GamoraReasoner::load_mmap(&path).expect("mmap load");
        std::fs::remove_file(&path).ok();

        let (graph, features) = gamora::dataset::inference_graph(
            &m.aig,
            reasoner.config().feature_mode,
            reasoner.config().direction,
        );
        let mut scratch = reasoner.scratch();
        let mut out = Predictions::default();
        reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
        let expected = out.clone();

        let before = ALLOC_CALLS.load(Ordering::SeqCst);
        COUNTING.with(|c| c.set(true));
        for _ in 0..32 {
            reasoner.predict_prepared_into(&mut scratch, &graph, &features, &mut out);
        }
        COUNTING.with(|c| c.set(false));
        let after = ALLOC_CALLS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady-state inference over borrowed (mmap) weights must not \
             allocate (quantised {quantised})"
        );
        assert_eq!(out.root_leaf, expected.root_leaf);
        assert_eq!(out.is_xor, expected.is_xor);
        assert_eq!(out.is_maj, expected.is_maj);

        // And against the owned-storage ground truth from the live model.
        let direct = trained.predict(&m.aig);
        assert_eq!(out.root_leaf, direct.root_leaf);
        assert_eq!(out.is_xor, direct.is_xor);
        assert_eq!(out.is_maj, direct.is_maj);
    }
}

/// The cone-tier split pipeline — `assemble_batch_timed` followed by a
/// caller-side scatter into the merged predictions and the row-masked
/// `predict_assembled_rows_into_timed` — must be exactly as
/// allocation-free after warmup as the one-shot batch path it refactors.
/// This is the serve worker's hot path whenever the cone cache is on,
/// including the all-hit case where no forward pass runs at all.
#[test]
fn masked_assembled_rows_path_is_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let m3 = csa_multiplier(3);
    let m4 = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m3.aig],
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let reasoner = reasoner;

    let aigs: Vec<&Aig> = vec![&m4.aig, &m3.aig];
    let total: usize = aigs.iter().map(|a| a.num_nodes()).sum();
    let mut batch = reasoner.batch_scratch();
    let mut scratch = reasoner.scratch();
    let mut outs: Vec<Predictions> = Vec::new();
    // A fixed residual-row mask (every third row) stands in for the cone
    // cache's miss rows; preallocated like the serve worker's ConeState.
    let rows: Vec<u32> = (0..total as u32).filter(|r| r % 3 == 0).collect();

    // Warmup: assembly, merged-prediction sizing, the row-gather matrix
    // inside the inference scratch, and the per-netlist outputs all grow
    // to their high-water marks.
    reasoner.assemble_batch_timed(&mut batch, &aigs);
    reasoner.predict_assembled_rows_into_timed(
        &mut batch,
        &mut scratch,
        &aigs,
        &rows,
        &mut outs,
        None,
    );

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        reasoner.assemble_batch_timed(&mut batch, &aigs);
        reasoner.predict_assembled_rows_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &rows,
            &mut outs,
            None,
        );
    }
    // The all-hit fast path (empty row mask: scatter + split only, no
    // forward) must be allocation-free too.
    for _ in 0..8 {
        reasoner.assemble_batch_timed(&mut batch, &aigs);
        reasoner.predict_assembled_rows_into_timed(
            &mut batch,
            &mut scratch,
            &aigs,
            &[],
            &mut outs,
            None,
        );
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state assemble + row-masked predict (the cone-tier serve \
         path) must not allocate"
    );

    // The masked rows decode identically to the one-shot batch path.
    let mut full_batch = reasoner.batch_scratch();
    let mut full_outs: Vec<Predictions> = Vec::new();
    reasoner.predict_batch_into(&mut full_batch, &mut scratch, &aigs, &mut full_outs);
    let offsets: Vec<usize> = {
        let mut base = 0;
        aigs.iter()
            .map(|a| {
                let o = base;
                base += a.num_nodes();
                o
            })
            .collect()
    };
    reasoner.assemble_batch_timed(&mut batch, &aigs);
    reasoner.predict_assembled_rows_into_timed(
        &mut batch,
        &mut scratch,
        &aigs,
        &rows,
        &mut outs,
        None,
    );
    for &r in &rows {
        let r = r as usize;
        let (i, off) = offsets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &off)| off <= r)
            .map(|(i, &off)| (i, off))
            .expect("row within batch");
        assert_eq!(outs[i].root_leaf[r - off], full_outs[i].root_leaf[r - off]);
        assert_eq!(outs[i].is_xor[r - off], full_outs[i].is_xor[r - off]);
        assert_eq!(outs[i].is_maj[r - off], full_outs[i].is_maj[r - off]);
    }
}
