//! Numerical-equivalence guard for the fused inference kernels on the
//! paper's 16-bit CSA evaluation subject.
//!
//! The register-blocked, split-weight GEMM path regroups floating-point
//! accumulation (4-wide K unroll, `h @ W_self + agg @ W_neigh` instead of
//! `concat @ W`), so logits are not bit-identical to the pre-blocking
//! kernels. This test pins the drift: against a naive reference forward
//! that reproduces the old scalar kernel's summation order exactly, the
//! fused path must stay within 1e-4 max-abs logit difference and produce
//! identical argmax labels on every node and task.

use gamora::dataset::build_graph;
use gamora::features::{build_features, FeatureMode};
use gamora_circuits::csa_multiplier;
use gamora_gnn::loss::argmax;
use gamora_gnn::{Direction, Graph, Matrix, ModelConfig, MultiTaskSage};

/// Naive matmul with k-ascending per-element accumulation — the summation
/// order of the pre-blocking scalar kernel.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn naive_linear(x: &Matrix, w: &[f32], b: &[f32], relu: bool) -> Matrix {
    let n = b.len();
    let w = Matrix::from_vec(x.cols(), n, w.to_vec());
    let mut y = naive_matmul(x, &w);
    y.add_row_vector(b);
    if relu {
        y.relu_in_place();
    }
    y
}

fn naive_mean_aggregate(graph: &Graph, h: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(h.rows(), h.cols());
    for v in 0..graph.num_nodes() {
        let neigh = graph.neighbors(v);
        if neigh.is_empty() {
            continue;
        }
        for &u in neigh {
            for c in 0..h.cols() {
                out.set(v, c, out.get(v, c) + h.get(u as usize, c));
            }
        }
        let inv = 1.0 / neigh.len() as f32;
        for c in 0..h.cols() {
            out.set(v, c, out.get(v, c) * inv);
        }
    }
    out
}

#[test]
fn fused_kernels_match_reference_on_16bit_csa() {
    let config = ModelConfig::shallow(3, vec![4, 2, 2]);
    let (hidden, layers) = (config.hidden, config.layers);
    let task_classes = config.task_classes.clone();
    let model = MultiTaskSage::new(config);

    let m = csa_multiplier(16);
    let graph = build_graph(&m.aig, Direction::Bidirectional);
    let x = build_features(&m.aig, FeatureMode::StructuralFunctional);

    // Reference forward through the snapshot-ordered parameter slices:
    // trunk layers, shared linear, task heads (weights then bias each).
    let slices = model.param_slices();
    let mut h = x.clone();
    for l in 0..layers {
        let agg = naive_mean_aggregate(&graph, &h);
        let concat = h.hconcat(&agg);
        h = naive_linear(&concat, slices[2 * l], slices[2 * l + 1], true);
    }
    let z = naive_linear(&h, slices[2 * layers], slices[2 * layers + 1], true);
    let reference: Vec<Matrix> = (0..task_classes.len())
        .map(|t| {
            naive_linear(
                &z,
                slices[2 * layers + 2 + 2 * t],
                slices[2 * layers + 2 + 2 * t + 1],
                false,
            )
        })
        .collect();
    assert_eq!(h.cols(), hidden);

    let fused = model.forward(&graph, &x);
    assert_eq!(fused.len(), reference.len());
    let mut max_diff = 0.0f32;
    for (task, (got, want)) in fused.iter().zip(&reference).enumerate() {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            max_diff = max_diff.max((g - w).abs());
        }
        for r in 0..got.rows() {
            assert_eq!(
                argmax(got.row(r)),
                argmax(want.row(r)),
                "task {task}, node {r}: argmax label flipped"
            );
        }
    }
    assert!(
        max_diff <= 1e-4,
        "fused kernels drifted {max_diff} from the reference path (> 1e-4)"
    );
    eprintln!("16-bit CSA max-abs logit diff vs reference: {max_diff:e}");
}
