//! Repro: re-signed v3 header with shrunk payload_len should be a typed
//! error, not a panic.

use gamora::snapshot::{read_snapshot, write_snapshot};
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::hasher::FxHasher;
use gamora_circuits::csa_multiplier;
use std::hash::Hasher;

const SECTION_ENTRY_BYTES: usize = 1 + 4 + 4 + 8 + 8;

fn resign_v3(buf: &mut [u8]) {
    let count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
    let hash_pos = 32 + SECTION_ENTRY_BYTES * count + 24;
    let mut h = FxHasher::default();
    h.write(&buf[..hash_pos]);
    let sig = h.finish();
    buf[hash_pos..hash_pos + 8].copy_from_slice(&sig.to_le_bytes());
}

#[test]
fn resigned_shrunk_payload_is_typed_error_not_panic() {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 1,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    let mut buf = Vec::new();
    write_snapshot(&reasoner, &mut buf).unwrap();
    let count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
    let tail = 32 + SECTION_ENTRY_BYTES * count;
    // Shrink payload_len by 64 and truncate the file to match, then
    // re-sign the header so the checksum is valid.
    let plen = u64::from_le_bytes(buf[tail + 8..tail + 16].try_into().unwrap());
    buf[tail + 8..tail + 16].copy_from_slice(&(plen - 64).to_le_bytes());
    buf.truncate(buf.len() - 64);
    // Re-sign the payload hash over the truncated payload too (FxHash,
    // no secret), then the header hash.
    let base = u64::from_le_bytes(buf[tail..tail + 8].try_into().unwrap()) as usize;
    let mut ph = FxHasher::default();
    ph.write(&buf[base..]);
    let payload_sig = ph.finish();
    buf[tail + 16..tail + 24].copy_from_slice(&payload_sig.to_le_bytes());
    resign_v3(&mut buf);
    let result = std::panic::catch_unwind(|| read_snapshot(&buf[..]));
    match result {
        Ok(Err(e)) => println!("typed error as expected: {e}"),
        Ok(Ok(_)) => panic!("lying header loaded cleanly"),
        Err(_) => panic!("READER PANICKED on re-signed shrunk payload"),
    }
}
