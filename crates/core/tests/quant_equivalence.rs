//! Quantisation-equivalence guard on the paper's 16-bit CSA evaluation
//! subject.
//!
//! The i8 weight store (per-output-column scale, f32 accumulate) perturbs
//! every logit by up to ~half a quantisation step per weight. This guard
//! pins the end-to-end effect where it matters: a quantised reasoner must
//! agree with its own f32 twin on **>= 99.9% of per-node argmax
//! decisions** across all three tasks on the 2594-node 16-bit CSA
//! multiplier, while holding the weight store at roughly a quarter of the
//! f32 bytes. Run under `--release` in CI alongside the fused-kernel
//! guard.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;

#[test]
fn quantised_argmax_matches_f32_on_16bit_csa() {
    // Train a small-but-confident model (same recipe as the reasoner's
    // generalisation tests), then fork a quantised twin.
    let train_a = csa_multiplier(4);
    let train_b = csa_multiplier(6);
    let mut f32_reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Shallow,
        ..ReasonerConfig::default()
    });
    f32_reasoner.fit(
        &[&train_a.aig, &train_b.aig],
        &TrainConfig {
            epochs: 300,
            lr: 1e-2,
            task_weights: vec![0.8, 1.0, 1.0],
            log_every: 0,
        },
    );
    let mut quant = f32_reasoner.clone();
    quant.quantise();
    assert!(quant.is_quantised() && !f32_reasoner.is_quantised());

    let subject = csa_multiplier(16);
    let a = f32_reasoner.predict(&subject.aig);
    let b = quant.predict(&subject.aig);
    let n = a.num_nodes();
    assert_eq!(n, subject.aig.num_nodes());

    let mut agree = [0usize; 3];
    for i in 0..n {
        agree[0] += (a.root_leaf[i] == b.root_leaf[i]) as usize;
        agree[1] += (a.is_xor[i] == b.is_xor[i]) as usize;
        agree[2] += (a.is_maj[i] == b.is_maj[i]) as usize;
    }
    for (task, &ok) in ["root/leaf", "xor", "maj"].iter().zip(&agree) {
        let frac = ok as f64 / n as f64;
        eprintln!(
            "argmax agreement on {task}: {:.4}% ({ok}/{n})",
            frac * 100.0
        );
        assert!(
            frac >= 0.999,
            "{task}: quantised argmax agreement {frac} below 99.9% ({ok}/{n})"
        );
    }
}

/// The paper configs — real layer widths, not the tiny test model — must
/// shrink to roughly a quarter of their f32 resident weight bytes. The
/// weight payload itself is an exact 4x; per-column scales and the f32
/// biases cap the whole-store ratio slightly below that, and the larger
/// the model the closer it sits to 4x.
#[test]
fn quantised_store_is_about_four_times_smaller() {
    for (depth, floor) in [(ModelDepth::Shallow, 3.4), (ModelDepth::Deep, 3.8)] {
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth,
            ..ReasonerConfig::default()
        });
        let f32_bytes = reasoner.resident_weight_bytes();
        assert_eq!(f32_bytes, reasoner.num_params() * 4);
        reasoner.quantise();
        let q_bytes = reasoner.resident_weight_bytes();
        let ratio = f32_bytes as f64 / q_bytes as f64;
        eprintln!("{depth:?} resident weights: {f32_bytes} -> {q_bytes} bytes ({ratio:.2}x)");
        assert!(
            ratio >= floor,
            "{depth:?}: expected >= {floor}x compression, got {ratio:.2}x"
        );
    }
}
