//! Back-compatibility guard for the `.gsnap` snapshot formats.
//!
//! The v3 reader must keep serving **v1/v2** files — snapshots written
//! by earlier builds — bit-exactly. The legacy writer is kept alive
//! precisely so this guard can manufacture those files; the tests walk
//! the documented byte layouts from first principles (every field, the
//! per-write-call Fx checksum granularity) and assert neither the
//! legacy writer nor the reader has drifted. A third test pins the
//! **v3** mmap-ready layout the current writer emits: section table,
//! 64-byte alignment, split header/payload checksums. Run under
//! `--release` in CI.

use gamora::snapshot::{
    read_snapshot, write_snapshot, write_snapshot_legacy, SNAPSHOT_ALIGN, SNAPSHOT_MAGIC,
};
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::hasher::FxHasher;
use gamora_circuits::csa_multiplier;
use std::hash::Hasher;

fn trained_reasoner() -> GamoraReasoner {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 20,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// Walks a snapshot byte stream field by field, feeding the checksum
/// hasher with exactly one `write` per field — the granularity the v1/v2
/// writers use (the Fx checksum folds 8-byte chunks *per write call*, so
/// the field boundaries are part of those formats).
struct Walker<'a> {
    buf: &'a [u8],
    pos: usize,
    hasher: FxHasher,
}

impl<'a> Walker<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.hasher.write(s);
        self.pos += n;
        s
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }
}

/// Walks the documented v1 layout field by field: magic, version 1, the
/// 20-byte config block, `count` tensors of `{len u32, len * f32}`, and
/// a trailing Fx checksum over everything before it. Any drift in the
/// legacy writer (which would orphan pre-change snapshots the reader is
/// tested against) fails here.
#[test]
fn f32_snapshot_still_uses_the_exact_v1_layout() {
    let reasoner = trained_reasoner();
    let mut buf = Vec::new();
    write_snapshot_legacy(&reasoner, &mut buf).unwrap();

    let mut w = Walker {
        buf: &buf,
        pos: 0,
        hasher: FxHasher::default(),
    };
    assert_eq!(w.take(4), SNAPSHOT_MAGIC, "magic");
    assert_eq!(w.u32(), 1, "an unquantised legacy save must stay on v1");
    // Config block: depth tag u8 + layers u32 + hidden u32 +
    // feature_mode u8 + direction u8 + multi_task u8 + seed u64.
    let depth_tag = w.take(1)[0];
    assert_eq!(depth_tag, 2, "custom depth tag");
    assert_eq!(w.u32(), 2, "layers");
    assert_eq!(w.u32(), 8, "hidden");
    let _feature_mode = w.take(1);
    let _direction = w.take(1);
    let _multi_task = w.take(1);
    let _seed = w.take(8);

    let count = w.u32() as usize;
    let mut scalars = 0usize;
    for _ in 0..count {
        let len = w.u32() as usize;
        scalars += len;
        for _ in 0..len {
            w.take(4); // one f32 LE scalar per write — no section tags in v1
        }
    }
    assert_eq!(
        scalars,
        reasoner.num_params(),
        "v1 stores every parameter scalar exactly once"
    );
    assert_eq!(w.pos, buf.len() - 8, "checksum is the only trailer");

    // The trailing u64 is the Fx hash of every preceding field.
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    assert_eq!(stored, w.hasher.finish(), "checksum definition unchanged");
}

/// A v1 snapshot loads under the current reader and serves
/// bit-identically: same config, same scalar count, and bit-equal
/// predictions on a fresh workload — the "old snapshot keeps serving"
/// guarantee.
#[test]
fn v1_snapshot_loads_and_serves_bit_identically() {
    let reasoner = trained_reasoner();
    let mut buf = Vec::new();
    write_snapshot_legacy(&reasoner, &mut buf).unwrap();
    assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 1);

    let back = read_snapshot(&buf[..]).unwrap();
    assert_eq!(back.config(), reasoner.config());
    assert_eq!(back.num_params(), reasoner.num_params());
    assert!(!back.is_quantised(), "v1 files carry no quantised store");

    let subject = csa_multiplier(5);
    assert_eq!(
        reasoner.predict(&subject.aig),
        back.predict(&subject.aig),
        "a v1 snapshot must keep serving bit-exactly under the current reader"
    );

    // And a quantised legacy save/load of the same model coexists: the
    // v2 format round-trips independently.
    let mut quant = back.clone();
    quant.quantise();
    let mut v2 = Vec::new();
    write_snapshot_legacy(&quant, &mut v2).unwrap();
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
    let quant_back = read_snapshot(&v2[..]).unwrap();
    assert_eq!(
        quant.predict(&subject.aig),
        quant_back.predict(&subject.aig),
        "v2 round trip serves bit-exactly too"
    );
}

/// Walks the documented **v3** layout from first principles: fixed
/// header, section table, 64-byte-aligned payload, and the two split
/// checksums — each defined as ONE `FxHasher::write` over a contiguous
/// range (unlike v1/v2's per-field folding). Pins the mmap contract:
/// every offset the reader will borrow from is aligned and in-bounds.
#[test]
fn v3_snapshot_uses_the_exact_documented_layout() {
    let reasoner = trained_reasoner();
    let mut buf = Vec::new();
    write_snapshot(&reasoner, &mut buf).unwrap();

    let u32_at = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    let u64_at = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());

    assert_eq!(&buf[0..4], SNAPSHOT_MAGIC, "magic");
    assert_eq!(u32_at(4), 3, "current writer emits v3");
    // [8..28] is the same 20-byte config block as v1/v2.
    assert_eq!(buf[8], 2, "custom depth tag");
    assert_eq!(u32_at(9), 2, "layers");
    assert_eq!(u32_at(13), 8, "hidden");

    const ENTRY: usize = 1 + 4 + 4 + 8 + 8; // tag, rows, cols, offset, len
    let count = u32_at(28) as usize;
    let table = 32;
    let tail = table + ENTRY * count;
    let payload_base = u64_at(tail) as usize;
    let payload_len = u64_at(tail + 8) as usize;
    let payload_hash = u64_at(tail + 16);
    let header_hash = u64_at(tail + 24);
    let header_len = tail + 32;

    assert_eq!(
        payload_base,
        header_len.div_ceil(SNAPSHOT_ALIGN) * SNAPSHOT_ALIGN,
        "payload starts at the first aligned offset past the header"
    );
    assert_eq!(payload_base + payload_len, buf.len(), "payload ends at EOF");
    assert!(
        buf[header_len..payload_base].iter().all(|&b| b == 0),
        "header/payload padding is zeroed"
    );

    // Section table: an unquantised model stores {weights, bias} per
    // linear, all tag 0 (f32), at ascending 64-aligned offsets.
    assert_eq!(count % 2, 0, "two sections per f32 linear");
    let mut scalars = 0usize;
    let mut cursor = 0usize;
    for i in 0..count {
        let at = table + ENTRY * i;
        let (tag, rows, cols) = (buf[at], u32_at(at + 1) as usize, u32_at(at + 5) as usize);
        let (offset, len) = (u64_at(at + 9) as usize, u64_at(at + 17) as usize);
        assert_eq!(tag, 0, "f32 sections only in an unquantised snapshot");
        assert_eq!(len, rows * cols * 4, "section length matches its shape");
        assert_eq!(offset % SNAPSHOT_ALIGN, 0, "section offset is aligned");
        assert_eq!(
            offset,
            cursor.div_ceil(SNAPSHOT_ALIGN) * SNAPSHOT_ALIGN,
            "sections are densely packed at canonical offsets"
        );
        assert!(offset + len <= payload_len, "section stays in the payload");
        cursor = offset + len;
        scalars += rows * cols;
    }
    assert_eq!(cursor, payload_len, "no trailing payload bytes");
    assert_eq!(
        scalars,
        reasoner.num_params(),
        "v3 stores every parameter scalar exactly once"
    );

    // Both checksums are a SINGLE hasher write over a contiguous range.
    let mut h = FxHasher::default();
    h.write(&buf[payload_base..]);
    assert_eq!(h.finish(), payload_hash, "payload checksum definition");
    let mut h = FxHasher::default();
    h.write(&buf[..header_len - 8]);
    assert_eq!(h.finish(), header_hash, "header checksum definition");
}
