//! Back-compatibility guard for the `.gsnap` snapshot formats.
//!
//! The v2 reader must keep serving **v1** files — snapshots written by
//! pre-quantisation builds — bit-exactly. An unquantised reasoner still
//! *writes* the v1 layout, so the guard works by independently
//! re-deriving the documented v1 byte layout from first principles (walk
//! every field, recompute the trailing Fx checksum) and asserting the
//! current writer has not drifted from it; a reader that loads today's
//! f32 output therefore loads any pre-change file. A second test pins
//! the serving side: load -> predictions bit-identical to the saved
//! instance. Run under `--release` in CI.

use gamora::snapshot::{read_snapshot, write_snapshot, SNAPSHOT_MAGIC};
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::hasher::FxHasher;
use gamora_circuits::csa_multiplier;
use std::hash::Hasher;

fn trained_reasoner() -> GamoraReasoner {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 20,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// Walks a snapshot byte stream field by field, feeding the checksum
/// hasher with exactly one `write` per field — the granularity the v1
/// writer uses (the Fx checksum folds 8-byte chunks *per write call*, so
/// the field boundaries are part of the format).
struct Walker<'a> {
    buf: &'a [u8],
    pos: usize,
    hasher: FxHasher,
}

impl<'a> Walker<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.hasher.write(s);
        self.pos += n;
        s
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }
}

/// Walks the documented v1 layout field by field: magic, version 1, the
/// 20-byte config block, `count` tensors of `{len u32, len * f32}`, and
/// a trailing Fx checksum over everything before it. Any drift in the
/// writer (which would orphan pre-change snapshots) fails here.
#[test]
fn f32_snapshot_still_uses_the_exact_v1_layout() {
    let reasoner = trained_reasoner();
    let mut buf = Vec::new();
    write_snapshot(&reasoner, &mut buf).unwrap();

    let mut w = Walker {
        buf: &buf,
        pos: 0,
        hasher: FxHasher::default(),
    };
    assert_eq!(w.take(4), SNAPSHOT_MAGIC, "magic");
    assert_eq!(w.u32(), 1, "an unquantised reasoner must stay on v1");
    // Config block: depth tag u8 + layers u32 + hidden u32 +
    // feature_mode u8 + direction u8 + multi_task u8 + seed u64.
    let depth_tag = w.take(1)[0];
    assert_eq!(depth_tag, 2, "custom depth tag");
    assert_eq!(w.u32(), 2, "layers");
    assert_eq!(w.u32(), 8, "hidden");
    let _feature_mode = w.take(1);
    let _direction = w.take(1);
    let _multi_task = w.take(1);
    let _seed = w.take(8);

    let count = w.u32() as usize;
    let mut scalars = 0usize;
    for _ in 0..count {
        let len = w.u32() as usize;
        scalars += len;
        for _ in 0..len {
            w.take(4); // one f32 LE scalar per write — no section tags in v1
        }
    }
    assert_eq!(
        scalars,
        reasoner.num_params(),
        "v1 stores every parameter scalar exactly once"
    );
    assert_eq!(w.pos, buf.len() - 8, "checksum is the only trailer");

    // The trailing u64 is the Fx hash of every preceding field.
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    assert_eq!(stored, w.hasher.finish(), "checksum definition unchanged");
}

/// A v1 snapshot loads under the v2 reader and serves bit-identically:
/// same config, same scalar count, and bit-equal predictions on a fresh
/// workload — the "old snapshot keeps serving" guarantee.
#[test]
fn v1_snapshot_loads_and_serves_bit_identically() {
    let reasoner = trained_reasoner();
    let mut buf = Vec::new();
    write_snapshot(&reasoner, &mut buf).unwrap();
    assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 1);

    let back = read_snapshot(&buf[..]).unwrap();
    assert_eq!(back.config(), reasoner.config());
    assert_eq!(back.num_params(), reasoner.num_params());
    assert!(!back.is_quantised(), "v1 files carry no quantised store");

    let subject = csa_multiplier(5);
    assert_eq!(
        reasoner.predict(&subject.aig),
        back.predict(&subject.aig),
        "a v1 snapshot must keep serving bit-exactly under the v2 reader"
    );

    // And a quantised save/load of the same model coexists: the two
    // formats round-trip independently.
    let mut quant = back.clone();
    quant.quantise();
    let mut v2 = Vec::new();
    write_snapshot(&quant, &mut v2).unwrap();
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
    let quant_back = read_snapshot(&v2[..]).unwrap();
    assert_eq!(
        quant.predict(&subject.aig),
        quant_back.predict(&subject.aig),
        "v2 round trip serves bit-exactly too"
    );
}
