//! Fuzz hardening for the `.gsnap` snapshot reader (vendored proptest
//! shim): a corrupted or truncated snapshot must come back as a typed
//! [`SnapshotError`] — never a panic, and never an attempted allocation
//! sized by attacker-controlled header fields (length fields are
//! validated against the model skeleton *before* any buffer is sized).
//!
//! Why every single-byte corruption must fail: in v1/v2 every field is
//! covered by the trailing Fx checksum, whose per-field fold is
//! bijective in each 8-byte chunk — equal-shaped streams that differ
//! anywhere hash differently. In v3 the header hash covers the header,
//! the payload hash covers the payload, and the inter-region padding is
//! required to be zero, so the three cases tile the whole file. Beyond
//! blind flips, v3 headers are also fuzzed *re-signed* (valid checksum,
//! lying fields): the reader recomputes every section's canonical
//! tag/shape/offset/length from the model skeleton, so a signature
//! alone never buys a deviant layout. Run under `--release` in CI
//! alongside the snapshot back-compat guard.

use gamora::snapshot::{read_snapshot, write_snapshot, write_snapshot_legacy};
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::hasher::FxHasher;
use proptest::prelude::*;
use std::hash::Hasher;
use std::sync::OnceLock;

fn trained_reasoner() -> GamoraReasoner {
    let m = gamora_circuits::csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 10,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// A valid v1 (f32, legacy writer) snapshot byte stream, built once.
fn v1_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut buf = Vec::new();
        write_snapshot_legacy(&trained_reasoner(), &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 1);
        buf
    })
}

/// A valid v2 (section-tagged, quantised, legacy writer) byte stream.
fn v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot_legacy(&reasoner, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 2);
        buf
    })
}

/// A valid v3 (mmap-ready, current writer) byte stream.
fn v3_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 3);
        buf
    })
}

/// Flips one byte of `base` and asserts the reader returns a typed error
/// (a no-op write — same byte value — keeps the stream valid and is
/// skipped).
fn assert_mutation_rejected(base: &[u8], pos: usize, value: u8, what: &str) {
    if base[pos] == value {
        return;
    }
    let mut bytes = base.to_vec();
    bytes[pos] = value;
    let result = read_snapshot(&bytes[..]);
    assert!(
        result.is_err(),
        "{what}: byte {pos} set to {value:#04x} must be rejected, got a loaded model"
    );
}

/// Recomputes and installs the v3 header hash so tampered header fields
/// carry a *valid* signature — the canonical-layout checks, not the
/// checksum, must then be what rejects the stream.
fn resign_v3(buf: &mut [u8]) {
    const ENTRY: usize = 1 + 4 + 4 + 8 + 8;
    let count = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
    let hash_pos = 32 + ENTRY * count + 24;
    let mut h = FxHasher::default();
    h.write(&buf[..hash_pos]);
    let sig = h.finish();
    buf[hash_pos..hash_pos + 8].copy_from_slice(&sig.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any single corrupted byte in a v1 stream yields `Err`, not a panic.
    #[test]
    fn v1_single_byte_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        let base = v1_bytes();
        assert_mutation_rejected(base, pos as usize % base.len(), value, "v1");
    }

    /// Any single corrupted byte in a v2 stream yields `Err`, not a panic.
    #[test]
    fn v2_single_byte_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        let base = v2_bytes();
        assert_mutation_rejected(base, pos as usize % base.len(), value, "v2");
    }

    /// Any single corrupted byte in a v3 stream yields `Err`, not a
    /// panic — header bytes trip the header hash, padding bytes trip the
    /// zero check, payload bytes trip the payload hash.
    #[test]
    fn v3_single_byte_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        let base = v3_bytes();
        assert_mutation_rejected(base, pos as usize % base.len(), value, "v3");
    }

    /// A corrupted-then-RE-SIGNED v3 section table is still rejected:
    /// the header checksum verifies, but the canonical section walk
    /// (tag/rows/cols/offset/len recomputed from the skeleton) does not
    /// accept any deviation, so a lying header can never size an
    /// allocation or a borrow.
    #[test]
    fn v3_resigned_table_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        const ENTRY: usize = 1 + 4 + 4 + 8 + 8;
        let base = v3_bytes();
        let count = u32::from_le_bytes(base[28..32].try_into().unwrap()) as usize;
        // Mutate inside the section table only (count stays intact so
        // the re-sign helper and the reader agree on the header extent).
        let pos = 32 + pos as usize % (ENTRY * count);
        if base[pos] == value {
            return;
        }
        let mut bytes = base.to_vec();
        bytes[pos] = value;
        resign_v3(&mut bytes);
        prop_assert!(
            read_snapshot(&bytes[..]).is_err(),
            "re-signed table byte {pos} set to {value:#04x} must still be rejected"
        );
    }

    /// Any strict prefix of a valid stream is rejected as truncated.
    #[test]
    fn truncated_snapshots_are_rejected(cut in any::<u64>(), version in 0u8..3) {
        let base = match version {
            0 => v1_bytes(),
            1 => v2_bytes(),
            _ => v3_bytes(),
        };
        let cut = cut as usize % base.len(); // strictly shorter than the full stream
        let result = read_snapshot(&base[..cut]);
        prop_assert!(result.is_err(), "truncation at {cut}/{} must be rejected", base.len());
    }
}

/// Header fields that size reads are validated against the model
/// skeleton before any allocation: a 4-billion entry tensor count or
/// scalar length comes back `Corrupt` immediately instead of attempting
/// a multi-gigabyte `Vec`. The v3 section count gets the same cap.
#[test]
fn huge_header_lengths_fail_before_allocating() {
    let base = v1_bytes();
    // Offsets in the v1 layout: magic(4) + version(4) + config(20), then
    // the tensor count u32 at 28, then tensor 0's scalar-count u32 at 32.
    for (offset, what) in [(28usize, "tensor count"), (32usize, "tensor 0 length")] {
        let mut bytes = base.to_vec();
        bytes[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_snapshot(&bytes[..]).expect_err(what);
        let msg = err.to_string();
        assert!(
            msg.contains("corrupt"),
            "{what}: expected a Corrupt error, got: {msg}"
        );
    }
    // v3: the section count at 28 is capped by the file size before the
    // table is allocated or walked.
    let mut bytes = v3_bytes().to_vec();
    bytes[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = read_snapshot(&bytes[..]).expect_err("v3 section count");
    assert!(err.to_string().contains("corrupt"), "{err}");
}

/// Cross-version confusion: relabelling a stream as a different version
/// must fail the section parse, the shape checks, or a checksum — never
/// panic, never load.
#[test]
fn version_relabel_is_rejected() {
    for (base, version) in [
        (v1_bytes(), 2u32),
        (v2_bytes(), 1u32),
        (v1_bytes(), 3u32),
        (v3_bytes(), 1u32),
        (v3_bytes(), 2u32),
    ] {
        let mut bytes = base.to_vec();
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        assert!(
            read_snapshot(&bytes[..]).is_err(),
            "a stream relabelled to v{version} must be rejected"
        );
    }
}
