//! Fuzz hardening for the `.gsnap` snapshot reader (vendored proptest
//! shim): a corrupted or truncated snapshot must come back as a typed
//! [`SnapshotError`] — never a panic, and never an attempted allocation
//! sized by attacker-controlled header fields (length fields are
//! validated against the model skeleton *before* any buffer is sized).
//!
//! Why every single-byte corruption must fail: fields that survive
//! semantic validation (e.g. the stored seed) are still covered by the
//! trailing Fx checksum, whose per-field fold is bijective in each
//! 8-byte chunk — equal-shaped streams that differ anywhere hash
//! differently, so the checksum mismatch is the backstop. Run under
//! `--release` in CI alongside the snapshot back-compat guard.

use gamora::snapshot::{read_snapshot, write_snapshot};
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn trained_reasoner() -> GamoraReasoner {
    let m = gamora_circuits::csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 10,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// A valid v1 (f32) snapshot byte stream, built once.
fn v1_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut buf = Vec::new();
        write_snapshot(&trained_reasoner(), &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 1);
        buf
    })
}

/// A valid v2 (section-tagged, quantised) snapshot byte stream.
fn v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut reasoner = trained_reasoner();
        reasoner.quantise();
        let mut buf = Vec::new();
        write_snapshot(&reasoner, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf[4..8].try_into().unwrap()), 2);
        buf
    })
}

/// Flips one byte of `base` and asserts the reader returns a typed error
/// (a no-op write — same byte value — keeps the stream valid and is
/// skipped).
fn assert_mutation_rejected(base: &[u8], pos: usize, value: u8, what: &str) {
    if base[pos] == value {
        return;
    }
    let mut bytes = base.to_vec();
    bytes[pos] = value;
    let result = read_snapshot(&bytes[..]);
    assert!(
        result.is_err(),
        "{what}: byte {pos} set to {value:#04x} must be rejected, got a loaded model"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any single corrupted byte in a v1 stream yields `Err`, not a panic.
    #[test]
    fn v1_single_byte_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        let base = v1_bytes();
        assert_mutation_rejected(base, pos as usize % base.len(), value, "v1");
    }

    /// Any single corrupted byte in a v2 stream yields `Err`, not a panic.
    #[test]
    fn v2_single_byte_corruption_is_rejected(pos in any::<u64>(), value in any::<u8>()) {
        let base = v2_bytes();
        assert_mutation_rejected(base, pos as usize % base.len(), value, "v2");
    }

    /// Any strict prefix of a valid stream is rejected as truncated.
    #[test]
    fn truncated_snapshots_are_rejected(cut in any::<u64>(), v2 in any::<bool>()) {
        let base = if v2 { v2_bytes() } else { v1_bytes() };
        let cut = cut as usize % base.len(); // strictly shorter than the full stream
        let result = read_snapshot(&base[..cut]);
        prop_assert!(result.is_err(), "truncation at {cut}/{} must be rejected", base.len());
    }
}

/// Header fields that size reads are validated against the model
/// skeleton before any allocation: a 4-billion entry tensor count or
/// scalar length comes back `Corrupt` immediately instead of attempting
/// a multi-gigabyte `Vec`.
#[test]
fn huge_header_lengths_fail_before_allocating() {
    let base = v1_bytes();
    // Offsets in the v1 layout: magic(4) + version(4) + config(20), then
    // the tensor count u32 at 28, then tensor 0's scalar-count u32 at 32.
    for (offset, what) in [(28usize, "tensor count"), (32usize, "tensor 0 length")] {
        let mut bytes = base.to_vec();
        bytes[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_snapshot(&bytes[..]).expect_err(what);
        let msg = err.to_string();
        assert!(
            msg.contains("corrupt"),
            "{what}: expected a Corrupt error, got: {msg}"
        );
    }
}

/// Cross-version confusion: relabelling a v1 stream as v2 (and vice
/// versa) must fail the section parse or the shape checks, never panic.
#[test]
fn version_relabel_is_rejected() {
    for (base, version) in [(v1_bytes(), 2u32), (v2_bytes(), 1u32)] {
        let mut bytes = base.to_vec();
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        assert!(
            read_snapshot(&bytes[..]).is_err(),
            "a version-relabelled stream must be rejected"
        );
    }
}
