//! Cut-based detection of adder-relevant functions (XOR2/3, MAJ3, AND2).
//!
//! For every AND node we enumerate 3-feasible cuts, shrink each cut function
//! to its true support and classify it against the NPN-widened XOR/MAJ/AND
//! classes — the functional-propagation half of conventional symbolic
//! reasoning (the other half, structural shape hashing, lives in
//! [`crate::shape`]).

use gamora_aig::cut::{enumerate_cuts, CutParams};
use gamora_aig::hasher::FxHashMap;
use gamora_aig::tt::{self, AdderFunc};
use gamora_aig::{Aig, NodeId};

/// One classified cut of a node.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The node whose function was classified.
    pub node: NodeId,
    /// Sorted cut leaves (first `len` entries used).
    pub leaves: [u32; 3],
    /// Number of leaves after support shrinking (2 or 3).
    pub len: u8,
    /// The function class of the node over the leaves.
    pub class: AdderFunc,
    /// The shrunken truth table over the leaves.
    pub tt: u64,
}

impl Candidate {
    /// The active leaf slice.
    pub fn leaf_slice(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }
}

/// All adder-relevant candidates of a network, indexed for pairing.
#[derive(Clone, Debug, Default)]
pub struct Candidates {
    /// Every classified (node, cut) pair.
    pub all: Vec<Candidate>,
    /// Per-node flag: has an XOR2- or XOR3-class cut.
    pub is_xor: Vec<bool>,
    /// Per-node flag: has a (full-support) MAJ3-class cut.
    pub is_maj3: Vec<bool>,
    /// Index of XOR3 candidates by leaf triple.
    pub xor3_by_leaves: FxHashMap<[u32; 3], Vec<u32>>,
    /// Index of MAJ3 candidates by leaf triple.
    pub maj3_by_leaves: FxHashMap<[u32; 3], Vec<u32>>,
    /// Index of XOR2 candidates by leaf pair.
    pub xor2_by_leaves: FxHashMap<[u32; 2], Vec<u32>>,
    /// Index of HA-carry (monotone AND/OR class) candidates by leaf pair.
    pub and2_by_leaves: FxHashMap<[u32; 2], Vec<u32>>,
}

/// Detects and indexes all adder-relevant cut functions.
///
/// Functions are classified on their *true* support: a 3-feasible cut whose
/// function only depends on two leaves is classified as a 2-input function
/// over those leaves. Duplicate (node, leaves, class) entries are merged.
pub fn detect(aig: &Aig) -> Candidates {
    let cuts = enumerate_cuts(aig, &CutParams::for_adder_extraction());
    let mut cands = Candidates {
        is_xor: vec![false; aig.num_nodes()],
        is_maj3: vec![false; aig.num_nodes()],
        ..Candidates::default()
    };
    let mut seen: Vec<(u64, [u32; 3], u8)> = Vec::new();
    for n in aig.and_ids() {
        seen.clear();
        for cut in cuts.of(n) {
            if cut.is_trivial_of(n) || cut.is_empty() {
                continue;
            }
            let k = cut.len();
            let (stt, sk, kept) = tt::shrink(cut.tt, k);
            if sk < 2 {
                continue; // constants and wires are not adder functions
            }
            let mut leaves = [0u32; 3];
            for (j, &orig) in kept.iter().enumerate() {
                leaves[j] = cut.leaves()[orig];
            }
            let Some(class) = tt::classify_adder_func(stt, sk) else {
                continue;
            };
            let key = (stt, leaves, sk as u8);
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let cand = Candidate {
                node: n,
                leaves,
                len: sk as u8,
                class,
                tt: stt,
            };
            match class {
                AdderFunc::Xor2 => {
                    cands.is_xor[n.index()] = true;
                    cands
                        .xor2_by_leaves
                        .entry([leaves[0], leaves[1]])
                        .or_default()
                        .push(n.as_u32());
                }
                AdderFunc::Xor3 => {
                    cands.is_xor[n.index()] = true;
                    cands
                        .xor3_by_leaves
                        .entry(leaves)
                        .or_default()
                        .push(n.as_u32());
                }
                AdderFunc::Maj3 => {
                    cands.is_maj3[n.index()] = true;
                    cands
                        .maj3_by_leaves
                        .entry(leaves)
                        .or_default()
                        .push(n.as_u32());
                }
                AdderFunc::And2 => {
                    // Any product of two literals can be a half-adder carry
                    // (mixed polarities arise whenever an adder consumes a
                    // complemented literal, which is routine in AIGs).
                    // Structural covering during extraction prevents the
                    // products *inside* XOR cones from pairing spuriously.
                    cands
                        .and2_by_leaves
                        .entry([leaves[0], leaves[1]])
                        .or_default()
                        .push(n.as_u32());
                }
            }
            cands.all.push(cand);
        }
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_full_adder_functions() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        assert!(cands.is_xor[s.var().index()], "sum is XOR3");
        assert!(cands.is_maj3[c.var().index()], "carry is MAJ3");
        let key = [
            ins[0].var().as_u32(),
            ins[1].var().as_u32(),
            ins[2].var().as_u32(),
        ];
        assert!(cands.xor3_by_leaves[&key].contains(&s.var().as_u32()));
        assert!(cands.maj3_by_leaves[&key].contains(&c.var().as_u32()));
    }

    #[test]
    fn interior_xor2_detected_with_leg_products() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let x = aig.xor(a, b);
        aig.add_output(x);
        let cands = detect(&aig);
        assert!(cands.is_xor[x.var().index()]);
        // The two internal legs compute a&!b and !a&b: indexed as AND2
        // candidates (extraction's cover analysis keeps them from pairing
        // with their own root).
        let key = [a.var().as_u32(), b.var().as_u32()];
        assert_eq!(cands.and2_by_leaves[&key].len(), 2);
    }

    #[test]
    fn detects_ha_pair_with_constant_third_input() {
        // Booth correction slices fold FA(a, b, TRUE) into (XNOR, OR).
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let (s, c) = aig.full_adder(a, b, gamora_aig::Lit::TRUE);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        assert!(cands.is_xor[s.var().index()], "xnor is XOR class");
        let key = [a.var().as_u32(), b.var().as_u32()];
        assert!(cands.and2_by_leaves.contains_key(&key), "or is carry class");
    }

    #[test]
    fn negated_input_fa_still_detected() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(!ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        assert!(cands.is_xor[s.var().index()]);
        assert!(
            cands.is_maj3[c.var().index()],
            "negated-input MAJ is NPN MAJ"
        );
    }

    #[test]
    fn plain_and_is_not_xor_or_maj() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let g = aig.and(a, b);
        aig.add_output(g);
        let cands = detect(&aig);
        assert!(!cands.is_xor[g.var().index()]);
        assert!(!cands.is_maj3[g.var().index()]);
        // but it is an HA-carry candidate
        let key = [a.var().as_u32(), b.var().as_u32()];
        assert!(cands.and2_by_leaves.contains_key(&key));
    }
}
