//! Pairing of detected XOR/MAJ candidates into full/half adders — the
//! reproduction of ABC's `&atree` adder-tree extraction (Yu et al.,
//! TCAD'17), which is both the paper's ground-truth provider and its exact
//! baseline.

use crate::detect::Candidates;
use gamora_aig::hasher::FxHashSet;
use gamora_aig::{Aig, NodeId};

/// Whether an extracted adder is a full (3-input) or half (2-input) slice.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExtractedKind {
    /// XOR3 + MAJ3 pair.
    Full,
    /// XOR2 + AND2/OR2 pair.
    Half,
}

/// An adder bitslice recovered from the netlist.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ExtractedAdder {
    /// Full or half adder.
    pub kind: ExtractedKind,
    /// The sum root (XOR-class node).
    pub sum: NodeId,
    /// The carry root (MAJ/AND-class node).
    pub carry: NodeId,
    /// Sorted input leaves; `leaves[2]` is `u32::MAX` for half adders.
    pub leaves: [u32; 3],
}

impl ExtractedAdder {
    /// The active leaf slice (2 entries for half adders, 3 for full).
    pub fn leaf_slice(&self) -> &[u32] {
        match self.kind {
            ExtractedKind::Full => &self.leaves,
            ExtractedKind::Half => &self.leaves[..2],
        }
    }
}

/// Pairs XOR and MAJ/AND candidates with identical leaf sets into adders.
///
/// The pass structure mirrors ABC's extraction:
///
/// 1. **Full adders first**: every XOR3-class root is matched to a
///    MAJ3-class node over the same three leaves.
/// 2. The *interior* nodes of accepted full adders (strictly between roots
///    and leaves) are marked covered, so the XOR2/AND2 sub-functions that
///    necessarily exist inside every FA cannot spawn spurious half adders.
/// 3. **Half adders second**: remaining XOR2 roots are matched to unused,
///    uncovered AND2-class nodes over the same two leaves.
///
/// When several carry candidates share a leaf set (an XOR's internal legs
/// are themselves 2-literal products, and structural hashing can even merge
/// the true carry *with* a leg), the partner is chosen by structural role:
/// prefer candidates that are **maximal** (not interior to another
/// candidate's cone) and that **escape** the sum cone (have a fanout used
/// outside the pair) — that is the node whose value the surrounding logic
/// actually consumes as a carry. The result is deterministic.
pub fn extract_adders(aig: &Aig, cands: &Candidates) -> Vec<ExtractedAdder> {
    let n = aig.num_nodes();
    let mut used = vec![false; n];
    let mut covered = vec![false; n];
    let mut adders = Vec::new();
    let (fan_off, fan_tgt) = aig.fanouts();
    let mut drives_output = vec![false; n];
    for o in aig.outputs() {
        drives_output[o.var().index()] = true;
    }

    // --- Full-adder pass ---
    let mut fa_keys: Vec<&[u32; 3]> = cands.xor3_by_leaves.keys().collect();
    fa_keys.sort();
    for key in fa_keys {
        let Some(majs) = cands.maj3_by_leaves.get(key) else {
            continue;
        };
        let mut xors = cands.xor3_by_leaves[key].clone();
        xors.sort_unstable();
        let mut majs = majs.clone();
        majs.sort_unstable();
        for &x in &xors {
            if used[x as usize] {
                continue;
            }
            let eligible: Vec<u32> = majs
                .iter()
                .copied()
                .filter(|&m| m != x && !used[m as usize])
                .collect();
            let Some(m) = choose_partner(
                aig,
                NodeId::new(x),
                key,
                &eligible,
                &fan_off,
                &fan_tgt,
                &drives_output,
            ) else {
                continue;
            };
            used[x as usize] = true;
            used[m as usize] = true;
            adders.push(ExtractedAdder {
                kind: ExtractedKind::Full,
                sum: NodeId::new(x),
                carry: NodeId::new(m),
                leaves: *key,
            });
            mark_covered(aig, NodeId::new(x), key, &mut covered);
            mark_covered(aig, NodeId::new(m), key, &mut covered);
        }
    }

    // --- Half-adder pass ---
    let mut ha_keys: Vec<&[u32; 2]> = cands.xor2_by_leaves.keys().collect();
    ha_keys.sort();
    for key in ha_keys {
        let Some(ands) = cands.and2_by_leaves.get(key) else {
            continue;
        };
        let mut xors = cands.xor2_by_leaves[key].clone();
        xors.sort_unstable();
        let mut ands = ands.clone();
        ands.sort_unstable();
        for &x in &xors {
            if used[x as usize] || covered[x as usize] {
                continue;
            }
            let eligible: Vec<u32> = ands
                .iter()
                .copied()
                .filter(|&c| c != x && !used[c as usize] && !covered[c as usize])
                .collect();
            let Some(c) = choose_partner(
                aig,
                NodeId::new(x),
                key,
                &eligible,
                &fan_off,
                &fan_tgt,
                &drives_output,
            ) else {
                continue;
            };
            used[x as usize] = true;
            used[c as usize] = true;
            adders.push(ExtractedAdder {
                kind: ExtractedKind::Half,
                sum: NodeId::new(x),
                carry: NodeId::new(c),
                leaves: [key[0], key[1], u32::MAX],
            });
        }
    }

    adders.sort_by_key(|a| (a.sum, a.carry));
    adders
}

/// Picks the carry partner for `sum` among `eligible` candidates.
///
/// Ranking: (1) not interior to any other eligible candidate's cone
/// (outermost), (2) escaping — some fanout lies outside the sum cone and
/// outside every candidate cone, i.e. the surrounding logic consumes it,
/// (3) smallest node id for determinism.
fn choose_partner(
    aig: &Aig,
    sum: NodeId,
    leaves: &[u32],
    eligible: &[u32],
    fan_off: &[u32],
    fan_tgt: &[NodeId],
    drives_output: &[bool],
) -> Option<u32> {
    match eligible {
        [] => None,
        [only] => Some(*only),
        _ => {
            let sum_cone = interior_of(aig, sum, leaves);
            let cones: Vec<FxHashSet<u32>> = eligible
                .iter()
                .map(|&c| interior_of(aig, NodeId::new(c), leaves))
                .collect();
            let mut inside_pair: FxHashSet<u32> = sum_cone.iter().copied().collect();
            inside_pair.insert(sum.as_u32());
            for &c in eligible {
                inside_pair.insert(c);
            }
            for cone in &cones {
                inside_pair.extend(cone.iter().copied());
            }
            let mut best: Option<(u32, u32)> = None; // (score, id) — lower wins
            for (i, &c) in eligible.iter().enumerate() {
                let maximal = !cones
                    .iter()
                    .enumerate()
                    .any(|(j, cone)| j != i && cone.contains(&c));
                let escapes = drives_output[c as usize]
                    || fanouts_of(c, fan_off, fan_tgt)
                        .iter()
                        .any(|t| !inside_pair.contains(&t.as_u32()));
                let score = match (maximal, escapes) {
                    (true, true) => 0,
                    (true, false) => 1,
                    (false, true) => 2,
                    (false, false) => 3,
                };
                if best.is_none_or(|(bs, bid)| (score, c) < (bs, bid)) {
                    best = Some((score, c));
                }
            }
            best.map(|(_, id)| id)
        }
    }
}

fn fanouts_of<'a>(node: u32, fan_off: &[u32], fan_tgt: &'a [NodeId]) -> &'a [NodeId] {
    &fan_tgt[fan_off[node as usize] as usize..fan_off[node as usize + 1] as usize]
}

/// Marks the nodes strictly between `root` and `leaves` as covered.
fn mark_covered(aig: &Aig, root: NodeId, leaves: &[u32; 3], covered: &mut [bool]) {
    for n in interior_of(aig, root, leaves) {
        covered[n as usize] = true;
    }
}

/// Collects the nodes strictly between `root` and `leaves` (root and leaves
/// themselves excluded).
fn interior_of(aig: &Aig, root: NodeId, leaves: &[u32]) -> FxHashSet<u32> {
    let leaf_set: FxHashSet<u32> = leaves.iter().copied().collect();
    let mut interior = FxHashSet::default();
    let mut stack = vec![root];
    let mut seen = FxHashSet::default();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if n != root && !leaf_set.contains(&n.as_u32()) {
            interior.insert(n.as_u32());
        }
        if leaf_set.contains(&n.as_u32()) || !aig.is_and(n) {
            continue;
        }
        let (f0, f1) = aig.fanins(n);
        stack.push(f0.var());
        stack.push(f1.var());
    }
    interior
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect;

    #[test]
    fn extracts_single_full_adder() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(adders.len(), 1, "{adders:?}");
        let a = adders[0];
        assert_eq!(a.kind, ExtractedKind::Full);
        assert_eq!(a.sum, s.var());
        assert_eq!(a.carry, c.var());
    }

    #[test]
    fn extracts_single_half_adder() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let (s, c) = aig.half_adder(a, b);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(adders.len(), 1, "{adders:?}");
        assert_eq!(adders[0].kind, ExtractedKind::Half);
        assert_eq!(adders[0].sum, s.var());
        assert_eq!(adders[0].carry, c.var());
    }

    #[test]
    fn fa_interior_does_not_spawn_half_adders() {
        // A lone full adder contains an (XOR2, AND2) pair over (a, b)
        // inside its cones; the covered mask must suppress it.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(
            adders
                .iter()
                .filter(|a| a.kind == ExtractedKind::Half)
                .count(),
            0
        );
    }

    #[test]
    fn shared_xor_serves_one_adder_only() {
        // Two MAJ gates over the same inputs but only one XOR3: only one FA.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        // A second, structurally distinct MAJ over the same inputs.
        let t0 = aig.and(ins[0], ins[1]);
        let t1 = aig.and(ins[0], ins[2]);
        let t2 = aig.and(ins[1], ins[2]);
        let o1 = aig.or(t0, t1);
        let c2 = aig.or(o1, t2);
        aig.add_output(s);
        aig.add_output(c);
        aig.add_output(c2);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(
            adders
                .iter()
                .filter(|a| a.kind == ExtractedKind::Full)
                .count(),
            1
        );
    }

    #[test]
    fn no_adders_in_random_and_tree() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(8);
        let root = aig.and_multi(&ins);
        aig.add_output(root);
        let cands = detect(&aig);
        assert!(extract_adders(&aig, &cands).is_empty());
    }
}
