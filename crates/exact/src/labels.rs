//! Ground-truth task labels derived from exact detection and extraction.
//!
//! These are the three node-classification targets of the paper's
//! multi-task GNN:
//!
//! * **Task 1** — adder boundary: is the node a *root* (sum or carry of an
//!   extracted adder), a *leaf* (input of an extracted adder), both, or
//!   neither;
//! * **Task 2** — XOR: does the node compute an XOR2/XOR3-class function
//!   over some cut (interior XORs included, per the paper's Figure 3);
//! * **Task 3** — MAJ: does the node compute a full-support MAJ3-class
//!   function, or serve as the carry of an extracted half adder
//!   (`MAJ3(a, b, 0)` in the paper's notation).

use crate::detect::Candidates;
use crate::extract::ExtractedAdder;
use gamora_aig::Aig;

/// Task-1 class of a node.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
#[repr(u8)]
pub enum RootLeafClass {
    /// Not part of any extracted adder boundary.
    #[default]
    Other = 0,
    /// Sum or carry root of an extracted adder.
    Root = 1,
    /// Input leaf of an extracted adder.
    Leaf = 2,
    /// Root of one adder and leaf of another (e.g. a carry feeding the
    /// next slice).
    RootAndLeaf = 3,
}

impl RootLeafClass {
    /// Number of task-1 classes.
    pub const COUNT: usize = 4;

    /// The class as a small integer (its softmax index).
    pub fn as_index(self) -> usize {
        self as usize
    }

    /// Builds a class from an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> Self {
        match i {
            0 => RootLeafClass::Other,
            1 => RootLeafClass::Root,
            2 => RootLeafClass::Leaf,
            3 => RootLeafClass::RootAndLeaf,
            _ => panic!("invalid RootLeafClass index {i}"),
        }
    }

    /// Whether the class includes the root role.
    pub fn is_root(self) -> bool {
        matches!(self, RootLeafClass::Root | RootLeafClass::RootAndLeaf)
    }

    /// Whether the class includes the leaf role.
    pub fn is_leaf(self) -> bool {
        matches!(self, RootLeafClass::Leaf | RootLeafClass::RootAndLeaf)
    }
}

/// Per-node ground-truth labels for the three tasks.
#[derive(Clone, Debug)]
pub struct Labels {
    /// Task 1: adder boundary class per node.
    pub root_leaf: Vec<RootLeafClass>,
    /// Task 2: XOR-class flag per node.
    pub is_xor: Vec<bool>,
    /// Task 3: MAJ-class flag per node.
    pub is_maj: Vec<bool>,
}

impl Labels {
    /// Number of labelled nodes.
    pub fn num_nodes(&self) -> usize {
        self.root_leaf.len()
    }

    /// Counts of (roots, leaves, xor positives, maj positives).
    pub fn summary(&self) -> (usize, usize, usize, usize) {
        let roots = self.root_leaf.iter().filter(|c| c.is_root()).count();
        let leaves = self.root_leaf.iter().filter(|c| c.is_leaf()).count();
        let xors = self.is_xor.iter().filter(|&&b| b).count();
        let majs = self.is_maj.iter().filter(|&&b| b).count();
        (roots, leaves, xors, majs)
    }
}

/// Builds per-node labels from detection candidates and extracted adders.
pub fn build_labels(aig: &Aig, cands: &Candidates, adders: &[ExtractedAdder]) -> Labels {
    let n = aig.num_nodes();
    let mut root = vec![false; n];
    let mut leaf = vec![false; n];
    let mut is_maj = cands.is_maj3.clone();
    for a in adders {
        root[a.sum.index()] = true;
        root[a.carry.index()] = true;
        for &l in a.leaf_slice() {
            leaf[l as usize] = true;
        }
        // HA carries are MAJ3(a, b, 0) in the paper's labelling.
        is_maj[a.carry.index()] = true;
    }
    let root_leaf = (0..n)
        .map(|i| match (root[i], leaf[i]) {
            (false, false) => RootLeafClass::Other,
            (true, false) => RootLeafClass::Root,
            (false, true) => RootLeafClass::Leaf,
            (true, true) => RootLeafClass::RootAndLeaf,
        })
        .collect();
    Labels {
        root_leaf,
        is_xor: cands.is_xor.clone(),
        is_maj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect;
    use crate::extract::extract_adders;

    #[test]
    fn chained_adders_make_root_and_leaf() {
        // FA1 feeds its carry into FA2: the carry is root of FA1 and leaf
        // of FA2.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(5);
        let (s1, c1) = aig.full_adder(ins[0], ins[1], ins[2]);
        let (s2, c2) = aig.full_adder(c1, ins[3], ins[4]);
        for l in [s1, c1, s2, c2] {
            aig.add_output(l);
        }
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(adders.len(), 2);
        let labels = build_labels(&aig, &cands, &adders);
        assert_eq!(
            labels.root_leaf[c1.var().index()],
            RootLeafClass::RootAndLeaf
        );
        assert_eq!(labels.root_leaf[s1.var().index()], RootLeafClass::Root);
        assert_eq!(labels.root_leaf[ins[0].var().index()], RootLeafClass::Leaf);
    }

    #[test]
    fn ha_carry_labelled_maj() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let (s, c) = aig.half_adder(a, b);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        let labels = build_labels(&aig, &cands, &adders);
        assert!(labels.is_maj[c.var().index()], "HA carry = MAJ3(a,b,0)");
        assert!(labels.is_xor[s.var().index()]);
    }

    #[test]
    fn class_roundtrip_and_roles() {
        for i in 0..RootLeafClass::COUNT {
            assert_eq!(RootLeafClass::from_index(i).as_index(), i);
        }
        assert!(RootLeafClass::Root.is_root());
        assert!(!RootLeafClass::Root.is_leaf());
        assert!(RootLeafClass::RootAndLeaf.is_root());
        assert!(RootLeafClass::RootAndLeaf.is_leaf());
        assert!(!RootLeafClass::Other.is_root());
    }

    #[test]
    fn summary_counts() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        let labels = build_labels(&aig, &cands, &adders);
        let (roots, leaves, xors, majs) = labels.summary();
        assert_eq!(roots, 2);
        assert_eq!(leaves, 3);
        assert!(xors >= 2); // xor3 root + interior xor2
        assert_eq!(majs, 1);
    }
}
