//! # gamora-exact
//!
//! Exact, ABC-style symbolic reasoning over AIGs: the reproduction of the
//! conventional flow the paper compares against, and the provider of the
//! ground-truth labels Gamora's GNN is trained on.
//!
//! The pipeline mirrors `&atree` (Yu et al., TCAD'17):
//!
//! 1. [`detect`] — enumerate 3-feasible cuts and classify each node's cut
//!    functions against the NPN-widened XOR2/XOR3/MAJ3/AND2 classes
//!    (functional propagation);
//! 2. [`extract_adders`] — pair XOR and MAJ/AND roots over identical leaf
//!    sets into full/half adders (word-level aggregation);
//! 3. [`build_labels`] — derive the three per-node classification targets
//!    of the multi-task GNN;
//! 4. [`shape`] — structural shape hashing, the classical analogue of GNN
//!    message passing, used for baseline cost analysis.
//!
//! ```
//! use gamora_circuits::csa_multiplier;
//! let m = csa_multiplier(4);
//! let analysis = gamora_exact::analyze(&m.aig);
//! // Every adder the generator placed is recovered exactly.
//! let reference = m.provenance.real_adders().map(|r| (r.sum.var(), r.carry.var()));
//! let cmp = gamora_exact::compare_with_reference(&analysis.adders, reference);
//! assert_eq!(cmp.missing, 0);
//! ```

#![warn(missing_docs)]

mod detect;
mod extract;
mod labels;
pub mod shape;
mod wordlevel;

pub use detect::{detect, Candidate, Candidates};
pub use extract::{extract_adders, ExtractedAdder, ExtractedKind};
pub use labels::{build_labels, Labels, RootLeafClass};
pub use wordlevel::{build_tree, compare_with_reference, AdderTree, TreeComparison};

use gamora_aig::Aig;

/// The complete result of exact reasoning over a network.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Classified cut functions per node.
    pub candidates: Candidates,
    /// Extracted full/half adders.
    pub adders: Vec<ExtractedAdder>,
    /// Ground-truth labels for the three GNN tasks.
    pub labels: Labels,
}

/// Runs detection, extraction and labelling in one call.
pub fn analyze(aig: &Aig) -> Analysis {
    let candidates = detect(aig);
    let adders = extract_adders(aig, &candidates);
    let labels = build_labels(aig, &candidates, &adders);
    Analysis {
        candidates,
        adders,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::{booth_multiplier, csa_multiplier, ripple_carry_adder};

    #[test]
    fn csa_multiplier_extraction_matches_provenance() {
        for bits in [2usize, 3, 4, 6, 8] {
            let m = csa_multiplier(bits);
            let analysis = analyze(&m.aig);
            let reference: Vec<_> = m
                .provenance
                .real_adders()
                .map(|r| (r.sum.var(), r.carry.var()))
                .collect();
            let cmp = compare_with_reference(&analysis.adders, reference);
            assert_eq!(
                cmp.missing,
                0,
                "{bits}-bit CSA: {cmp} (adders {})",
                analysis.adders.len()
            );
        }
    }

    #[test]
    fn booth_multiplier_extraction_recovers_tree() {
        for bits in [4usize, 6, 8] {
            let m = booth_multiplier(bits);
            let analysis = analyze(&m.aig);
            let reference: Vec<_> = m
                .provenance
                .real_adders()
                .map(|r| (r.sum.var(), r.carry.var()))
                .collect();
            let cmp = compare_with_reference(&analysis.adders, reference);
            assert!(
                cmp.recall() > 0.95,
                "{bits}-bit Booth recall too low: {cmp}"
            );
        }
    }

    #[test]
    fn ripple_adder_fully_recovered() {
        let m = ripple_carry_adder(16);
        let analysis = analyze(&m.aig);
        let reference: Vec<_> = m
            .provenance
            .real_adders()
            .map(|r| (r.sum.var(), r.carry.var()))
            .collect();
        let cmp = compare_with_reference(&analysis.adders, reference);
        assert_eq!(cmp.missing, 0, "{cmp}");
        assert_eq!(cmp.spurious, 0, "{cmp}");
    }

    #[test]
    fn label_consistency_roots_are_xor_or_maj() {
        let m = csa_multiplier(6);
        let analysis = analyze(&m.aig);
        for a in &analysis.adders {
            assert!(analysis.labels.root_leaf[a.sum.index()].is_root());
            assert!(analysis.labels.root_leaf[a.carry.index()].is_root());
            assert!(analysis.labels.is_xor[a.sum.index()]);
            assert!(analysis.labels.is_maj[a.carry.index()]);
        }
    }

    #[test]
    fn kogge_stone_yields_no_false_tree() {
        // A prefix adder has almost no FA/HA pairs; ensure we do not
        // hallucinate a large tree (the p/g stage forms one legitimate HA
        // per bit: (p_i, g_i) — that is real arithmetic, not noise).
        let m = gamora_circuits::kogge_stone_adder(16);
        let analysis = analyze(&m.aig);
        let tree = build_tree(&analysis.adders);
        assert!(
            tree.num_full() <= 1,
            "unexpected FAs in prefix logic: {tree}"
        );
    }
}
