//! Structural shape hashing — the structural half of conventional
//! word-level abstraction (WordRev-style), and the direct classical
//! analogue of GNN message passing.
//!
//! A node's *shape* at depth `d` is the structure of its backward-reachable
//! subgraph within `d` steps. Conventional tools compare explicit shapes
//! (memory-hungry); we compute iterated hash refinements
//! (Weisfeiler-Lehman style), which converge to the same equivalence
//! classes with linear memory. [`cone_sizes`] quantifies the memory an
//! explicit-shape implementation would need, which is what makes the
//! conventional flow expensive on large networks.

use gamora_aig::hasher::{FxHashMap, FxHashSet};
use gamora_aig::{Aig, NodeId, NodeKind};

/// Iterated structural hash refinement.
///
/// Round 0 distinguishes node kinds only; each further round mixes a node's
/// hash with its fanins' hashes and edge polarities. Two nodes with equal
/// depth-`d` shapes receive equal hashes (the converse holds modulo hash
/// collisions).
pub fn shape_hashes(aig: &Aig, depth: usize) -> Vec<u64> {
    let mut h: Vec<u64> = aig
        .node_ids()
        .map(|n| match aig.kind(n) {
            NodeKind::Const0 => 0x9E37_79B9_7F4A_7C15,
            NodeKind::Input => 0xC2B2_AE3D_27D4_EB4F,
            NodeKind::And => 0x1656_67B1_9E37_79F9,
        })
        .collect();
    let mut next = h.clone();
    for _ in 0..depth {
        for n in aig.node_ids() {
            if aig.kind(n) != NodeKind::And {
                continue;
            }
            let (f0, f1) = aig.fanins(n);
            let a = mix(h[f0.var().index()], f0.is_complement() as u64);
            let b = mix(h[f1.var().index()], f1.is_complement() as u64);
            // Order-independent combine keeps the hash symmetric in fanins,
            // like shape equality.
            let combined = a.wrapping_add(b) ^ a.wrapping_mul(b | 1);
            next[n.index()] = mix(h[n.index()], combined);
        }
        std::mem::swap(&mut h, &mut next);
    }
    h
}

#[inline]
fn mix(x: u64, y: u64) -> u64 {
    let mut v = x ^ y.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    v ^= v >> 33;
    v = v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    v ^= v >> 33;
    v
}

/// Groups nodes by shape hash; the map value is the class member list.
pub fn shape_classes(hashes: &[u64]) -> FxHashMap<u64, Vec<NodeId>> {
    let mut classes: FxHashMap<u64, Vec<NodeId>> = FxHashMap::default();
    for (i, &h) in hashes.iter().enumerate() {
        classes.entry(h).or_default().push(NodeId::new(i as u32));
    }
    classes
}

/// Size of each node's backward-reachable cone within `depth` steps — the
/// per-node memory footprint of *explicit* shape hashing. The sum over all
/// nodes is the total workspace a conventional implementation needs.
pub fn cone_sizes(aig: &Aig, depth: usize) -> Vec<u32> {
    let mut sizes = vec![0u32; aig.num_nodes()];
    let mut visited = FxHashSet::default();
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for n in aig.node_ids() {
        visited.clear();
        stack.clear();
        stack.push((n, 0));
        while let Some((v, d)) = stack.pop() {
            if !visited.insert(v) {
                continue;
            }
            if d < depth && aig.is_and(v) {
                let (f0, f1) = aig.fanins(v);
                stack.push((f0.var(), d + 1));
                stack.push((f1.var(), d + 1));
            }
        }
        sizes[n.index()] = visited.len() as u32;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_positions_share_shapes() {
        // Two independent full adders: corresponding nodes have identical
        // shapes at every depth.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let ys = aig.add_inputs(3);
        let (s1, c1) = aig.full_adder(xs[0], xs[1], xs[2]);
        let (s2, c2) = aig.full_adder(ys[0], ys[1], ys[2]);
        for l in [s1, c1, s2, c2] {
            aig.add_output(l);
        }
        let h = shape_hashes(&aig, 6);
        assert_eq!(h[s1.var().index()], h[s2.var().index()]);
        assert_eq!(h[c1.var().index()], h[c2.var().index()]);
        assert_ne!(h[s1.var().index()], h[c1.var().index()]);
    }

    #[test]
    fn depth_zero_separates_kinds_only() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let x = aig.and(a, b);
        let y = aig.or(a, b);
        aig.add_output(x);
        aig.add_output(y);
        let h = shape_hashes(&aig, 0);
        assert_eq!(h[a.var().index()], h[b.var().index()]);
        assert_eq!(h[x.var().index()], h[y.var().index()]);
        assert_ne!(h[a.var().index()], h[x.var().index()]);
        // One refinement round separates AND from OR (polarity pattern).
        let h1 = shape_hashes(&aig, 1);
        assert_ne!(h1[x.var().index()], h1[y.var().index()]);
    }

    #[test]
    fn classes_partition_nodes() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(4);
        let r = aig.and_multi(&ins);
        aig.add_output(r);
        let h = shape_hashes(&aig, 3);
        let classes = shape_classes(&h);
        let total: usize = classes.values().map(Vec::len).sum();
        assert_eq!(total, aig.num_nodes());
    }

    #[test]
    fn cone_sizes_grow_with_depth() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(8);
        let r = aig.xor_multi(&ins);
        aig.add_output(r);
        let s1 = cone_sizes(&aig, 1);
        let s4 = cone_sizes(&aig, 4);
        let root = r.var().index();
        assert!(s4[root] > s1[root]);
        assert_eq!(s1[0], 1); // constant node sees only itself
    }
}
