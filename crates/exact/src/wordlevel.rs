//! Word-level aggregation of extracted adders and comparison against
//! generator provenance.

use crate::extract::{ExtractedAdder, ExtractedKind};
use gamora_aig::hasher::FxHashMap;
use gamora_aig::NodeId;
use std::fmt;

/// An extracted adder tree with rank structure.
#[derive(Clone, Debug)]
pub struct AdderTree {
    /// The adders, in the order produced by extraction.
    pub adders: Vec<ExtractedAdder>,
    /// Rank of each adder: 0 if no leaf is another adder's output, else
    /// 1 + max rank over producing adders (carry-chain depth).
    pub ranks: Vec<u32>,
}

impl AdderTree {
    /// Number of full adders.
    pub fn num_full(&self) -> usize {
        self.adders
            .iter()
            .filter(|a| a.kind == ExtractedKind::Full)
            .count()
    }

    /// Number of half adders.
    pub fn num_half(&self) -> usize {
        self.adders
            .iter()
            .filter(|a| a.kind == ExtractedKind::Half)
            .count()
    }

    /// Depth of the tree (max rank + 1), 0 when empty.
    pub fn depth(&self) -> usize {
        self.ranks
            .iter()
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for AdderTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adder tree: {} FA + {} HA, depth {}",
            self.num_full(),
            self.num_half(),
            self.depth()
        )
    }
}

/// Builds the rank structure over extracted adders by following which
/// adder's outputs (sum or carry) feed which adder's leaves.
pub fn build_tree(adders: &[ExtractedAdder]) -> AdderTree {
    let mut producer: FxHashMap<u32, usize> = FxHashMap::default();
    for (i, a) in adders.iter().enumerate() {
        producer.insert(a.sum.as_u32(), i);
        producer.insert(a.carry.as_u32(), i);
    }
    let mut ranks = vec![u32::MAX; adders.len()];
    // Adders were sorted by (sum, carry) node id which is topological
    // enough for a fixpoint loop; iterate until stable.
    let mut changed = true;
    let mut guard = 0;
    while changed {
        changed = false;
        guard += 1;
        assert!(guard <= adders.len() + 2, "rank computation diverged");
        for i in 0..adders.len() {
            let mut rank = 0u32;
            let mut ready = true;
            for &leaf in adders[i].leaf_slice() {
                if let Some(&p) = producer.get(&leaf) {
                    if p == i {
                        continue; // self-reference cannot happen in a DAG
                    }
                    if ranks[p] == u32::MAX {
                        ready = false;
                        break;
                    }
                    rank = rank.max(ranks[p] + 1);
                }
            }
            if ready && ranks[i] != rank {
                ranks[i] = rank;
                changed = true;
            }
        }
    }
    for r in &mut ranks {
        if *r == u32::MAX {
            *r = 0;
        }
    }
    AdderTree {
        adders: adders.to_vec(),
        ranks,
    }
}

/// Outcome of comparing an extraction against a reference placement.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TreeComparison {
    /// Reference adders found by extraction (same sum and carry node).
    pub matched: usize,
    /// Reference adders the extraction missed.
    pub missing: usize,
    /// Extracted adders with no reference counterpart.
    pub spurious: usize,
}

impl TreeComparison {
    /// Recall against the reference (1.0 when nothing is missing).
    pub fn recall(&self) -> f64 {
        if self.matched + self.missing == 0 {
            1.0
        } else {
            self.matched as f64 / (self.matched + self.missing) as f64
        }
    }

    /// Precision of the extraction (1.0 when nothing is spurious).
    pub fn precision(&self) -> f64 {
        if self.matched + self.spurious == 0 {
            1.0
        } else {
            self.matched as f64 / (self.matched + self.spurious) as f64
        }
    }
}

impl fmt::Display for TreeComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matched {} / missing {} / spurious {} (recall {:.3}, precision {:.3})",
            self.matched,
            self.missing,
            self.spurious,
            self.recall(),
            self.precision()
        )
    }
}

/// Compares extracted adders against reference `(sum, carry)` node pairs.
pub fn compare_with_reference(
    extracted: &[ExtractedAdder],
    reference: impl IntoIterator<Item = (NodeId, NodeId)>,
) -> TreeComparison {
    let got: std::collections::BTreeSet<(u32, u32)> = extracted
        .iter()
        .map(|a| (a.sum.as_u32(), a.carry.as_u32()))
        .collect();
    let want: std::collections::BTreeSet<(u32, u32)> = reference
        .into_iter()
        .map(|(s, c)| (s.as_u32(), c.as_u32()))
        .collect();
    TreeComparison {
        matched: got.intersection(&want).count(),
        missing: want.difference(&got).count(),
        spurious: got.difference(&want).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect;
    use crate::extract::extract_adders;
    use gamora_aig::Aig;

    #[test]
    fn ripple_chain_has_linear_depth() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(9);
        let mut carry = ins[0];
        let mut outs = Vec::new();
        for i in 0..4 {
            let (s, c) = aig.full_adder(ins[2 * i + 1], ins[2 * i + 2], carry);
            outs.push(s);
            carry = c;
        }
        outs.push(carry);
        for o in outs {
            aig.add_output(o);
        }
        let cands = detect(&aig);
        let adders = extract_adders(&aig, &cands);
        assert_eq!(adders.len(), 4);
        let tree = build_tree(&adders);
        assert_eq!(tree.num_full(), 4);
        assert_eq!(tree.depth(), 4, "carry chain ranks: {:?}", tree.ranks);
    }

    #[test]
    fn comparison_accounting() {
        let extracted = vec![ExtractedAdder {
            kind: ExtractedKind::Half,
            sum: NodeId::new(5),
            carry: NodeId::new(6),
            leaves: [1, 2, u32::MAX],
        }];
        let cmp = compare_with_reference(
            &extracted,
            vec![
                (NodeId::new(5), NodeId::new(6)),
                (NodeId::new(9), NodeId::new(10)),
            ],
        );
        assert_eq!(cmp.matched, 1);
        assert_eq!(cmp.missing, 1);
        assert_eq!(cmp.spurious, 0);
        assert!((cmp.recall() - 0.5).abs() < 1e-9);
        assert!((cmp.precision() - 1.0).abs() < 1e-9);
        assert!(cmp.to_string().contains("matched 1"));
    }

    #[test]
    fn empty_comparison_is_perfect() {
        let cmp = compare_with_reference(&[], Vec::new());
        assert_eq!(cmp.recall(), 1.0);
        assert_eq!(cmp.precision(), 1.0);
    }
}
