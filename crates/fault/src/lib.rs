//! Deterministic fail-point injection for the gamora serving stack.
//!
//! Production recovery paths — worker respawn, poison quarantine,
//! retry/backoff — are only trustworthy if a test can *provoke* the
//! failures they recover from, on demand and reproducibly. This crate
//! provides named injection points ([`FaultPoint`], one per serve stage)
//! that library code checks with [`hit`] / [`hit_or_panic`]. When no
//! fault is armed, a check is **one relaxed atomic load** — the hot path
//! pays nothing measurable (guarded by the serve crate's
//! `fault_overhead` test). When armed from a spec string
//! ([`configure`], the `GAMORA_FAULTS` env var via [`init_from_env`],
//! or the RAII test helper [`arm`]), each matching check evaluates a
//! seeded-deterministic trigger and, when it fires, executes an action.
//!
//! ## Spec grammar
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := point ':' action [':' trigger]
//! point   := 'admission' | 'hash' | 'cache' | 'assemble'
//!          | 'forward' | 'split' | 'snapshot' | 'all'
//! action  := 'panic' | 'err' | 'delay(' MICROS ')'
//! trigger := 'every=' N | 'after=' N | 'prob=' P [',seed=' S]
//! ```
//!
//! The default trigger is `every=1` (fire on every check). `all` expands
//! the clause to every point. Examples:
//!
//! ```text
//! forward:panic:prob=0.05,seed=7     5% of forward passes panic
//! assemble:delay(500):every=3       every 3rd batch assembly +500us
//! snapshot:err:after=2              snapshot loads fail from the 3rd on
//! all:panic:prob=0.02               2% of every stage panics
//! ```
//!
//! ## Determinism
//!
//! `every` / `after` derive from a per-point call counter; `prob` hashes
//! `seed ^ call_index` through SplitMix64 and compares the resulting
//! uniform fraction against `P`. Counters reset on every [`configure`],
//! so the same spec over the same call sequence always fires at the same
//! checks — chaos tests are replayable.
//!
//! ## Actions
//!
//! * `panic` — panics at the check site with a descriptive message. In
//!   the serve stack this kills the worker thread (the supervisor
//!   respawns it).
//! * `delay(us)` — sleeps the given number of microseconds, then lets
//!   the check pass. Widens race windows deterministically.
//! * `err` — the check returns `Err(`[`Injected`]`)`; the caller turns
//!   it into its stage's graceful failure path (shed, degraded cache
//!   miss, `AnalysisFailed`, `SnapshotError`). Sites with no error
//!   channel use [`hit_or_panic`], which throws the typed [`Injected`]
//!   payload so an upstream `catch_unwind` can tell an injected error
//!   from a genuine panic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// A named injection point: one per serve stage.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Job admission (`submit*` entry, before the queue lock).
    Admission = 0,
    /// Structural signature hashing inside a worker batch.
    SignatureHash = 1,
    /// Prediction-cache probe/resolve.
    CacheResolve = 2,
    /// Merged batch graph/feature assembly.
    BatchAssemble = 3,
    /// The coalesced GNN forward pass.
    GnnForward = 4,
    /// Per-netlist prediction split/scatter.
    PredictionSplit = 5,
    /// Model snapshot deserialisation.
    SnapshotLoad = 6,
}

/// Every fault point, in index order.
pub const ALL_POINTS: [FaultPoint; NUM_POINTS] = [
    FaultPoint::Admission,
    FaultPoint::SignatureHash,
    FaultPoint::CacheResolve,
    FaultPoint::BatchAssemble,
    FaultPoint::GnnForward,
    FaultPoint::PredictionSplit,
    FaultPoint::SnapshotLoad,
];

const NUM_POINTS: usize = 7;

impl FaultPoint {
    /// The spec-grammar name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::Admission => "admission",
            FaultPoint::SignatureHash => "hash",
            FaultPoint::CacheResolve => "cache",
            FaultPoint::BatchAssemble => "assemble",
            FaultPoint::GnnForward => "forward",
            FaultPoint::PredictionSplit => "split",
            FaultPoint::SnapshotLoad => "snapshot",
        }
    }

    /// Parses a spec-grammar point name (`"all"` is handled by the spec
    /// parser, not here).
    pub fn parse(s: &str) -> Option<FaultPoint> {
        ALL_POINTS.iter().copied().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed payload of an injected `err` action. Doubles as the panic
/// payload thrown by [`hit_or_panic`], so a `catch_unwind` upstream can
/// `downcast_ref::<Injected>()` to distinguish an injected error from a
/// genuine panic.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Injected {
    /// The point that fired.
    pub point: FaultPoint,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at point '{}'", self.point)
    }
}

impl std::error::Error for Injected {}

/// What a firing clause does.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Action {
    Panic,
    Err,
    Delay(u64),
}

/// When a clause fires, evaluated against the point's call counter `n`
/// (0-based: the first check of a point sees `n == 0`).
#[derive(Copy, Clone, Debug, PartialEq)]
enum Trigger {
    /// Fires on calls `k-1, 2k-1, 3k-1, ...` (`every=1` fires always).
    Every(u64),
    /// Fires on every call from the `k`-th onwards (0-based: `n >= k`).
    After(u64),
    /// Fires when `splitmix64(seed ^ n)` as a uniform fraction is `< p`.
    Prob { p: f64, seed: u64 },
}

impl Trigger {
    fn fires(&self, n: u64) -> bool {
        match *self {
            Trigger::Every(k) => k > 0 && (n + 1).is_multiple_of(k),
            Trigger::After(k) => n >= k,
            Trigger::Prob { p, seed } => {
                let h = splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (h as f64 / u64::MAX as f64) < p
            }
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Clause {
    point: FaultPoint,
    action: Action,
    trigger: Trigger,
}

/// Fast-path gate: a disabled subsystem costs exactly this one relaxed
/// load per check.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Armed clauses (read-locked on the slow path only).
static CONFIG: RwLock<Vec<Clause>> = RwLock::new(Vec::new());

/// Per-point check counters (drive `every`/`after`/`prob` triggers).
static CALLS: [AtomicU64; NUM_POINTS] = [const { AtomicU64::new(0) }; NUM_POINTS];

/// Per-point fired-action counters (reported by benches and tests).
static FIRED: [AtomicU64; NUM_POINTS] = [const { AtomicU64::new(0) }; NUM_POINTS];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether any fault clause is currently armed. Callers that need extra
/// setup around a check (e.g. a `catch_unwind` to contain a `panic`
/// action) can gate that setup on this to keep the disarmed path free.
#[inline]
pub fn armed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Checks a fail point. Disarmed: one relaxed atomic load, always
/// `Ok(())`. Armed: evaluates this point's clauses in configuration
/// order; the first firing clause acts — `panic` panics here, `delay`
/// sleeps then passes, `err` returns `Err(Injected)` for the caller's
/// graceful failure path.
#[inline]
pub fn hit(point: FaultPoint) -> Result<(), Injected> {
    if !ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    hit_slow(point)
}

/// [`hit`] for sites with no error channel: an injected `err` is thrown
/// as a typed [`Injected`] panic payload (via `panic_any`) so an
/// upstream `catch_unwind` can recognise and absorb it.
#[inline]
pub fn hit_or_panic(point: FaultPoint) {
    if let Err(e) = hit(point) {
        std::panic::panic_any(e);
    }
}

#[cold]
fn hit_slow(point: FaultPoint) -> Result<(), Injected> {
    let n = CALLS[point as usize].fetch_add(1, Ordering::Relaxed);
    // Copy the firing action out before acting: a panic while holding
    // the read guard would poison the config for every later check.
    let action = {
        let config = CONFIG.read().expect("fault config poisoned");
        config
            .iter()
            .find(|c| c.point == point && c.trigger.fires(n))
            .map(|c| c.action)
    };
    match action {
        None => Ok(()),
        Some(Action::Delay(us)) => {
            FIRED[point as usize].fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(us));
            Ok(())
        }
        Some(Action::Err) => {
            FIRED[point as usize].fetch_add(1, Ordering::Relaxed);
            Err(Injected { point })
        }
        Some(Action::Panic) => {
            FIRED[point as usize].fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: panic at point '{point}' (call {n})");
        }
    }
}

/// How many times a point's action has fired since the last
/// [`configure`].
pub fn fired(point: FaultPoint) -> u64 {
    FIRED[point as usize].load(Ordering::Relaxed)
}

/// Total fired actions across every point since the last [`configure`].
pub fn fired_total() -> u64 {
    ALL_POINTS.iter().map(|&p| fired(p)).sum()
}

/// Parses `spec` and arms the subsystem with its clauses, resetting the
/// per-point call and fired counters (so the same spec over the same
/// call sequence replays identically). Returns the number of armed
/// clauses; an empty spec disarms. Errors describe the first bad clause
/// without changing the current configuration.
pub fn configure(spec: &str) -> Result<usize, String> {
    let mut clauses = Vec::new();
    for raw in spec.split(';') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        parse_clause(raw, &mut clauses)?;
    }
    let n = clauses.len();
    let mut config = CONFIG.write().expect("fault config poisoned");
    for c in &CALLS {
        c.store(0, Ordering::Relaxed);
    }
    for f in &FIRED {
        f.store(0, Ordering::Relaxed);
    }
    *config = clauses;
    ENABLED.store(n > 0, Ordering::Relaxed);
    Ok(n)
}

/// Disarms every fault clause; checks return to the single-load fast
/// path. Fired counters are kept for post-run reporting (the next
/// [`configure`] resets them).
pub fn disarm() {
    ENABLED.store(false, Ordering::Relaxed);
    CONFIG.write().expect("fault config poisoned").clear();
}

/// Arms from the `GAMORA_FAULTS` environment variable when it is set and
/// non-empty. Returns the number of armed clauses.
///
/// # Panics
///
/// Panics with the parse error when the variable holds a bad spec —
/// silently ignoring a typo'd fault spec would fake chaos coverage.
pub fn init_from_env() -> usize {
    match std::env::var("GAMORA_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec).expect("GAMORA_FAULTS holds an invalid fault spec")
        }
        _ => 0,
    }
}

fn parse_clause(raw: &str, out: &mut Vec<Clause>) -> Result<(), String> {
    let mut parts = raw.splitn(3, ':');
    let point_s = parts.next().unwrap_or_default().trim();
    let action_s = parts
        .next()
        .ok_or_else(|| format!("clause '{raw}': missing action (want point:action[:trigger])"))?
        .trim();
    let trigger_s = parts.next().map(str::trim);

    let action = parse_action(action_s).map_err(|e| format!("clause '{raw}': {e}"))?;
    let trigger = match trigger_s {
        None | Some("") => Trigger::Every(1),
        Some(t) => parse_trigger(t).map_err(|e| format!("clause '{raw}': {e}"))?,
    };
    if point_s == "all" {
        for point in ALL_POINTS {
            out.push(Clause {
                point,
                action,
                trigger,
            });
        }
        return Ok(());
    }
    let point = FaultPoint::parse(point_s).ok_or_else(|| {
        format!(
            "clause '{raw}': unknown point '{point_s}' (want one of \
             admission|hash|cache|assemble|forward|split|snapshot|all)"
        )
    })?;
    out.push(Clause {
        point,
        action,
        trigger,
    });
    Ok(())
}

fn parse_action(s: &str) -> Result<Action, String> {
    match s {
        "panic" => Ok(Action::Panic),
        "err" => Ok(Action::Err),
        _ => {
            if let Some(inner) = s.strip_prefix("delay(").and_then(|r| r.strip_suffix(')')) {
                let us: u64 = inner
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad delay micros '{inner}'"))?;
                Ok(Action::Delay(us))
            } else {
                Err(format!(
                    "unknown action '{s}' (want panic|err|delay(MICROS))"
                ))
            }
        }
    }
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if let Some(v) = s.strip_prefix("every=") {
        let k: u64 = v.parse().map_err(|_| format!("bad every count '{v}'"))?;
        if k == 0 {
            return Err("every=0 never fires; use a positive count".into());
        }
        return Ok(Trigger::Every(k));
    }
    if let Some(v) = s.strip_prefix("after=") {
        let k: u64 = v.parse().map_err(|_| format!("bad after count '{v}'"))?;
        return Ok(Trigger::After(k));
    }
    if let Some(v) = s.strip_prefix("prob=") {
        let mut p_s = v;
        let mut seed = 0u64;
        if let Some((p_part, seed_part)) = v.split_once(',') {
            p_s = p_part.trim();
            let sv = seed_part
                .trim()
                .strip_prefix("seed=")
                .ok_or_else(|| format!("bad prob suffix '{seed_part}' (want seed=S)"))?;
            seed = sv.parse().map_err(|_| format!("bad seed '{sv}'"))?;
        }
        let p: f64 = p_s
            .parse()
            .map_err(|_| format!("bad probability '{p_s}'"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        return Ok(Trigger::Prob { p, seed });
    }
    Err(format!(
        "unknown trigger '{s}' (want every=N|after=N|prob=P[,seed=S])"
    ))
}

/// Serialises tests that arm faults: the subsystem is process-global, so
/// two concurrently-armed tests would see each other's clauses.
static TEST_GATE: Mutex<()> = Mutex::new(());

/// RAII arming for tests: takes a process-wide gate (so concurrently
/// running tests cannot interleave their fault configs), arms `spec`,
/// and disarms on drop.
///
/// # Panics
///
/// Panics on an invalid spec.
pub struct ArmedGuard {
    _gate: MutexGuard<'static, ()>,
}

/// Arms `spec` for the lifetime of the returned guard. See
/// [`ArmedGuard`].
pub fn arm(spec: &str) -> ArmedGuard {
    let gate = TEST_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    configure(spec).expect("invalid fault spec");
    ArmedGuard { _gate: gate }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_checks_pass() {
        let _g = arm("");
        assert!(!armed());
        for p in ALL_POINTS {
            assert_eq!(hit(p), Ok(()));
        }
    }

    #[test]
    fn every_trigger_is_periodic() {
        let _g = arm("forward:err:every=3");
        let mut fails = 0;
        for _ in 0..9 {
            if hit(FaultPoint::GnnForward).is_err() {
                fails += 1;
            }
        }
        assert_eq!(fails, 3, "every=3 fires on exactly every 3rd check");
        assert_eq!(fired(FaultPoint::GnnForward), 3);
        // Other points are untouched.
        assert_eq!(hit(FaultPoint::Admission), Ok(()));
    }

    #[test]
    fn after_trigger_fires_from_the_kth_call() {
        let _g = arm("snapshot:err:after=2");
        assert!(hit(FaultPoint::SnapshotLoad).is_ok());
        assert!(hit(FaultPoint::SnapshotLoad).is_ok());
        assert!(hit(FaultPoint::SnapshotLoad).is_err());
        assert!(hit(FaultPoint::SnapshotLoad).is_err());
    }

    #[test]
    fn prob_trigger_is_deterministic_and_calibrated() {
        let _g = arm("hash:err:prob=0.25,seed=42");
        let run1: Vec<bool> = (0..400)
            .map(|_| hit(FaultPoint::SignatureHash).is_err())
            .collect();
        let fired1 = fired(FaultPoint::SignatureHash);
        // Re-arming the same spec resets the counters: the sequence replays.
        configure("hash:err:prob=0.25,seed=42").unwrap();
        let run2: Vec<bool> = (0..400)
            .map(|_| hit(FaultPoint::SignatureHash).is_err())
            .collect();
        assert_eq!(run1, run2, "same spec + same calls = same firings");
        let hits = run1.iter().filter(|&&b| b).count();
        assert!(
            (40..=160).contains(&hits),
            "prob=0.25 over 400 checks fired {hits} times (expected ~100)"
        );
        assert_eq!(fired1 as usize, hits);
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let _g = arm("assemble:delay(20000)");
        let t = std::time::Instant::now();
        assert_eq!(hit(FaultPoint::BatchAssemble), Ok(()));
        assert!(
            t.elapsed() >= Duration::from_millis(15),
            "delay(20000) must sleep ~20ms"
        );
    }

    #[test]
    fn panic_action_panics_with_a_catchable_message() {
        let _g = arm("split:panic");
        let caught = std::panic::catch_unwind(|| hit(FaultPoint::PredictionSplit));
        let payload = caught.expect_err("panic action must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic! message payload");
        assert!(msg.contains("split"), "message names the point: {msg}");
    }

    #[test]
    fn hit_or_panic_throws_a_typed_injected_payload() {
        let _g = arm("forward:err");
        let caught = std::panic::catch_unwind(|| hit_or_panic(FaultPoint::GnnForward));
        let payload = caught.expect_err("err action must throw through hit_or_panic");
        let injected = payload
            .downcast_ref::<Injected>()
            .expect("typed Injected payload");
        assert_eq!(injected.point, FaultPoint::GnnForward);
    }

    #[test]
    fn all_expands_to_every_point() {
        let _g = arm("all:err");
        for p in ALL_POINTS {
            assert_eq!(hit(p), Err(Injected { point: p }));
        }
    }

    #[test]
    fn first_matching_clause_wins() {
        let _g = arm("forward:delay(1):every=2;forward:err");
        // Call 0: every=2 does not fire, err (every=1) does.
        assert!(hit(FaultPoint::GnnForward).is_err());
        // Call 1: delay clause fires first and shadows the err clause.
        assert!(hit(FaultPoint::GnnForward).is_ok());
    }

    #[test]
    fn bad_specs_are_rejected_without_arming() {
        let _g = arm("");
        for bad in [
            "forward",
            "forward:explode",
            "nowhere:panic",
            "forward:panic:sometimes",
            "forward:delay(x)",
            "forward:err:prob=1.5",
            "forward:err:every=0",
            "forward:err:prob=0.1,sd=3",
        ] {
            assert!(configure(bad).is_err(), "spec '{bad}' must be rejected");
            assert!(!armed(), "a rejected spec must not arm anything");
        }
        assert_eq!(configure("  ;; ").unwrap(), 0);
        assert!(!armed());
        assert_eq!(configure("all:panic:prob=0.05,seed=9").unwrap(), 7);
        assert!(armed());
        disarm();
        assert!(!armed());
    }
}
