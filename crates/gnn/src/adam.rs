//! The Adam optimiser (Kingma & Ba) over flat parameter slices.

/// Adam state: first/second moment estimates per parameter tensor.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an optimiser with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Applies one update step to `pairs` of (parameters, gradients).
    ///
    /// Moment buffers are allocated lazily on first call; the number and
    /// shapes of tensors must stay identical across calls.
    ///
    /// # Panics
    ///
    /// Panics if the tensor list changes shape between steps.
    pub fn step(&mut self, pairs: Vec<(&mut [f32], &[f32])>) {
        if self.m.is_empty() {
            self.m = pairs.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = self.m.clone();
        }
        assert_eq!(pairs.len(), self.m.len(), "parameter tensor count changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, (param, grad)) in pairs.into_iter().enumerate() {
            assert_eq!(param.len(), grad.len());
            assert_eq!(param.len(), self.m[i].len(), "tensor {i} changed size");
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for j in 0..param.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * grad[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * grad[j] * grad[j];
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                param[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam must descend a simple quadratic: f(x) = (x - 3)^2.
    #[test]
    fn minimises_quadratic() {
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let grad = vec![2.0 * (x[0] - 3.0)];
            opt.step(vec![(&mut x, &grad)]);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    /// Two tensors with different shapes update independently.
    #[test]
    fn multi_tensor_updates() {
        let mut a = vec![1.0f32, -1.0];
        let mut b = vec![5.0f32];
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let ga: Vec<f32> = a.iter().map(|x| 2.0 * x).collect(); // min at 0
            let gb: Vec<f32> = b.iter().map(|x| 2.0 * (x - 2.0)).collect(); // min at 2
            opt.step(vec![(&mut a, &ga), (&mut b, &gb)]);
        }
        assert!(a.iter().all(|x| x.abs() < 0.05), "{a:?}");
        assert!((b[0] - 2.0).abs() < 0.05, "{b:?}");
    }

    #[test]
    fn first_step_magnitude_close_to_lr() {
        // With bias correction, the first step has magnitude ~lr.
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.01);
        opt.step(vec![(&mut x, &[1.0f32][..])]);
        assert!((x[0] + 0.01).abs() < 1e-4, "{}", x[0]);
    }
}
