//! CSR graphs and mean-aggregation message passing.

use crate::parallel;
use crate::tensor::Matrix;

/// Which way messages flow over a directed edge list.
///
/// The AIG's natural edges run fanin → node. Adder roots must "see" their
/// sibling root through a shared fanin (two hops against the edge
/// direction), so the paper-faithful default in the pipeline crate is
/// [`Direction::Bidirectional`]; the others exist for the ablation bench.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Direction {
    /// Aggregate from fanins (edge sources).
    Fanin,
    /// Aggregate from fanouts (edge targets).
    Fanout,
    /// Aggregate from both (symmetrised adjacency).
    #[default]
    Bidirectional,
}

/// A fixed graph in CSR form with forward and reverse adjacency, ready for
/// mean aggregation and its backward pass.
///
/// A `Graph` is also its own assembly scratch: [`Graph::from_edges_into`]
/// rebuilds every CSR array in place, reusing high-water capacity, so a
/// serve worker can stream a fresh (batch) graph into the same instance on
/// every request without touching the heap.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    num_nodes: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    rev_offsets: Vec<u32>,
    rev_neighbors: Vec<u32>,
    /// 1 / degree(v) for the forward adjacency (0 for isolated nodes).
    inv_deg: Vec<f32>,
    /// Reusable slot cursor for the in-place CSR fill passes.
    cursor: Vec<u32>,
}

impl Graph {
    /// Builds a graph from `(src, dst)` edges under the given direction.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)], direction: Direction) -> Graph {
        let mut out = Graph::default();
        Graph::from_edges_into(
            num_nodes,
            direction,
            |sink| {
                for &(s, d) in edges {
                    sink(s, d);
                }
            },
            &mut out,
        );
        out
    }

    /// Streams edges into a caller-owned graph, rebuilding its CSR arrays
    /// in place: no intermediate edge list, no reverse-pair
    /// materialisation, and zero heap allocation once `out`'s buffers have
    /// reached their high-water capacity.
    ///
    /// `edges` must stream the same `(src, dst)` sequence every time it is
    /// invoked — it is called twice, once to count per-node degrees and
    /// once to fill the CSR slots. The reverse adjacency is then derived
    /// from the forward arrays directly.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_nodes`, or (debug only) if
    /// the two `edges` invocations stream different sequences.
    pub fn from_edges_into<F>(num_nodes: usize, direction: Direction, edges: F, out: &mut Graph)
    where
        F: Fn(&mut dyn FnMut(u32, u32)),
    {
        let Graph {
            num_nodes: out_nodes,
            offsets,
            neighbors,
            rev_offsets,
            rev_neighbors,
            inv_deg,
            cursor,
        } = out;
        *out_nodes = num_nodes;

        // Pass 1: count aggregation edges per CSR row.
        offsets.clear();
        offsets.resize(num_nodes + 1, 0);
        edges(&mut |s: u32, d: u32| {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "edge ({s}, {d}) out of range"
            );
            match direction {
                Direction::Fanin => offsets[d as usize + 1] += 1, // node gathers from fanin
                Direction::Fanout => offsets[s as usize + 1] += 1, // node gathers from fanout
                Direction::Bidirectional => {
                    offsets[d as usize + 1] += 1;
                    offsets[s as usize + 1] += 1;
                }
            }
        });
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[num_nodes] as usize;

        // Pass 2: fill the forward CSR slots.
        cursor.clear();
        cursor.extend_from_slice(offsets);
        neighbors.clear();
        neighbors.resize(total, 0);
        edges(&mut |s: u32, d: u32| {
            let mut put = |v: u32, u: u32| {
                let slot = &mut cursor[v as usize];
                neighbors[*slot as usize] = u;
                *slot += 1;
            };
            match direction {
                Direction::Fanin => put(d, s),
                Direction::Fanout => put(s, d),
                Direction::Bidirectional => {
                    put(d, s);
                    put(s, d);
                }
            }
        });
        debug_assert!(
            (0..num_nodes).all(|v| cursor[v] == offsets[v + 1]),
            "edge stream changed between the count and fill passes"
        );

        // Reverse CSR, derived from the forward arrays (who consumes whom).
        rev_offsets.clear();
        rev_offsets.resize(num_nodes + 1, 0);
        for &u in neighbors.iter() {
            rev_offsets[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        cursor.clear();
        cursor.extend_from_slice(rev_offsets);
        rev_neighbors.clear();
        rev_neighbors.resize(total, 0);
        for v in 0..num_nodes {
            for &u in &neighbors[offsets[v] as usize..offsets[v + 1] as usize] {
                let slot = &mut cursor[u as usize];
                rev_neighbors[*slot as usize] = v as u32;
                *slot += 1;
            }
        }

        inv_deg.clear();
        inv_deg.extend((0..num_nodes).map(|v| {
            let deg = offsets[v + 1] - offsets[v];
            if deg == 0 {
                0.0
            } else {
                1.0 / deg as f32
            }
        }));
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (directed) aggregation edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The aggregation neighborhood of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Mean aggregation: `out[v] = mean_{u in N(v)} h[u]` (zero row when
    /// `N(v)` is empty).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows() != num_nodes`.
    pub fn mean_aggregate(&self, h: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.mean_aggregate_into(h, &mut out);
        out
    }

    /// [`Graph::mean_aggregate`] into a caller-owned buffer (no heap
    /// allocation once `out` has enough capacity).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows() != num_nodes`.
    pub fn mean_aggregate_into(&self, h: &Matrix, out: &mut Matrix) {
        assert_eq!(h.rows(), self.num_nodes, "one embedding row per node");
        let dim = h.cols();
        out.reset(self.num_nodes, dim);
        parallel::for_each_row(out.as_mut_slice(), dim.max(1), |v, row| {
            let neigh = self.neighbors(v);
            if neigh.is_empty() {
                return;
            }
            for &u in neigh {
                for (o, &x) in row.iter_mut().zip(h.row(u as usize)) {
                    *o += x;
                }
            }
            let inv = self.inv_deg[v];
            for o in row.iter_mut() {
                *o *= inv;
            }
        });
    }

    /// Backward of [`Graph::mean_aggregate`]: given `d(out)`, returns
    /// `d(h)` where `d(h)[u] = Σ_{v : u ∈ N(v)} d(out)[v] / deg(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.rows() != num_nodes`.
    pub fn mean_aggregate_backward(&self, grad: &Matrix) -> Matrix {
        assert_eq!(grad.rows(), self.num_nodes);
        let dim = grad.cols();
        let mut out = Matrix::zeros(self.num_nodes, dim);
        parallel::for_each_row(out.as_mut_slice(), dim.max(1), |u, row| {
            let consumers =
                &self.rev_neighbors[self.rev_offsets[u] as usize..self.rev_offsets[u + 1] as usize];
            for &v in consumers {
                let inv = self.inv_deg[v as usize];
                for (o, &g) in row.iter_mut().zip(grad.row(v as usize)) {
                    *o += g * inv;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 -> 1 -> 2.
    fn path() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2)]
    }

    #[test]
    fn fanin_neighbors() {
        let g = Graph::from_edges(3, &path(), Direction::Fanin);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bidirectional_neighbors() {
        let g = Graph::from_edges(3, &path(), Direction::Bidirectional);
        assert_eq!(g.neighbors(1).len(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn mean_aggregation_values() {
        let g = Graph::from_edges(3, &path(), Direction::Bidirectional);
        let h = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 2.0, 4.0, 4.0]);
        let agg = g.mean_aggregate(&h);
        // node 1 averages nodes 0 and 2 -> (2.5, 2.0)
        assert_eq!(agg.row(1), &[2.5, 2.0]);
        // node 0 sees only node 1
        assert_eq!(agg.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn isolated_nodes_aggregate_zero() {
        let g = Graph::from_edges(4, &[(0, 1)], Direction::Fanin);
        let h = Matrix::from_vec(4, 1, vec![5.0, 6.0, 7.0, 8.0]);
        let agg = g.mean_aggregate(&h);
        assert_eq!(agg.row(3), &[0.0]);
        assert_eq!(agg.row(0), &[0.0]); // fanin of 0 is empty
        assert_eq!(agg.row(1), &[5.0]);
    }

    /// An in-place rebuild into a reused graph (grow-then-shrink and
    /// shrink-then-grow) is indistinguishable from fresh construction,
    /// including the derived reverse adjacency.
    #[test]
    fn from_edges_into_reuse_matches_fresh() {
        let mut g = Graph::default();
        for n in [6usize, 3, 9] {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            for dir in [
                Direction::Fanin,
                Direction::Fanout,
                Direction::Bidirectional,
            ] {
                Graph::from_edges_into(
                    n,
                    dir,
                    |sink| {
                        for &(s, d) in &edges {
                            sink(s, d);
                        }
                    },
                    &mut g,
                );
                let fresh = Graph::from_edges(n, &edges, dir);
                assert_eq!(g.num_nodes(), fresh.num_nodes());
                assert_eq!(g.num_edges(), fresh.num_edges());
                for v in 0..n {
                    assert_eq!(g.neighbors(v), fresh.neighbors(v), "{dir:?} node {v}");
                }
                let grad = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32 + 1.0).collect());
                assert_eq!(
                    g.mean_aggregate_backward(&grad).as_slice(),
                    fresh.mean_aggregate_backward(&grad).as_slice(),
                    "{dir:?} reverse adjacency"
                );
            }
        }
    }

    /// The backward pass must be the exact adjoint of the forward pass:
    /// <A x, y> == <x, A^T y> for all x, y.
    #[test]
    fn backward_is_adjoint_of_forward() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 17;
        let edges: Vec<(u32, u32)> = (0..40)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        for dir in [
            Direction::Fanin,
            Direction::Fanout,
            Direction::Bidirectional,
        ] {
            let g = Graph::from_edges(n, &edges, dir);
            let dim = 3;
            let x = Matrix::from_vec(
                n,
                dim,
                (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let y = Matrix::from_vec(
                n,
                dim,
                (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let ax = g.mean_aggregate(&x);
            let aty = g.mean_aggregate_backward(&y);
            let dot = |a: &Matrix, b: &Matrix| -> f64 {
                a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(&p, &q)| p as f64 * q as f64)
                    .sum()
            };
            let lhs = dot(&ax, &y);
            let rhs = dot(&x, &aty);
            assert!((lhs - rhs).abs() < 1e-4, "{dir:?}: {lhs} vs {rhs}");
        }
    }
}
