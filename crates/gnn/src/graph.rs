//! CSR graphs and mean-aggregation message passing.

use crate::parallel;
use crate::tensor::Matrix;

/// A replayable `(src, dst)` edge stream: called with a sink, invoked
/// once to count degrees and once to fill CSR slots.
type EdgeStream<'a> = &'a dyn Fn(&mut dyn FnMut(u32, u32));

/// Which way messages flow over a directed edge list.
///
/// The AIG's natural edges run fanin → node. Adder roots must "see" their
/// sibling root through a shared fanin (two hops against the edge
/// direction), so the paper-faithful default in the pipeline crate is
/// [`Direction::Bidirectional`]; the others exist for the ablation bench.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Direction {
    /// Aggregate from fanins (edge sources).
    Fanin,
    /// Aggregate from fanouts (edge targets).
    Fanout,
    /// Aggregate from both (symmetrised adjacency).
    #[default]
    Bidirectional,
}

/// A fixed graph in CSR form with forward and reverse adjacency, ready for
/// mean aggregation and its backward pass.
///
/// A `Graph` is also its own assembly scratch: [`Graph::from_edges_into`]
/// rebuilds every CSR array in place, reusing high-water capacity, so a
/// serve worker can stream a fresh (batch) graph into the same instance on
/// every request without touching the heap.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    num_nodes: usize,
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    rev_offsets: Vec<u32>,
    rev_neighbors: Vec<u32>,
    /// 1 / degree(v) for the forward adjacency (0 for isolated nodes).
    inv_deg: Vec<f32>,
    /// Reusable slot cursor for the in-place CSR fill passes.
    cursor: Vec<u32>,
}

impl Graph {
    /// Builds a graph from `(src, dst)` edges under the given direction.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)], direction: Direction) -> Graph {
        let mut out = Graph::default();
        Graph::from_edges_into(
            num_nodes,
            direction,
            |sink| {
                for &(s, d) in edges {
                    sink(s, d);
                }
            },
            &mut out,
        );
        out
    }

    /// Streams edges into a caller-owned graph, rebuilding its CSR arrays
    /// in place: no intermediate edge list, no reverse-pair
    /// materialisation, and zero heap allocation once `out`'s buffers have
    /// reached their high-water capacity.
    ///
    /// `edges` must stream the same `(src, dst)` sequence every time it is
    /// invoked — it is called twice, once to count per-node degrees and
    /// once to fill the CSR slots. The reverse adjacency is then derived
    /// from the forward arrays directly.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_nodes`, if the prefix-summed
    /// edge count overflows the u32 CSR index, or (debug only) if the two
    /// `edges` invocations stream different sequences.
    pub fn from_edges_into<F>(num_nodes: usize, direction: Direction, edges: F, out: &mut Graph)
    where
        F: Fn(&mut dyn FnMut(u32, u32)),
    {
        Graph::build_serial(num_nodes, direction, &edges, out);
    }

    /// [`Graph::from_edges_into`] over a *sectioned* node space: the nodes
    /// `0..num_nodes` are tiled by `num_sections` contiguous sections
    /// (`span(i)` returns section `i`'s `(first_node, node_count)`), and
    /// `edges(i, sink)` streams section `i`'s edges, **both endpoints of
    /// which must lie inside section `i`**. Disjoint-union batches satisfy
    /// this by construction — one section per constituent, no
    /// cross-constituent edges.
    ///
    /// Because sections never share CSR rows or slots, every build pass
    /// (count, prefix sum, fill, reverse derivation, inverse degrees)
    /// fans out over contiguous section groups on the scoped-thread pool,
    /// each worker writing a disjoint sub-slice in the same order the
    /// serial path would — the output is **bit-identical** to
    /// [`Graph::from_edges_into`] fed the concatenated stream. Small
    /// graphs, single sections, and a 1-thread cap
    /// ([`parallel::set_intra_threads`]) fall back to the serial path,
    /// which keeps the zero-allocation reuse contract; the parallel path
    /// reuses the same caller-owned buffers and only pays scoped-thread
    /// spawns.
    ///
    /// # Panics
    ///
    /// Panics if the sections do not tile `0..num_nodes` in order, if an
    /// edge endpoint leaves its section, or if the prefix-summed edge
    /// count overflows the u32 CSR index.
    pub fn from_sections_into<S, F>(
        num_nodes: usize,
        direction: Direction,
        num_sections: usize,
        span: S,
        edges: F,
        out: &mut Graph,
    ) where
        S: Fn(usize) -> (usize, usize) + Sync,
        F: Fn(usize, &mut dyn FnMut(u32, u32)) + Sync,
    {
        // Sections must tile the node space contiguously, in order.
        let mut covered = 0usize;
        for i in 0..num_sections {
            let (start, len) = span(i);
            assert_eq!(start, covered, "section {i} does not start at {covered}");
            covered += len;
        }
        assert_eq!(covered, num_nodes, "sections must cover every node");

        let nt = parallel::effective_threads(num_nodes).min(num_sections);
        if nt <= 1 {
            // Serial fallback: stream the sections in order through the
            // single-section path (identical output by definition). The
            // per-section containment contract is still enforced so a
            // violating caller fails the same way at every thread count.
            Graph::build_serial(
                num_nodes,
                direction,
                &|sink: &mut dyn FnMut(u32, u32)| {
                    for i in 0..num_sections {
                        let (start, len) = span(i);
                        edges(i, &mut |s: u32, d: u32| {
                            assert_section_edge(i, start, len, s, d);
                            sink(s, d);
                        });
                    }
                },
                out,
            );
            return;
        }
        Graph::build_sectioned(num_nodes, direction, num_sections, &span, &edges, nt, out);
    }

    /// The single-threaded CSR build (also the steady state of warmed-up
    /// serving on small graphs: zero heap allocation at capacity).
    fn build_serial(
        num_nodes: usize,
        direction: Direction,
        edges: EdgeStream<'_>,
        out: &mut Graph,
    ) {
        assert_node_count(num_nodes);
        let Graph {
            num_nodes: out_nodes,
            offsets,
            neighbors,
            rev_offsets,
            rev_neighbors,
            inv_deg,
            cursor,
        } = out;
        *out_nodes = num_nodes;

        // Pass 1: count aggregation edges per CSR row.
        offsets.clear();
        offsets.resize(num_nodes + 1, 0);
        edges(&mut |s: u32, d: u32| {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "edge ({s}, {d}) out of range"
            );
            match direction {
                Direction::Fanin => offsets[d as usize + 1] += 1, // node gathers from fanin
                Direction::Fanout => offsets[s as usize + 1] += 1, // node gathers from fanout
                Direction::Bidirectional => {
                    offsets[d as usize + 1] += 1;
                    offsets[s as usize + 1] += 1;
                }
            }
        });
        let total = prefix_sum_serial(&mut offsets[1..]);

        // Pass 2: fill the forward CSR slots.
        cursor.clear();
        cursor.extend_from_slice(offsets);
        neighbors.clear();
        neighbors.resize(total, 0);
        edges(&mut |s: u32, d: u32| {
            let mut put = |v: u32, u: u32| {
                let slot = &mut cursor[v as usize];
                neighbors[*slot as usize] = u;
                *slot += 1;
            };
            match direction {
                Direction::Fanin => put(d, s),
                Direction::Fanout => put(s, d),
                Direction::Bidirectional => {
                    put(d, s);
                    put(s, d);
                }
            }
        });
        debug_assert!(
            (0..num_nodes).all(|v| cursor[v] == offsets[v + 1]),
            "edge stream changed between the count and fill passes"
        );

        // Reverse CSR, derived from the forward arrays (who consumes whom).
        rev_offsets.clear();
        rev_offsets.resize(num_nodes + 1, 0);
        for &u in neighbors.iter() {
            rev_offsets[u as usize + 1] += 1;
        }
        prefix_sum_serial(&mut rev_offsets[1..]);
        cursor.clear();
        cursor.extend_from_slice(rev_offsets);
        rev_neighbors.clear();
        rev_neighbors.resize(total, 0);
        for v in 0..num_nodes {
            for &u in &neighbors[offsets[v] as usize..offsets[v + 1] as usize] {
                let slot = &mut cursor[u as usize];
                rev_neighbors[*slot as usize] = v as u32;
                *slot += 1;
            }
        }

        inv_deg.clear();
        inv_deg.extend((0..num_nodes).map(|v| {
            let deg = offsets[v + 1] - offsets[v];
            if deg == 0 {
                0.0
            } else {
                1.0 / deg as f32
            }
        }));
    }

    /// The parallel sectioned build: every pass fans contiguous section
    /// groups (~`num_nodes / nt` nodes each) out over scoped threads, each
    /// worker owning a disjoint `split_at_mut` sub-slice of the arrays it
    /// writes. Within a group the serial visit order is preserved and no
    /// group ever touches another group's rows or slots, so the arrays
    /// come out bit-identical to the serial build.
    #[allow(clippy::too_many_lines)]
    fn build_sectioned<S, F>(
        num_nodes: usize,
        direction: Direction,
        num_sections: usize,
        span: &S,
        edges: &F,
        nt: usize,
        out: &mut Graph,
    ) where
        S: Fn(usize) -> (usize, usize) + Sync,
        F: Fn(usize, &mut dyn FnMut(u32, u32)) + Sync,
    {
        assert_node_count(num_nodes);
        let Graph {
            num_nodes: out_nodes,
            offsets,
            neighbors,
            rev_offsets,
            rev_neighbors,
            inv_deg,
            cursor,
        } = out;
        *out_nodes = num_nodes;

        // Pass 1: count aggregation edges per CSR row, one section group
        // per worker. Group `g` owns the count slots of its own nodes
        // (`offsets[1..][node_lo..node_hi]`) and nothing else.
        offsets.clear();
        offsets.resize(num_nodes + 1, 0);
        crossbeam::thread::scope(|sc| {
            let mut rest: &mut [u32] = &mut offsets[1..];
            let mut consumed = 0usize;
            for_each_section_group(
                nt,
                num_sections,
                num_nodes,
                span,
                |sec_lo, sec_hi, _, nhi| {
                    let (slots, tail) = std::mem::take(&mut rest).split_at_mut(nhi - consumed);
                    let nlo = consumed;
                    rest = tail;
                    consumed = nhi;
                    sc.spawn(move |_| {
                        for sec in sec_lo..sec_hi {
                            let (start, len) = span(sec);
                            edges(sec, &mut |s: u32, d: u32| {
                                assert_section_edge(sec, start, len, s, d);
                                match direction {
                                    Direction::Fanin => slots[d as usize - nlo] += 1,
                                    Direction::Fanout => slots[s as usize - nlo] += 1,
                                    Direction::Bidirectional => {
                                        slots[d as usize - nlo] += 1;
                                        slots[s as usize - nlo] += 1;
                                    }
                                }
                            });
                        }
                    });
                },
            );
        })
        .expect("assembly worker panicked");

        let total = prefix_sum_sections(&mut offsets[1..], nt, num_sections, num_nodes, span);

        // Pass 2: fill the forward CSR slots. Group `g` owns its nodes'
        // cursors and the neighbor slots `offsets[node_lo]..offsets[node_hi]`
        // (contiguous, because its nodes are).
        cursor.clear();
        cursor.extend_from_slice(offsets);
        neighbors.clear();
        neighbors.resize(total, 0);
        crossbeam::thread::scope(|sc| {
            let offs: &[u32] = offsets;
            let mut cur_rest: &mut [u32] = &mut cursor[..num_nodes];
            let mut nb_rest: &mut [u32] = neighbors;
            let mut consumed = 0usize;
            let mut slot_consumed = 0usize;
            for_each_section_group(
                nt,
                num_sections,
                num_nodes,
                span,
                |sec_lo, sec_hi, _, nhi| {
                    let (cur, cur_tail) =
                        std::mem::take(&mut cur_rest).split_at_mut(nhi - consumed);
                    let nlo = consumed;
                    cur_rest = cur_tail;
                    consumed = nhi;
                    let slot_end = offs[nhi] as usize;
                    let (nbs, nb_tail) =
                        std::mem::take(&mut nb_rest).split_at_mut(slot_end - slot_consumed);
                    let slot_base = slot_consumed;
                    nb_rest = nb_tail;
                    slot_consumed = slot_end;
                    sc.spawn(move |_| {
                        for sec in sec_lo..sec_hi {
                            edges(sec, &mut |s: u32, d: u32| {
                                let mut put = |v: u32, u: u32| {
                                    let slot = &mut cur[v as usize - nlo];
                                    nbs[*slot as usize - slot_base] = u;
                                    *slot += 1;
                                };
                                match direction {
                                    Direction::Fanin => put(d, s),
                                    Direction::Fanout => put(s, d),
                                    Direction::Bidirectional => {
                                        put(d, s);
                                        put(s, d);
                                    }
                                }
                            });
                        }
                    });
                },
            );
        })
        .expect("assembly worker panicked");
        debug_assert!(
            (0..num_nodes).all(|v| cursor[v] == offsets[v + 1]),
            "edge stream changed between the count and fill passes"
        );

        // Reverse CSR. Every neighbor of a section's node lies in the same
        // section, so both reverse passes stay group-local too.
        rev_offsets.clear();
        rev_offsets.resize(num_nodes + 1, 0);
        crossbeam::thread::scope(|sc| {
            let offs: &[u32] = offsets;
            let nbs: &[u32] = neighbors;
            let mut rest: &mut [u32] = &mut rev_offsets[1..];
            let mut consumed = 0usize;
            for_each_section_group(nt, num_sections, num_nodes, span, |_, _, _, nhi| {
                let (slots, tail) = std::mem::take(&mut rest).split_at_mut(nhi - consumed);
                let nlo = consumed;
                rest = tail;
                consumed = nhi;
                sc.spawn(move |_| {
                    for &u in &nbs[offs[nlo] as usize..offs[nhi] as usize] {
                        slots[u as usize - nlo] += 1;
                    }
                });
            });
        })
        .expect("assembly worker panicked");
        prefix_sum_sections(&mut rev_offsets[1..], nt, num_sections, num_nodes, span);

        cursor.clear();
        cursor.extend_from_slice(rev_offsets);
        rev_neighbors.clear();
        rev_neighbors.resize(total, 0);
        crossbeam::thread::scope(|sc| {
            let offs: &[u32] = offsets;
            let nbs: &[u32] = neighbors;
            let roffs: &[u32] = rev_offsets;
            let mut cur_rest: &mut [u32] = &mut cursor[..num_nodes];
            let mut rnb_rest: &mut [u32] = rev_neighbors;
            let mut consumed = 0usize;
            let mut slot_consumed = 0usize;
            for_each_section_group(nt, num_sections, num_nodes, span, |_, _, _, nhi| {
                let (cur, cur_tail) = std::mem::take(&mut cur_rest).split_at_mut(nhi - consumed);
                let nlo = consumed;
                cur_rest = cur_tail;
                consumed = nhi;
                let slot_end = roffs[nhi] as usize;
                let (rnbs, rnb_tail) =
                    std::mem::take(&mut rnb_rest).split_at_mut(slot_end - slot_consumed);
                let slot_base = slot_consumed;
                rnb_rest = rnb_tail;
                slot_consumed = slot_end;
                sc.spawn(move |_| {
                    for v in nlo..nhi {
                        for &u in &nbs[offs[v] as usize..offs[v + 1] as usize] {
                            let slot = &mut cur[u as usize - nlo];
                            rnbs[*slot as usize - slot_base] = v as u32;
                            *slot += 1;
                        }
                    }
                });
            });
        })
        .expect("assembly worker panicked");

        inv_deg.clear();
        inv_deg.resize(num_nodes, 0.0);
        let offs: &[u32] = offsets;
        parallel::for_each_row(inv_deg, 1, |v, row| {
            let deg = offs[v + 1] - offs[v];
            row[0] = if deg == 0 { 0.0 } else { 1.0 / deg as f32 };
        });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (directed) aggregation edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The aggregation neighborhood of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Weisfeiler-Leman refinement of per-node 64-bit keys, `rounds` times:
    /// each round replaces `keys[v]` with a hash of its previous key, its
    /// in-CSR-order neighbor keys, and its degree — exactly the information
    /// one [`Graph::mean_aggregate`]-based GNN layer reads. After as many
    /// rounds as the model has message-passing layers, nodes with equal
    /// refined keys have (up to 64-bit hash collisions) identical
    /// receptive fields, so their embedding rows are bit-identical —
    /// the soundness argument of the cone-level prediction cache.
    ///
    /// Allocation-free once `scratch` has warmed to `num_nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != num_nodes`.
    pub fn refine_keys(&self, keys: &mut Vec<u64>, scratch: &mut Vec<u64>, rounds: usize) {
        assert_eq!(keys.len(), self.num_nodes, "one key per node");
        scratch.clear();
        scratch.resize(self.num_nodes, 0);
        for round in 0..rounds {
            for v in 0..self.num_nodes {
                let neigh = self.neighbors(v);
                let mut acc = wl_combine(wl_mix(keys[v] ^ round as u64), neigh.len() as u64);
                for &u in neigh {
                    acc = wl_combine(acc, keys[u as usize]);
                }
                scratch[v] = acc;
            }
            std::mem::swap(keys, scratch);
        }
    }

    /// Mean aggregation: `out[v] = mean_{u in N(v)} h[u]` (zero row when
    /// `N(v)` is empty).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows() != num_nodes`.
    pub fn mean_aggregate(&self, h: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.mean_aggregate_into(h, &mut out);
        out
    }

    /// [`Graph::mean_aggregate`] into a caller-owned buffer (no heap
    /// allocation once `out` has enough capacity).
    ///
    /// # Panics
    ///
    /// Panics if `h.rows() != num_nodes`.
    pub fn mean_aggregate_into(&self, h: &Matrix, out: &mut Matrix) {
        assert_eq!(h.rows(), self.num_nodes, "one embedding row per node");
        let dim = h.cols();
        out.reset(self.num_nodes, dim);
        let width = dim.max(1);
        parallel::for_each_row_block(out.as_mut_slice(), width, AGG_BLOCK_ROWS, |v0, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let v = v0 + i;
                let neigh = self.neighbors(v);
                if neigh.is_empty() {
                    continue;
                }
                for &u in neigh {
                    for (o, &x) in row.iter_mut().zip(h.row(u as usize)) {
                        *o += x;
                    }
                }
                let inv = self.inv_deg[v];
                for o in row.iter_mut() {
                    *o *= inv;
                }
            }
        });
    }

    /// Backward of [`Graph::mean_aggregate`]: given `d(out)`, returns
    /// `d(h)` where `d(h)[u] = Σ_{v : u ∈ N(v)} d(out)[v] / deg(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.rows() != num_nodes`.
    pub fn mean_aggregate_backward(&self, grad: &Matrix) -> Matrix {
        assert_eq!(grad.rows(), self.num_nodes);
        let dim = grad.cols();
        let mut out = Matrix::zeros(self.num_nodes, dim);
        let width = dim.max(1);
        parallel::for_each_row_block(out.as_mut_slice(), width, AGG_BLOCK_ROWS, |u0, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let u = u0 + i;
                let consumers = &self.rev_neighbors
                    [self.rev_offsets[u] as usize..self.rev_offsets[u + 1] as usize];
                for &v in consumers {
                    let inv = self.inv_deg[v as usize];
                    for (o, &g) in row.iter_mut().zip(grad.row(v as usize)) {
                        *o += g * inv;
                    }
                }
            }
        });
        out
    }
}

/// Row-block height for tiled aggregation: big enough to amortise the
/// per-block closure dispatch over the CSR gather, small enough that a
/// block's output rows plus its gathered neighbor rows stay cache-resident.
const AGG_BLOCK_ROWS: usize = 64;

/// SplitMix64 finaliser used by [`Graph::refine_keys`] (the same
/// construction as `gamora_aig::hasher::mix64`; duplicated because this
/// crate is deliberately independent of the AIG layer).
#[inline]
fn wl_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Order-sensitive combine for [`Graph::refine_keys`].
#[inline]
fn wl_combine(a: u64, b: u64) -> u64 {
    wl_mix(a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.rotate_left(32))
}

/// Node ids travel as `u32` through the edge stream and the CSR arrays.
fn assert_node_count(num_nodes: usize) {
    assert!(
        num_nodes as u64 <= u32::MAX as u64 + 1,
        "{num_nodes} nodes exceed the u32 node-id space"
    );
}

/// Both endpoints of a sectioned edge must lie inside the section that
/// streamed it — the disjointness that makes the parallel passes safe.
#[inline]
fn assert_section_edge(sec: usize, start: usize, len: usize, s: u32, d: u32) {
    let (s, d) = (s as usize, d as usize);
    assert!(
        s >= start && s < start + len && d >= start && d < start + len,
        "edge ({s}, {d}) leaves section {sec} (nodes {start}..{})",
        start + len
    );
}

/// Converts a running (u64) CSR prefix total to the u32 slot type,
/// panicking with a clear message when a multi-million-edge graph
/// overflows the index width.
#[inline]
fn checked_csr_index(total: u64) -> u32 {
    if total > u64::from(u32::MAX) {
        csr_overflow(total);
    }
    total as u32
}

#[cold]
#[inline(never)]
fn csr_overflow(total: u64) -> ! {
    panic!(
        "CSR prefix overflow: {total} aggregation edges exceed the u32 index limit \
         ({} max); split the batch into smaller graphs",
        u32::MAX
    );
}

/// In-place inclusive prefix sum over per-node counts (the `[1..]` tail of
/// an offsets array), overflow-checked; returns the edge total.
fn prefix_sum_serial(counts: &mut [u32]) -> usize {
    let mut acc = 0u64;
    for slot in counts.iter_mut() {
        acc += u64::from(*slot);
        *slot = checked_csr_index(acc);
    }
    acc as usize
}

/// [`prefix_sum_serial`] fanned out over section groups: group-local
/// inclusive prefixes run in parallel, the per-group bases accumulate
/// serially on the caller thread (O(groups)), and each base adds back into
/// its group in parallel. u32 additions only ever see the values the
/// serial scan would produce, so the result is bit-identical.
fn prefix_sum_sections<S>(
    counts: &mut [u32],
    nt: usize,
    num_sections: usize,
    num_nodes: usize,
    span: &S,
) -> usize
where
    S: Fn(usize) -> (usize, usize) + Sync,
{
    crossbeam::thread::scope(|sc| {
        let mut rest: &mut [u32] = counts;
        let mut consumed = 0usize;
        for_each_section_group(nt, num_sections, num_nodes, span, |_, _, _, nhi| {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(nhi - consumed);
            rest = tail;
            consumed = nhi;
            sc.spawn(move |_| {
                let mut acc = 0u64;
                for slot in head.iter_mut() {
                    acc += u64::from(*slot);
                    *slot = checked_csr_index(acc);
                }
            });
        });
    })
    .expect("assembly worker panicked");

    let mut base = 0u64;
    crossbeam::thread::scope(|sc| {
        let mut rest: &mut [u32] = counts;
        let mut consumed = 0usize;
        for_each_section_group(nt, num_sections, num_nodes, span, |_, _, _, nhi| {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(nhi - consumed);
            rest = tail;
            consumed = nhi;
            let Some(&last) = head.last() else {
                return;
            };
            // The largest value this group will hold after the base add.
            checked_csr_index(base + u64::from(last));
            let add = base as u32;
            base += u64::from(last);
            if add > 0 {
                sc.spawn(move |_| {
                    for slot in head.iter_mut() {
                        *slot += add;
                    }
                });
            }
        });
    })
    .expect("assembly worker panicked");
    base as usize
}

/// Partitions the sections into at most `nt + 1` contiguous groups of
/// roughly `num_nodes / nt` nodes each and calls
/// `each(sec_lo, sec_hi, node_lo, node_hi)` for every group, in order.
/// Deterministic, so every pass of one build sees the same grouping.
fn for_each_section_group<S>(
    nt: usize,
    num_sections: usize,
    num_nodes: usize,
    span: &S,
    mut each: impl FnMut(usize, usize, usize, usize),
) where
    S: Fn(usize) -> (usize, usize),
{
    let target = num_nodes.div_ceil(nt).max(1);
    let mut sec = 0usize;
    let mut node = 0usize;
    while sec < num_sections {
        let (sec_lo, node_lo) = (sec, node);
        loop {
            let (_, len) = span(sec);
            node += len;
            sec += 1;
            if sec >= num_sections || node - node_lo >= target {
                break;
            }
        }
        each(sec_lo, sec, node_lo, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 -> 1 -> 2.
    fn path() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2)]
    }

    #[test]
    fn fanin_neighbors() {
        let g = Graph::from_edges(3, &path(), Direction::Fanin);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bidirectional_neighbors() {
        let g = Graph::from_edges(3, &path(), Direction::Bidirectional);
        assert_eq!(g.neighbors(1).len(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn mean_aggregation_values() {
        let g = Graph::from_edges(3, &path(), Direction::Bidirectional);
        let h = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 2.0, 4.0, 4.0]);
        let agg = g.mean_aggregate(&h);
        // node 1 averages nodes 0 and 2 -> (2.5, 2.0)
        assert_eq!(agg.row(1), &[2.5, 2.0]);
        // node 0 sees only node 1
        assert_eq!(agg.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn isolated_nodes_aggregate_zero() {
        let g = Graph::from_edges(4, &[(0, 1)], Direction::Fanin);
        let h = Matrix::from_vec(4, 1, vec![5.0, 6.0, 7.0, 8.0]);
        let agg = g.mean_aggregate(&h);
        assert_eq!(agg.row(3), &[0.0]);
        assert_eq!(agg.row(0), &[0.0]); // fanin of 0 is empty
        assert_eq!(agg.row(1), &[5.0]);
    }

    /// WL refinement merges nodes with identical receptive fields and
    /// splits nodes whose neighborhoods differ at any refined hop.
    #[test]
    fn refine_keys_respects_receptive_fields() {
        // Two disjoint, identical paths (0-1-2 and 3-4-5) plus one longer
        // path (6-7-8-9): within-path-pair twins must stay merged at every
        // round; endpoints of the longer path separate from middle nodes.
        let edges = vec![(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8), (8, 9)];
        let g = Graph::from_edges(10, &edges, Direction::Bidirectional);
        let mut keys = vec![1u64; 10];
        let mut scratch = Vec::new();
        g.refine_keys(&mut keys, &mut scratch, 2);
        assert_eq!(keys[0], keys[3], "twin path starts");
        assert_eq!(keys[1], keys[4], "twin path middles");
        assert_eq!(keys[2], keys[5], "twin path ends");
        // 0 and 6 both start a path, but at round 2 node 6 sees a
        // degree-2 neighbor-of-neighbor while node 0's is degree 1... both
        // see (1:{0,2}) vs (7:{6,8}) — structurally identical 2-hop views,
        // so they MERGE; node 7 vs node 1 differ at hop 2 (8 has degree 2,
        // 2 has degree 1).
        assert_eq!(keys[0], keys[6], "2-hop-identical starts merge");
        assert_ne!(keys[1], keys[7], "hop-2 degree difference splits");
        // Refinement is deterministic and allocation-stable on reuse.
        let mut keys2 = vec![1u64; 10];
        g.refine_keys(&mut keys2, &mut scratch, 2);
        assert_eq!(keys, keys2);
        // Distinct seeds (base keys) never merge.
        let mut keys3: Vec<u64> = (0..10).collect();
        g.refine_keys(&mut keys3, &mut scratch, 2);
        assert_ne!(keys3[0], keys3[3]);
    }

    /// An in-place rebuild into a reused graph (grow-then-shrink and
    /// shrink-then-grow) is indistinguishable from fresh construction,
    /// including the derived reverse adjacency.
    #[test]
    fn from_edges_into_reuse_matches_fresh() {
        let mut g = Graph::default();
        for n in [6usize, 3, 9] {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            for dir in [
                Direction::Fanin,
                Direction::Fanout,
                Direction::Bidirectional,
            ] {
                Graph::from_edges_into(
                    n,
                    dir,
                    |sink| {
                        for &(s, d) in &edges {
                            sink(s, d);
                        }
                    },
                    &mut g,
                );
                let fresh = Graph::from_edges(n, &edges, dir);
                assert_eq!(g.num_nodes(), fresh.num_nodes());
                assert_eq!(g.num_edges(), fresh.num_edges());
                for v in 0..n {
                    assert_eq!(g.neighbors(v), fresh.neighbors(v), "{dir:?} node {v}");
                }
                let grad = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32 + 1.0).collect());
                assert_eq!(
                    g.mean_aggregate_backward(&grad).as_slice(),
                    fresh.mean_aggregate_backward(&grad).as_slice(),
                    "{dir:?} reverse adjacency"
                );
            }
        }
    }

    /// The u32 CSR index accepts exactly `u32::MAX` edges and rejects one
    /// more with a clear message — the boundary of the overflow guard on
    /// multi-million-edge graphs.
    #[test]
    fn csr_index_accepts_the_u32_boundary() {
        assert_eq!(checked_csr_index(u64::from(u32::MAX)), u32::MAX);
        let mut counts = vec![u32::MAX, 0, 0];
        assert_eq!(prefix_sum_serial(&mut counts), u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "exceed the u32 index limit")]
    fn csr_index_panics_past_the_u32_boundary() {
        let mut counts = vec![u32::MAX, 1];
        prefix_sum_serial(&mut counts);
    }

    /// A sectioned build over two sections matches the plain streamed
    /// build (the serial fallback path; the parallel path is covered by
    /// the release-mode equivalence suite).
    #[test]
    fn sectioned_build_matches_streamed_build() {
        let sections: [&[(u32, u32)]; 3] = [&[(0, 1), (1, 2), (0, 2)], &[], &[(3, 4), (4, 3)]];
        let spans = [(0usize, 3usize), (3, 0), (3, 2)];
        for dir in [
            Direction::Fanin,
            Direction::Fanout,
            Direction::Bidirectional,
        ] {
            let mut got = Graph::default();
            Graph::from_sections_into(
                5,
                dir,
                3,
                |i| spans[i],
                |i, sink| {
                    for &(s, d) in sections[i] {
                        sink(s, d);
                    }
                },
                &mut got,
            );
            let all: Vec<(u32, u32)> = sections.iter().flat_map(|s| s.iter().copied()).collect();
            let want = Graph::from_edges(5, &all, dir);
            assert_eq!(got.num_edges(), want.num_edges());
            for v in 0..5 {
                assert_eq!(got.neighbors(v), want.neighbors(v), "{dir:?} node {v}");
            }
        }
    }

    /// An edge whose endpoints leave its section must be rejected — the
    /// disjointness contract the parallel passes rely on.
    #[test]
    #[should_panic(expected = "leaves section")]
    fn sectioned_build_rejects_cross_section_edges() {
        let mut g = Graph::default();
        Graph::from_sections_into(
            4,
            Direction::Fanin,
            2,
            |i| if i == 0 { (0, 2) } else { (2, 2) },
            |i, sink| {
                if i == 0 {
                    sink(0, 3); // crosses into section 1
                }
            },
            &mut g,
        );
    }

    /// The backward pass must be the exact adjoint of the forward pass:
    /// <A x, y> == <x, A^T y> for all x, y.
    #[test]
    fn backward_is_adjoint_of_forward() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 17;
        let edges: Vec<(u32, u32)> = (0..40)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        for dir in [
            Direction::Fanin,
            Direction::Fanout,
            Direction::Bidirectional,
        ] {
            let g = Graph::from_edges(n, &edges, dir);
            let dim = 3;
            let x = Matrix::from_vec(
                n,
                dim,
                (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let y = Matrix::from_vec(
                n,
                dim,
                (0..n * dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let ax = g.mean_aggregate(&x);
            let aty = g.mean_aggregate_backward(&y);
            let dot = |a: &Matrix, b: &Matrix| -> f64 {
                a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(&p, &q)| p as f64 * q as f64)
                    .sum()
            };
            let lhs = dot(&ax, &y);
            let rhs = dot(&x, &aty);
            assert!((lhs - rhs).abs() < 1e-4, "{dir:?}: {lhs} vs {rhs}");
        }
    }
}
