//! Neural layers with explicit forward/backward passes: GraphSAGE
//! convolution and dense linear layers.
//!
//! Layers are **immutable in the forward direction**: inference borrows a
//! layer by `&self` and can write into caller-owned scratch buffers
//! (`forward_into`), so one model instance can be shared read-only across
//! threads. Training-mode forwards record activations on an external
//! [`LinearTape`] owned by the trainer instead of inside the layer; the
//! backward pass consumes that tape and accumulates gradients (`gw`/`gb`)
//! in the layer for the optimiser.

use crate::graph::Graph;
use crate::tensor::{fused_gemm_into, Epilogue, Matrix, QuantisedMatrix, Weights};
use rand::Rng;

/// Activations recorded by a training-mode forward through one [`Linear`]
/// (layer input and post-activation output), consumed by
/// [`Linear::backward`]. Buffers are reused across training steps.
#[derive(Clone, Debug, Default)]
pub struct LinearTape {
    x: Matrix,
    y: Matrix,
}

/// A dense layer `y = act(x @ W + b)` with optional ReLU.
///
/// Inference can run from an optional read-only i8-quantised weight
/// store ([`Linear::quantise`]); training always reads and updates the
/// `f32` weights. The optimiser/injection entry points
/// ([`Linear::param_grads`] and [`Linear::param_slices_mut`]) drop the
/// quantised store so a weight update through them cannot leave it
/// serving stale values; writing the public `w` field directly bypasses
/// that guard — re-invoke [`Linear::quantise`] after doing so.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f32>,
    /// Weight gradient accumulator.
    pub gw: Matrix,
    /// Bias gradient accumulator.
    pub gb: Vec<f32>,
    relu: bool,
    /// i8-quantised inference weights (per-output-column scale), present
    /// only after [`Linear::quantise`] / [`Linear::install_quantised`].
    qw: Option<QuantisedMatrix>,
}

impl Linear {
    /// Creates a Glorot-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, rng: &mut impl Rng) -> Linear {
        Linear {
            w: Matrix::glorot(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            relu,
            qw: None,
        }
    }

    /// Creates a zero-initialised layer skeleton: correct shapes, no RNG
    /// draw. Snapshot loaders overwrite (or borrow) every weight anyway,
    /// so the Glorot pass of [`Linear::new`] would be wasted cold-start
    /// work.
    pub fn new_zeroed(in_dim: usize, out_dim: usize, relu: bool) -> Linear {
        Linear {
            w: Matrix::zeros(in_dim, out_dim),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            relu,
            qw: None,
        }
    }

    /// Builds (or refreshes) the i8-quantised inference weight store from
    /// the current `f32` weights. Call after training/weight updates;
    /// inference forwards use the store from then on.
    pub fn quantise(&mut self) {
        self.qw = Some(QuantisedMatrix::quantise(&self.w));
    }

    /// The quantised inference weights, if present.
    pub fn quantised(&self) -> Option<&QuantisedMatrix> {
        self.qw.as_ref()
    }

    /// Installs a deserialised quantised store (snapshot loading). The
    /// `f32` weights are refreshed from the dequantised values so the
    /// training-path view of the layer stays consistent with what
    /// inference serves.
    ///
    /// # Panics
    ///
    /// Panics if `q`'s shape differs from the layer's weight matrix.
    pub fn install_quantised(&mut self, q: QuantisedMatrix) {
        assert_eq!(
            (q.rows(), q.cols()),
            (self.w.rows(), self.w.cols()),
            "quantised store shape mismatch"
        );
        self.w = q.dequantise();
        self.qw = Some(q);
    }

    /// Installs a quantised store for **serving only**: unlike
    /// [`Linear::install_quantised`] the `f32` weights are *not*
    /// refreshed from the dequantised values, so the install is O(1) in
    /// the weight count — the point of the memory-mapped cold-start path.
    /// Inference forwards read the store exclusively; the training-path
    /// `w` keeps whatever (skeleton) values it had, so do not train or
    /// re-serialise a model loaded this way without re-installing via
    /// [`Linear::install_quantised`].
    ///
    /// # Panics
    ///
    /// Panics if `q`'s shape differs from the layer's weight matrix.
    pub fn install_quantised_serving(&mut self, q: QuantisedMatrix) {
        assert_eq!(
            (q.rows(), q.cols()),
            (self.w.rows(), self.w.cols()),
            "quantised store shape mismatch"
        );
        self.qw = Some(q);
    }

    /// Inference forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, &mut y);
        y
    }

    /// Inference forward pass into a caller-owned buffer (no heap
    /// allocation once `y` has enough capacity). One fused GEMM pass:
    /// the optional dequantisation scales, bias and the optional ReLU
    /// run in the kernel epilogue. Serves the quantised store when one
    /// is installed, the `f32` weights otherwise.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        match &self.qw {
            Some(q) => fused_gemm_into(
                x,
                Weights::I8(q.values()),
                None,
                Epilogue {
                    scales: Some(q.scales()),
                    bias: Some(&self.b),
                    relu: self.relu,
                },
                q.cols(),
                y,
            ),
            None => fused_gemm_into(
                x,
                Weights::F32(self.w.as_slice()),
                None,
                Epilogue {
                    scales: None,
                    bias: Some(&self.b),
                    relu: self.relu,
                },
                self.w.cols(),
                y,
            ),
        }
    }

    /// Training forward pass: records the input and output on `tape` for
    /// the backward pass. Always computes through the `f32` weights (the
    /// tape and backward pass differentiate those), even when a quantised
    /// inference store is installed.
    pub fn forward_train(&self, x: &Matrix, tape: &mut LinearTape) -> Matrix {
        tape.x.copy_from(x);
        let mut y = Matrix::default();
        fused_gemm_into(
            x,
            Weights::F32(self.w.as_slice()),
            None,
            Epilogue {
                scales: None,
                bias: Some(&self.b),
                relu: self.relu,
            },
            self.w.cols(),
            &mut y,
        );
        tape.y.copy_from(&y);
        y
    }

    /// Backward pass: accumulates `gw`/`gb` and returns `d(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `tape` was not filled by a preceding
    /// [`Linear::forward_train`].
    pub fn backward(&mut self, grad_out: &Matrix, tape: &LinearTape) -> Matrix {
        assert!(tape.x.rows() > 0, "backward without a training forward");
        let grad_pre = if self.relu {
            grad_out.relu_backward(&tape.y)
        } else {
            grad_out.clone()
        };
        self.gw.add_scaled(&tape.x.transpose_matmul(&grad_pre), 1.0);
        for (g, v) in self.gb.iter_mut().zip(grad_pre.column_sums()) {
            *g += v;
        }
        grad_pre.matmul_transpose(&self.w)
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw = Matrix::zeros(self.w.rows(), self.w.cols());
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Parameter/gradient pairs for the optimiser.
    ///
    /// Exposing the weights mutably invalidates (drops) any quantised
    /// inference store — it would otherwise serve the pre-update weights.
    pub fn param_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        self.qw = None;
        vec![
            (self.w.as_mut_slice(), self.gw.as_slice()),
            (&mut self.b, &self.gb),
        ]
    }

    /// Parameter tensors in the same stable order as [`Linear::param_grads`]
    /// (weights, then bias) — the serialisation order of model snapshots.
    pub fn param_slices(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    /// Mutable parameter tensors in snapshot order (weight injection).
    ///
    /// Like [`Linear::param_grads`], this drops any quantised store: the
    /// caller is about to overwrite the weights it was built from.
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        self.qw = None;
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Resident weight-store bytes: the quantised store when installed
    /// (i8 payload + scales), the `f32` weights otherwise, plus the
    /// `f32` bias either way. Counts only process-owned storage — weight
    /// spans borrowed from a shared region (memory-mapped snapshots)
    /// count zero.
    pub fn resident_weight_bytes(&self) -> usize {
        let weights = match &self.qw {
            Some(q) => q.resident_bytes(),
            None => self.w.resident_bytes(),
        };
        weights + self.b.len() * 4
    }
}

/// Reusable aggregation buffer for allocation-free SAGE forwards (shared
/// by every layer of a model, since layers run in sequence).
///
/// There is deliberately no concat buffer: the split-weight forward
/// multiplies `h` and the aggregate against the two row halves of the
/// combined weight matrix, so the `[h | agg]` concatenation is never
/// materialised.
#[derive(Clone, Debug, Default)]
pub struct SageScratch {
    agg: Matrix,
}

/// One GraphSAGE convolution (Hamilton et al., Eq. 1 of the paper):
///
/// `h_v <- ReLU(W @ concat(h_v, mean_{u in N(v)} h_u) + b)`.
#[derive(Clone, Debug)]
pub struct SageLayer {
    lin: Linear,
    in_dim: usize,
}

impl SageLayer {
    /// Creates a layer mapping `in_dim` to `out_dim` features.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> SageLayer {
        SageLayer {
            lin: Linear::new(2 * in_dim, out_dim, true, rng),
            in_dim,
        }
    }

    /// Creates a zero-initialised layer skeleton for snapshot loaders
    /// (see [`Linear::new_zeroed`]).
    pub fn new_zeroed(in_dim: usize, out_dim: usize) -> SageLayer {
        SageLayer {
            lin: Linear::new_zeroed(2 * in_dim, out_dim, true),
            in_dim,
        }
    }

    /// Inference forward pass over a graph.
    pub fn forward(&self, graph: &Graph, h: &Matrix) -> Matrix {
        let mut ws = SageScratch::default();
        let mut out = Matrix::default();
        self.forward_into(graph, h, &mut ws, &mut out);
        out
    }

    /// Inference forward pass into caller-owned buffers (no heap
    /// allocation once `ws` and `out` have enough capacity).
    pub fn forward_into(&self, graph: &Graph, h: &Matrix, ws: &mut SageScratch, out: &mut Matrix) {
        graph.mean_aggregate_into(h, &mut ws.agg);
        self.fused_into(h, &ws.agg, out);
    }

    /// The split-weight fused convolution: `ReLU(h @ W_self + agg @
    /// W_neigh + b)` in one GEMM pass. `W_self`/`W_neigh` are the row
    /// halves of the combined weight matrix (row-major, so they are
    /// contiguous slices — nothing is copied, and snapshots keep the
    /// combined on-disk layout). With a quantised store installed the
    /// halves are the same slices of the i8 payload, sharing the store's
    /// per-output-column scales (columns are untouched by the row split).
    fn fused_into(&self, h: &Matrix, agg: &Matrix, out: &mut Matrix) {
        let n = self.lin.w.cols();
        match self.lin.quantised() {
            Some(q) => {
                let (q_self, q_neigh) = q.values().split_at(self.in_dim * n);
                fused_gemm_into(
                    h,
                    Weights::I8(q_self),
                    Some((agg, Weights::I8(q_neigh))),
                    Epilogue {
                        scales: Some(q.scales()),
                        bias: Some(&self.lin.b),
                        relu: true,
                    },
                    n,
                    out,
                );
            }
            None => self.fused_into_f32(h, agg, out),
        }
    }

    /// The `f32` split-weight convolution (the training-path forward).
    fn fused_into_f32(&self, h: &Matrix, agg: &Matrix, out: &mut Matrix) {
        let n = self.lin.w.cols();
        let (w_self, w_neigh) = self.lin.w.as_slice().split_at(self.in_dim * n);
        fused_gemm_into(
            h,
            Weights::F32(w_self),
            Some((agg, Weights::F32(w_neigh))),
            Epilogue {
                scales: None,
                bias: Some(&self.lin.b),
                relu: true,
            },
            n,
            out,
        );
    }

    /// Training forward pass: records activations on `tape`.
    ///
    /// The output is computed through the same split-weight fused kernel
    /// as [`SageLayer::forward_into`] over the `f32` weights (training
    /// and unquantised inference logits stay bit-identical; training
    /// never reads a quantised store); only the tape still materialises
    /// the `[h | agg]` concatenation, because the backward pass needs it
    /// for the weight gradient `X^T @ dY` over the full `2 * in_dim`
    /// width.
    pub fn forward_train(&self, graph: &Graph, h: &Matrix, tape: &mut LinearTape) -> Matrix {
        let agg = graph.mean_aggregate(h);
        h.hconcat_into(&agg, &mut tape.x);
        let mut y = Matrix::default();
        self.fused_into_f32(h, &agg, &mut y);
        tape.y.copy_from(&y);
        y
    }

    /// Backward pass; returns the gradient w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Panics if `tape` was not filled by a preceding
    /// [`SageLayer::forward_train`].
    pub fn backward(&mut self, graph: &Graph, grad_out: &Matrix, tape: &LinearTape) -> Matrix {
        let grad_concat = self.lin.backward(grad_out, tape);
        let (grad_self, grad_neigh) = grad_concat.hsplit(self.in_dim);
        let mut grad_h = grad_self;
        grad_h.add_scaled(&graph.mean_aggregate_backward(&grad_neigh), 1.0);
        grad_h
    }

    /// Quantises the layer's combined weight matrix for inference (see
    /// [`Linear::quantise`]).
    pub fn quantise(&mut self) {
        self.lin.quantise();
    }

    /// Read access to the underlying linear (snapshot serialisation).
    pub fn linear(&self) -> &Linear {
        &self.lin
    }

    /// Mutable access to the underlying linear (snapshot injection).
    pub fn linear_mut(&mut self) -> &mut Linear {
        &mut self.lin
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.lin.zero_grad();
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn param_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        self.lin.param_grads()
    }

    /// Parameter tensors in snapshot order (see [`Linear::param_slices`]).
    pub fn param_slices(&self) -> Vec<&[f32]> {
        self.lin.param_slices()
    }

    /// Mutable parameter tensors in snapshot order (weight injection).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        self.lin.param_slices_mut()
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.lin.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use rand::SeedableRng;

    /// Finite-difference gradient check for the linear layer.
    #[test]
    fn linear_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut lin = Linear::new(3, 2, true, &mut rng);
        let x = Matrix::glorot(4, 3, &mut rng);
        // Loss = sum of outputs; d(loss)/d(y) = ones.
        let loss = |lin: &Linear, x: &Matrix| -> f32 { lin.forward(x).as_slice().iter().sum() };
        let mut tape = LinearTape::default();
        let y = lin.forward_train(&x, &mut tape);
        let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let gx = lin.backward(&ones, &tape);

        let eps = 1e-3;
        // Check d(loss)/d(w[0,0]).
        let base = loss(&lin, &x);
        let orig = lin.w.get(0, 0);
        lin.w.set(0, 0, orig + eps);
        let plus = loss(&lin, &x);
        lin.w.set(0, 0, orig);
        let numeric = (plus - base) / eps;
        let analytic = lin.gw.get(0, 0);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "dW numeric {numeric} vs analytic {analytic}"
        );
        // Check d(loss)/d(x[1,2]).
        let mut x2 = x.clone();
        x2.set(1, 2, x.get(1, 2) + eps);
        let plus_x = loss(&lin, &x2);
        let numeric_x = (plus_x - base) / eps;
        let analytic_x = gx.get(1, 2);
        assert!(
            (numeric_x - analytic_x).abs() < 1e-2,
            "dX numeric {numeric_x} vs analytic {analytic_x}"
        );
    }

    /// Finite-difference gradient check through a SAGE layer, including the
    /// aggregation backward.
    #[test]
    fn sage_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let graph = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            Direction::Bidirectional,
        );
        let mut layer = SageLayer::new(2, 3, &mut rng);
        let x = Matrix::glorot(5, 2, &mut rng);
        let loss =
            |l: &SageLayer, x: &Matrix| -> f32 { l.forward(&graph, x).as_slice().iter().sum() };
        let mut tape = LinearTape::default();
        let y = layer.forward_train(&graph, &x, &mut tape);
        let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let gx = layer.backward(&graph, &ones, &tape);

        let eps = 1e-3;
        let base = loss(&layer, &x);
        for (r, c) in [(0usize, 0usize), (2, 1), (4, 0)] {
            let mut x2 = x.clone();
            x2.set(r, c, x.get(r, c) + eps);
            let numeric = (loss(&layer, &x2) - base) / eps;
            let analytic = gx.get(r, c);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "d(x[{r},{c}]) numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// The scratch-buffer forward is bit-identical to the allocating one,
    /// including when the scratch is reused across differently sized
    /// inputs.
    #[test]
    fn forward_into_matches_allocating_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let layer = SageLayer::new(3, 4, &mut rng);
        let mut ws = SageScratch::default();
        let mut out = Matrix::default();
        for n in [7usize, 5, 9] {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let graph = Graph::from_edges(n, &edges, Direction::Bidirectional);
            let h = Matrix::glorot(n, 3, &mut rng);
            layer.forward_into(&graph, &h, &mut ws, &mut out);
            assert_eq!(out, layer.forward(&graph, &h), "n = {n}");
        }
    }

    /// A quantised layer serves logits equal (to float tolerance) to the
    /// f32 forward over its dequantised weights, through both the dense
    /// and the split-weight SAGE path; the training forward keeps reading
    /// the original f32 weights.
    #[test]
    fn quantised_forward_matches_dequantised_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut lin = Linear::new(6, 5, true, &mut rng);
        let x = Matrix::glorot(7, 6, &mut rng);
        let f32_out = lin.forward(&x);
        lin.quantise();
        let q = lin.quantised().expect("store installed").clone();
        let quant_out = lin.forward(&x);
        // Reference: dense forward over the dequantised weights.
        let mut want = x.matmul(&q.dequantise());
        want.add_row_vector(&lin.b);
        want.relu_in_place();
        for (g, w) in quant_out.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
        // Quantisation really changed something (sanity) but not much.
        let mut max_diff = 0.0f32;
        for (a, b) in quant_out.as_slice().iter().zip(f32_out.as_slice()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff < 0.05, "quantisation error too large: {max_diff}");

        // Training forward still reads the f32 weights bit-exactly.
        let mut tape = LinearTape::default();
        let trained = lin.forward_train(&x, &mut tape);
        assert_eq!(trained, f32_out);

        // Mutable weight exposure invalidates the store.
        let _ = lin.param_grads();
        assert!(lin.quantised().is_none());

        let mut sage = SageLayer::new(3, 4, &mut rng);
        let graph = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)], Direction::Bidirectional);
        let h = Matrix::glorot(5, 3, &mut rng);
        sage.quantise();
        let got = sage.forward(&graph, &h);
        let deq = sage.linear().quantised().expect("installed").dequantise();
        let agg = graph.mean_aggregate(&h);
        let concat = h.hconcat(&agg);
        let mut want = concat.matmul(&deq);
        want.add_row_vector(&sage.linear().b);
        want.relu_in_place();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5, "sage: {g} vs {w}");
        }
    }

    #[test]
    fn param_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let lin = Linear::new(10, 4, false, &mut rng);
        assert_eq!(lin.num_params(), 44);
        let sage = SageLayer::new(8, 16, &mut rng);
        assert_eq!(sage.num_params(), 2 * 8 * 16 + 16);
    }

    #[test]
    fn zero_grad_resets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        let x = Matrix::glorot(3, 2, &mut rng);
        let mut tape = LinearTape::default();
        let y = lin.forward_train(&x, &mut tape);
        let g = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; 6]);
        lin.backward(&g, &tape);
        assert!(lin.gw.norm() > 0.0);
        lin.zero_grad();
        assert_eq!(lin.gw.norm(), 0.0);
    }
}
