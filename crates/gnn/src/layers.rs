//! Neural layers with explicit forward/backward passes: GraphSAGE
//! convolution and dense linear layers.

use crate::graph::Graph;
use crate::tensor::Matrix;
use rand::Rng;

/// A dense layer `y = act(x @ W + b)` with optional ReLU.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weight matrix, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias vector, `out_dim`.
    pub b: Vec<f32>,
    /// Weight gradient accumulator.
    pub gw: Matrix,
    /// Bias gradient accumulator.
    pub gb: Vec<f32>,
    relu: bool,
    cache_x: Matrix,
    cache_y: Matrix,
}

impl Linear {
    /// Creates a Glorot-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, rng: &mut impl Rng) -> Linear {
        Linear {
            w: Matrix::glorot(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            relu,
            cache_x: Matrix::zeros(0, 0),
            cache_y: Matrix::zeros(0, 0),
        }
    }

    /// Forward pass; caches activations when `train` is set.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_vector(&self.b);
        if self.relu {
            y = y.relu();
        }
        if train {
            self.cache_x = x.clone();
            self.cache_y = y.clone();
        }
        y
    }

    /// Backward pass: accumulates `gw`/`gb` and returns `d(x)`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert!(self.cache_x.rows() > 0, "backward without cached forward");
        let grad_pre = if self.relu {
            grad_out.relu_backward(&self.cache_y)
        } else {
            grad_out.clone()
        };
        self.gw
            .add_scaled(&self.cache_x.transpose_matmul(&grad_pre), 1.0);
        for (g, v) in self.gb.iter_mut().zip(grad_pre.column_sums()) {
            *g += v;
        }
        grad_pre.matmul_transpose(&self.w)
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.gw = Matrix::zeros(self.w.rows(), self.w.cols());
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn param_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        vec![
            (self.w.as_mut_slice(), self.gw.as_slice()),
            (&mut self.b, &self.gb),
        ]
    }

    /// Parameter tensors in the same stable order as [`Linear::param_grads`]
    /// (weights, then bias) — the serialisation order of model snapshots.
    pub fn param_slices(&self) -> Vec<&[f32]> {
        vec![self.w.as_slice(), &self.b]
    }

    /// Mutable parameter tensors in snapshot order (weight injection).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.w.as_mut_slice(), &mut self.b]
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// One GraphSAGE convolution (Hamilton et al., Eq. 1 of the paper):
///
/// `h_v <- ReLU(W @ concat(h_v, mean_{u in N(v)} h_u) + b)`.
#[derive(Clone, Debug)]
pub struct SageLayer {
    lin: Linear,
    in_dim: usize,
    cache_input: Matrix,
}

impl SageLayer {
    /// Creates a layer mapping `in_dim` to `out_dim` features.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> SageLayer {
        SageLayer {
            lin: Linear::new(2 * in_dim, out_dim, true, rng),
            in_dim,
            cache_input: Matrix::zeros(0, 0),
        }
    }

    /// Forward pass over a graph.
    pub fn forward(&mut self, graph: &Graph, h: &Matrix, train: bool) -> Matrix {
        let h_n = graph.mean_aggregate(h);
        let concat = h.hconcat(&h_n);
        if train {
            self.cache_input = h.clone();
        }
        self.lin.forward(&concat, train)
    }

    /// Backward pass; returns the gradient w.r.t. the layer input.
    pub fn backward(&mut self, graph: &Graph, grad_out: &Matrix) -> Matrix {
        let grad_concat = self.lin.backward(grad_out);
        let (grad_self, grad_neigh) = grad_concat.hsplit(self.in_dim);
        let mut grad_h = grad_self;
        grad_h.add_scaled(&graph.mean_aggregate_backward(&grad_neigh), 1.0);
        grad_h
    }

    /// Clears gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.lin.zero_grad();
    }

    /// Parameter/gradient pairs for the optimiser.
    pub fn param_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        self.lin.param_grads()
    }

    /// Parameter tensors in snapshot order (see [`Linear::param_slices`]).
    pub fn param_slices(&self) -> Vec<&[f32]> {
        self.lin.param_slices()
    }

    /// Mutable parameter tensors in snapshot order (weight injection).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        self.lin.param_slices_mut()
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.lin.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use rand::SeedableRng;

    /// Finite-difference gradient check for the linear layer.
    #[test]
    fn linear_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut lin = Linear::new(3, 2, true, &mut rng);
        let x = Matrix::glorot(4, 3, &mut rng);
        // Loss = sum of outputs; d(loss)/d(y) = ones.
        let loss =
            |lin: &mut Linear, x: &Matrix| -> f32 { lin.forward(x, false).as_slice().iter().sum() };
        let y = lin.forward(&x, true);
        let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let gx = lin.backward(&ones);

        let eps = 1e-3;
        // Check d(loss)/d(w[0,0]).
        let base = loss(&mut lin, &x);
        let orig = lin.w.get(0, 0);
        lin.w.set(0, 0, orig + eps);
        let plus = loss(&mut lin, &x);
        lin.w.set(0, 0, orig);
        let numeric = (plus - base) / eps;
        let analytic = lin.gw.get(0, 0);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "dW numeric {numeric} vs analytic {analytic}"
        );
        // Check d(loss)/d(x[1,2]).
        let mut x2 = x.clone();
        x2.set(1, 2, x.get(1, 2) + eps);
        let plus_x = loss(&mut lin, &x2);
        let numeric_x = (plus_x - base) / eps;
        let analytic_x = gx.get(1, 2);
        assert!(
            (numeric_x - analytic_x).abs() < 1e-2,
            "dX numeric {numeric_x} vs analytic {analytic_x}"
        );
    }

    /// Finite-difference gradient check through a SAGE layer, including the
    /// aggregation backward.
    #[test]
    fn sage_gradcheck() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let graph = Graph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            Direction::Bidirectional,
        );
        let mut layer = SageLayer::new(2, 3, &mut rng);
        let x = Matrix::glorot(5, 2, &mut rng);
        let loss = |l: &mut SageLayer, x: &Matrix| -> f32 {
            l.forward(&graph, x, false).as_slice().iter().sum()
        };
        let y = layer.forward(&graph, &x, true);
        let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let gx = layer.backward(&graph, &ones);

        let eps = 1e-3;
        let base = loss(&mut layer, &x);
        for (r, c) in [(0usize, 0usize), (2, 1), (4, 0)] {
            let mut x2 = x.clone();
            x2.set(r, c, x.get(r, c) + eps);
            let numeric = (loss(&mut layer, &x2) - base) / eps;
            let analytic = gx.get(r, c);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "d(x[{r},{c}]) numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn param_counts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let lin = Linear::new(10, 4, false, &mut rng);
        assert_eq!(lin.num_params(), 44);
        let sage = SageLayer::new(8, 16, &mut rng);
        assert_eq!(sage.num_params(), 2 * 8 * 16 + 16);
    }

    #[test]
    fn zero_grad_resets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        let x = Matrix::glorot(3, 2, &mut rng);
        let y = lin.forward(&x, true);
        let g = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; 6]);
        lin.backward(&g);
        assert!(lin.gw.norm() > 0.0);
        lin.zero_grad();
        assert_eq!(lin.gw.norm(), 0.0);
    }
}
