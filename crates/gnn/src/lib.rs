//! # gamora-gnn
//!
//! A from-scratch GraphSAGE stack: everything needed to train and run the
//! paper's multi-task node classifier without an external deep-learning
//! framework (the "thin GNN ecosystem" substitution of this reproduction).
//!
//! * [`Matrix`] — dense tensors with multi-threaded, register-blocked
//!   matmul kernels and fused bias/ReLU epilogues (crossbeam row blocks
//!   stand in for the paper's GPU);
//! * [`Graph`] — CSR message passing with exact adjoint backward;
//!   [`Graph::from_edges_into`] streams an edge list into a reused
//!   instance with zero steady-state allocation;
//! * [`SageLayer`]/[`Linear`] — layers with hand-derived backward passes,
//!   validated by finite-difference gradient checks;
//! * [`MultiTaskSage`] — K-layer trunk + shared linear + per-task softmax
//!   heads (hard parameter sharing, paper Eq. 2);
//! * [`Adam`], [`train`] — optimisation and full-batch multi-task training.
//!
//! Inference is `&self`: one model instance can be shared read-only across
//! serve workers, each carrying its own [`InferenceScratch`] so warmed-up
//! forward passes never touch the heap. Training state (per-layer
//! activation tapes) lives in a [`Tape`] owned by the trainer, not inside
//! the layers.
//!
//! ```
//! use gamora_gnn::{Direction, Graph, InferenceScratch, Matrix, ModelConfig, MultiTaskSage};
//! let graph = Graph::from_edges(4, &[(0, 2), (1, 2), (2, 3)], Direction::Bidirectional);
//! let model = MultiTaskSage::new(ModelConfig {
//!     in_dim: 3, hidden: 8, layers: 2, shared_dim: 8,
//!     task_classes: vec![4, 2, 2], seed: 1,
//! });
//! let x = Matrix::zeros(4, 3);
//! let logits = model.forward(&graph, &x);
//! assert_eq!(logits.len(), 3);
//! // Hot loops reuse a scratch workspace instead:
//! let mut scratch = InferenceScratch::default();
//! assert_eq!(model.infer(&graph, &x, &mut scratch), &logits[..]);
//! ```

#![warn(missing_docs)]

mod adam;
mod graph;
mod layers;
pub mod loss;
mod model;
pub mod parallel;
mod tensor;
mod trainer;

pub use adam::Adam;
pub use graph::{Direction, Graph};
pub use layers::{Linear, LinearTape, SageLayer, SageScratch};
pub use model::{
    ForwardObserver, ForwardStage, InferenceScratch, ModelConfig, MultiTaskSage, Tape,
};
pub use tensor::{Matrix, QuantisedMatrix, StorageError, WeightRegion};
pub use trainer::{evaluate, train, GraphData, TrainConfig, TrainReport};
