//! Softmax cross-entropy (negative log-likelihood) over node logits.

use crate::tensor::Matrix;

/// Row-wise softmax probabilities.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean negative log-likelihood of `targets` under `logits`, and the
/// gradient w.r.t. the logits scaled by `weight`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
pub fn nll_loss(logits: &Matrix, targets: &[u32], weight: f32) -> (f32, Matrix) {
    assert_eq!(targets.len(), logits.rows(), "one target per node");
    let probs = softmax(logits);
    let n = logits.rows().max(1) as f32;
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < logits.cols(), "target {t} out of range");
        loss -= (probs.get(r, t).max(1e-12) as f64).ln();
        let row = grad.row_mut(r);
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= weight / n;
        }
    }
    ((loss / n as f64) as f32 * weight, grad)
}

/// Fraction of rows whose argmax equals the target.
pub fn accuracy(logits: &Matrix, targets: &[u32]) -> f64 {
    if targets.is_empty() {
        return 1.0;
    }
    let correct = targets
        .iter()
        .enumerate()
        .filter(|&(r, &t)| argmax(logits.row(r)) == t as usize)
        .count();
    correct as f64 / targets.len() as f64
}

/// Index of the maximum element (first on ties).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // softmax is monotone: ordering preserved
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Matrix::from_vec(1, 2, vec![1000.0, 1001.0]);
        let p = softmax(&a);
        assert!(p.get(0, 1) > p.get(0, 0));
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nll_gradient_direction() {
        let logits = Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]);
        let (loss, grad) = nll_loss(&logits, &[1], 1.0);
        assert!((loss - (3.0f32).ln()).abs() < 1e-5);
        // Gradient pushes up the target (negative) and down the others.
        assert!(grad.get(0, 1) < 0.0);
        assert!(grad.get(0, 0) > 0.0 && grad.get(0, 2) > 0.0);
        // Gradient rows sum to ~0.
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn nll_weight_scales_gradient() {
        let logits = Matrix::from_vec(1, 2, vec![0.3, -0.2]);
        let (l1, g1) = nll_loss(&logits, &[0], 1.0);
        let (l2, g2) = nll_loss(&logits, &[0], 0.5);
        assert!((l1 * 0.5 - l2).abs() < 1e-6);
        assert!((g1.get(0, 0) * 0.5 - g2.get(0, 0)).abs() < 1e-7);
    }

    /// Finite-difference check of d(loss)/d(logit).
    #[test]
    fn nll_gradcheck() {
        let logits = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.8, 0.0, 0.2, -0.1]);
        let targets = [2u32, 0u32];
        let (_, grad) = nll_loss(&logits, &targets, 1.0);
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut plus = logits.clone();
            plus.set(r, c, logits.get(r, c) + eps);
            let (lp, _) = nll_loss(&plus, &targets, 1.0);
            let mut minus = logits.clone();
            minus.set(r, c, logits.get(r, c) - eps);
            let (lm, _) = nll_loss(&minus, &targets, 1.0);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn accuracy_counts() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-9);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(accuracy(&logits, &[]), 1.0);
    }
}
