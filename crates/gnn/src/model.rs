//! The multi-task GraphSAGE model of the paper (§III-B).
//!
//! `K` GraphSAGE layers produce node embeddings that fuse structural and
//! functional information; a shared linear layer (hard parameter sharing)
//! feeds one softmax classification head per task. The paper's two
//! configurations are provided as constructors: a *shallow* 4-layer /
//! 32-hidden model for CSA multipliers and a *deep* 8-layer / 80-hidden
//! model for Booth multipliers and complex technology mapping.

use crate::graph::Graph;
use crate::layers::{Linear, LinearTape, SageLayer, SageScratch};
use crate::tensor::Matrix;
use rand::SeedableRng;

/// Training state recorded by [`MultiTaskSage::forward_train`] and
/// consumed by [`MultiTaskSage::backward`]: one activation tape per layer.
///
/// The tape is owned by the trainer (not the model), so the model itself
/// stays immutable through the forward pass and can be shared across
/// threads. Buffers are reused across training steps.
#[derive(Clone, Debug, Default)]
pub struct Tape {
    sage: Vec<LinearTape>,
    shared: LinearTape,
    heads: Vec<LinearTape>,
}

/// Reusable per-worker buffers for allocation-free inference: ping-pong
/// embedding matrices, aggregation scratch (the split-weight SAGE forward
/// needs no concat buffer), the shared-layer output, and one logit matrix
/// per task.
///
/// A warmed-up scratch (after one [`MultiTaskSage::infer`] call at a given
/// graph size) lets every subsequent inference at the same or smaller size
/// run without touching the heap. One scratch serves models and graphs of
/// any shape — buffers are resized lazily, reusing capacity.
#[derive(Clone, Debug, Default)]
pub struct InferenceScratch {
    ws: SageScratch,
    h_in: Matrix,
    h_out: Matrix,
    z: Matrix,
    logits: Vec<Matrix>,
    /// Compacted embedding rows for the row-masked epilogue
    /// ([`MultiTaskSage::infer_rows_observed`]).
    gather: Matrix,
}

/// Hyper-parameters of a [`MultiTaskSage`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Input feature width (3 in the paper: node type + two edge
    /// complement flags).
    pub in_dim: usize,
    /// Hidden channel width of every SAGE layer.
    pub hidden: usize,
    /// Number of SAGE layers (the K-hop fusion radius).
    pub layers: usize,
    /// Width of the shared post-embedding linear layer.
    pub shared_dim: usize,
    /// Output classes per task (e.g. `[4, 2, 2]`: root/leaf, XOR, MAJ).
    pub task_classes: Vec<usize>,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's shallow model: 4 layers, 32 hidden channels.
    pub fn shallow(in_dim: usize, task_classes: Vec<usize>) -> ModelConfig {
        ModelConfig {
            in_dim,
            hidden: 32,
            layers: 4,
            shared_dim: 32,
            task_classes,
            seed: 0x6A3017A,
        }
    }

    /// The paper's deep model: 8 layers, 80 hidden channels.
    pub fn deep(in_dim: usize, task_classes: Vec<usize>) -> ModelConfig {
        ModelConfig {
            hidden: 80,
            layers: 8,
            ..ModelConfig::shallow(in_dim, task_classes)
        }
    }
}

/// A stage of the inference forward pass, as reported to a
/// [`ForwardObserver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardStage {
    /// One SAGE trunk layer (0-based index).
    Sage(usize),
    /// The shared post-embedding linear layer.
    Shared,
    /// All per-task classification heads together.
    Heads,
}

/// Receives per-stage wall times from [`MultiTaskSage::infer_observed`].
///
/// This is the seam serving-side observability hooks into: the GNN crate
/// only reports `(stage, micros)` pairs and gains no dependency on any
/// metrics machinery. Implementations must be cheap and allocation-free —
/// they run inside the inference hot path.
pub trait ForwardObserver {
    /// Called once per forward stage with its wall time in microseconds.
    fn record_stage(&self, stage: ForwardStage, micros: u64);
}

/// Multi-task GraphSAGE: shared trunk, shared linear, per-task heads.
#[derive(Clone, Debug)]
pub struct MultiTaskSage {
    config: ModelConfig,
    sage: Vec<SageLayer>,
    shared: Linear,
    heads: Vec<Linear>,
}

impl MultiTaskSage {
    /// Builds a model with Glorot-initialised weights (deterministic in
    /// `config.seed`).
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `task_classes` is empty.
    pub fn new(config: ModelConfig) -> MultiTaskSage {
        Self::build(config, true)
    }

    /// Builds a zero-initialised model skeleton: correct shapes for every
    /// layer, no RNG draws. Snapshot loaders fill (or borrow) every
    /// weight anyway, so this keeps cold starts O(header) instead of
    /// paying a full Glorot pass over the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `task_classes` is empty.
    pub fn new_zeroed(config: ModelConfig) -> MultiTaskSage {
        Self::build(config, false)
    }

    fn build(config: ModelConfig, glorot: bool) -> MultiTaskSage {
        assert!(config.layers > 0, "at least one SAGE layer");
        assert!(!config.task_classes.is_empty(), "at least one task");
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut sage = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let in_dim = if l == 0 { config.in_dim } else { config.hidden };
            sage.push(if glorot {
                SageLayer::new(in_dim, config.hidden, &mut rng)
            } else {
                SageLayer::new_zeroed(in_dim, config.hidden)
            });
        }
        let shared = if glorot {
            Linear::new(config.hidden, config.shared_dim, true, &mut rng)
        } else {
            Linear::new_zeroed(config.hidden, config.shared_dim, true)
        };
        let heads = config
            .task_classes
            .iter()
            .map(|&c| {
                if glorot {
                    Linear::new(config.shared_dim, c, false, &mut rng)
                } else {
                    Linear::new_zeroed(config.shared_dim, c, false)
                }
            })
            .collect();
        MultiTaskSage {
            config,
            sage,
            shared,
            heads,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of tasks (classification heads).
    pub fn num_tasks(&self) -> usize {
        self.heads.len()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.sage.iter().map(SageLayer::num_params).sum::<usize>()
            + self.shared.num_params()
            + self.heads.iter().map(Linear::num_params).sum::<usize>()
    }

    /// Inference forward pass: per-task logits, one row per node.
    ///
    /// Allocates fresh output matrices; hot loops should hold an
    /// [`InferenceScratch`] and call [`MultiTaskSage::infer`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width or row count.
    pub fn forward(&self, graph: &Graph, x: &Matrix) -> Vec<Matrix> {
        let mut scratch = InferenceScratch::default();
        self.infer(graph, x, &mut scratch);
        scratch.logits
    }

    /// Inference forward pass through caller-owned scratch buffers.
    ///
    /// Returns the per-task logits, which live inside `scratch` (they stay
    /// valid until the next call with the same scratch). After a warmup
    /// call at a given graph size, subsequent calls perform **zero heap
    /// allocations** as long as the kernels stay on their serial path
    /// (graphs below `parallel`'s per-thread row cutoff); above it, the
    /// scoped worker threads spawned per call allocate.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width or row count.
    pub fn infer<'a>(
        &self,
        graph: &Graph,
        x: &Matrix,
        scratch: &'a mut InferenceScratch,
    ) -> &'a [Matrix] {
        self.infer_observed(graph, x, scratch, None)
    }

    /// [`MultiTaskSage::infer`] with optional per-stage timing.
    ///
    /// When `observer` is `Some`, each trunk layer, the shared linear and
    /// the combined heads report their wall time through
    /// [`ForwardObserver::record_stage`]; when `None`, no clocks are read
    /// and the pass is exactly the plain `infer`. Timing adds two monotonic
    /// clock reads per stage and no allocations.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width or row count.
    pub fn infer_observed<'a>(
        &self,
        graph: &Graph,
        x: &Matrix,
        scratch: &'a mut InferenceScratch,
        observer: Option<&dyn ForwardObserver>,
    ) -> &'a [Matrix] {
        // Chaos seam: the `forward` fail point fires before any layer
        // runs, so an injected failure never leaves scratch half-written
        // relative to a completed pass. Disarmed cost: one relaxed load.
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::GnnForward);
        assert_eq!(x.cols(), self.config.in_dim, "feature width mismatch");
        assert_eq!(x.rows(), graph.num_nodes(), "one feature row per node");
        for (l, layer) in self.sage.iter().enumerate() {
            let started = observer.map(|_| std::time::Instant::now());
            {
                let InferenceScratch {
                    ws, h_in, h_out, ..
                } = &mut *scratch;
                let input = if l == 0 { x } else { &*h_in };
                layer.forward_into(graph, input, ws, h_out);
            }
            std::mem::swap(&mut scratch.h_in, &mut scratch.h_out);
            if let (Some(obs), Some(t)) = (observer, started) {
                obs.record_stage(ForwardStage::Sage(l), t.elapsed().as_micros() as u64);
            }
        }
        let started = observer.map(|_| std::time::Instant::now());
        {
            let InferenceScratch { h_in, z, .. } = &mut *scratch;
            self.shared.forward_into(h_in, z);
        }
        if let (Some(obs), Some(t)) = (observer, started) {
            obs.record_stage(ForwardStage::Shared, t.elapsed().as_micros() as u64);
        }
        let started = observer.map(|_| std::time::Instant::now());
        {
            let InferenceScratch { z, logits, .. } = &mut *scratch;
            if logits.len() != self.heads.len() {
                logits.resize_with(self.heads.len(), Matrix::default);
            }
            for (head, out) in self.heads.iter().zip(logits.iter_mut()) {
                head.forward_into(z, out);
            }
        }
        if let (Some(obs), Some(t)) = (observer, started) {
            obs.record_stage(ForwardStage::Heads, t.elapsed().as_micros() as u64);
        }
        &scratch.logits
    }

    /// Row-masked inference: the trunk runs on the **full** graph (message
    /// passing cannot skip rows — every node's embedding may feed a kept
    /// row's neighborhood), but the shared linear and the per-task heads
    /// run only on the embedding rows listed in `rows`, compacted through
    /// the same fused GEMM kernels. Logit row `k` corresponds to node
    /// `rows[k]`.
    ///
    /// Per-row results are bit-identical to the full
    /// [`MultiTaskSage::infer_observed`] pass: the fused kernels are
    /// per-row bit-stable under row regrouping (the `kernel_equivalence`
    /// CI guard), so gathering rows before the epilogue GEMMs cannot
    /// change any kept row. This is the partial-forward entry the
    /// cone-level prediction cache uses to skip head work for rows whose
    /// predictions were served from cache.
    ///
    /// Allocation-free after warmup, like the full pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width or row count, or if any
    /// row index is out of range.
    pub fn infer_rows_observed<'a>(
        &self,
        graph: &Graph,
        x: &Matrix,
        rows: &[u32],
        scratch: &'a mut InferenceScratch,
        observer: Option<&dyn ForwardObserver>,
    ) -> &'a [Matrix] {
        // Same chaos seam as the full pass: the cone tier must not dodge
        // forward-stage fault injection.
        gamora_fault::hit_or_panic(gamora_fault::FaultPoint::GnnForward);
        assert_eq!(x.cols(), self.config.in_dim, "feature width mismatch");
        assert_eq!(x.rows(), graph.num_nodes(), "one feature row per node");
        for (l, layer) in self.sage.iter().enumerate() {
            let started = observer.map(|_| std::time::Instant::now());
            {
                let InferenceScratch {
                    ws, h_in, h_out, ..
                } = &mut *scratch;
                let input = if l == 0 { x } else { &*h_in };
                layer.forward_into(graph, input, ws, h_out);
            }
            std::mem::swap(&mut scratch.h_in, &mut scratch.h_out);
            if let (Some(obs), Some(t)) = (observer, started) {
                obs.record_stage(ForwardStage::Sage(l), t.elapsed().as_micros() as u64);
            }
        }
        let started = observer.map(|_| std::time::Instant::now());
        {
            let InferenceScratch {
                h_in, gather, z, ..
            } = &mut *scratch;
            gather.reset(rows.len(), h_in.cols());
            for (k, &r) in rows.iter().enumerate() {
                gather.row_mut(k).copy_from_slice(h_in.row(r as usize));
            }
            self.shared.forward_into(gather, z);
        }
        if let (Some(obs), Some(t)) = (observer, started) {
            obs.record_stage(ForwardStage::Shared, t.elapsed().as_micros() as u64);
        }
        let started = observer.map(|_| std::time::Instant::now());
        {
            let InferenceScratch { z, logits, .. } = &mut *scratch;
            if logits.len() != self.heads.len() {
                logits.resize_with(self.heads.len(), Matrix::default);
            }
            for (head, out) in self.heads.iter().zip(logits.iter_mut()) {
                head.forward_into(z, out);
            }
        }
        if let (Some(obs), Some(t)) = (observer, started) {
            obs.record_stage(ForwardStage::Heads, t.elapsed().as_micros() as u64);
        }
        &scratch.logits
    }

    /// Training forward pass: like [`MultiTaskSage::forward`], but records
    /// every layer's activations on `tape` for [`MultiTaskSage::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong feature width or row count.
    pub fn forward_train(&self, graph: &Graph, x: &Matrix, tape: &mut Tape) -> Vec<Matrix> {
        assert_eq!(x.cols(), self.config.in_dim, "feature width mismatch");
        assert_eq!(x.rows(), graph.num_nodes(), "one feature row per node");
        if tape.sage.len() != self.sage.len() {
            tape.sage.resize_with(self.sage.len(), LinearTape::default);
        }
        if tape.heads.len() != self.heads.len() {
            tape.heads
                .resize_with(self.heads.len(), LinearTape::default);
        }
        let mut h = x.clone();
        for (layer, t) in self.sage.iter().zip(tape.sage.iter_mut()) {
            h = layer.forward_train(graph, &h, t);
        }
        let z = self.shared.forward_train(&h, &mut tape.shared);
        self.heads
            .iter()
            .zip(tape.heads.iter_mut())
            .map(|(head, t)| head.forward_train(&z, t))
            .collect()
    }

    /// Backward pass from per-task logit gradients, consuming the tape of
    /// the preceding [`MultiTaskSage::forward_train`].
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != num_tasks()` or `tape` does not match a
    /// training forward through this model.
    pub fn backward(&mut self, graph: &Graph, grads: &[Matrix], tape: &Tape) {
        assert_eq!(grads.len(), self.heads.len());
        assert_eq!(
            (tape.sage.len(), tape.heads.len()),
            (self.sage.len(), self.heads.len()),
            "tape does not match a training forward through this model"
        );
        let mut grad_z: Option<Matrix> = None;
        for ((head, g), t) in self.heads.iter_mut().zip(grads).zip(&tape.heads) {
            let gz = head.backward(g, t);
            match &mut grad_z {
                None => grad_z = Some(gz),
                Some(acc) => acc.add_scaled(&gz, 1.0),
            }
        }
        let mut grad_h = self
            .shared
            .backward(&grad_z.expect("at least one task"), &tape.shared);
        for (layer, t) in self.sage.iter_mut().rev().zip(tape.sage.iter().rev()) {
            grad_h = layer.backward(graph, &grad_h, t);
        }
    }

    /// Clears all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for l in &mut self.sage {
            l.zero_grad();
        }
        self.shared.zero_grad();
        for h in &mut self.heads {
            h.zero_grad();
        }
    }

    /// All parameter/gradient pairs, in a stable order, for the optimiser.
    pub fn param_grads(&mut self) -> Vec<(&mut [f32], &[f32])> {
        let mut out = Vec::new();
        for l in &mut self.sage {
            out.extend(l.param_grads());
        }
        out.extend(self.shared.param_grads());
        for h in &mut self.heads {
            out.extend(h.param_grads());
        }
        out
    }

    /// All parameter tensors, in the same stable order as
    /// [`MultiTaskSage::param_grads`] — the canonical serialisation order
    /// for model snapshots (trunk layers, shared linear, task heads; each
    /// layer contributes weights then bias).
    pub fn param_slices(&self) -> Vec<&[f32]> {
        let mut out = Vec::new();
        for l in &self.sage {
            out.extend(l.param_slices());
        }
        out.extend(self.shared.param_slices());
        for h in &self.heads {
            out.extend(h.param_slices());
        }
        out
    }

    /// Mutable access to all parameter tensors in snapshot order, for
    /// injecting deserialised weights into a freshly constructed model.
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out = Vec::new();
        for l in &mut self.sage {
            out.extend(l.param_slices_mut());
        }
        out.extend(self.shared.param_slices_mut());
        for h in &mut self.heads {
            out.extend(h.param_slices_mut());
        }
        out
    }

    /// Every linear layer in snapshot order (trunk SAGE linears, shared
    /// linear, task heads) — each contributes its weight tensor then its
    /// bias to the serialised stream, so this is the layer-level view of
    /// [`MultiTaskSage::param_slices`].
    pub fn linears(&self) -> Vec<&Linear> {
        let mut out: Vec<&Linear> = Vec::with_capacity(self.sage.len() + 1 + self.heads.len());
        out.extend(self.sage.iter().map(SageLayer::linear));
        out.push(&self.shared);
        out.extend(self.heads.iter());
        out
    }

    /// Mutable counterpart of [`MultiTaskSage::linears`] (snapshot
    /// injection of quantised weight stores).
    pub fn linears_mut(&mut self) -> Vec<&mut Linear> {
        let mut out: Vec<&mut Linear> = Vec::with_capacity(self.sage.len() + 1 + self.heads.len());
        out.extend(self.sage.iter_mut().map(SageLayer::linear_mut));
        out.push(&mut self.shared);
        out.extend(self.heads.iter_mut());
        out
    }

    /// Builds the i8-quantised read-only weight store for every layer:
    /// inference forwards serve i8 weights (f32 accumulate, per-column
    /// scales) from then on, at roughly a quarter of the resident weight
    /// bytes. Training is unaffected — it always reads the `f32`
    /// weights, and any weight update drops the stale store (re-invoke
    /// after further training).
    pub fn quantise(&mut self) {
        for l in self.linears_mut() {
            l.quantise();
        }
    }

    /// Whether **every** layer currently serves from a quantised store
    /// (the state [`MultiTaskSage::quantise`] establishes).
    pub fn is_quantised(&self) -> bool {
        self.linears().iter().all(|l| l.quantised().is_some())
    }

    /// Resident bytes of the weight stores as currently served:
    /// i8 payload + scales for quantised layers, `f32` weights otherwise,
    /// plus `f32` biases.
    pub fn resident_weight_bytes(&self) -> usize {
        self.linears()
            .iter()
            .map(|l| l.resident_weight_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn tiny_model() -> MultiTaskSage {
        MultiTaskSage::new(ModelConfig {
            in_dim: 3,
            hidden: 8,
            layers: 2,
            shared_dim: 8,
            task_classes: vec![4, 2, 2],
            seed: 7,
        })
    }

    fn tiny_graph() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5)],
            Direction::Bidirectional,
        )
    }

    #[test]
    fn forward_shapes() {
        let model = tiny_model();
        let graph = tiny_graph();
        let x = Matrix::zeros(6, 3);
        let logits = model.forward(&graph, &x);
        assert_eq!(logits.len(), 3);
        assert_eq!((logits[0].rows(), logits[0].cols()), (6, 4));
        assert_eq!((logits[1].rows(), logits[1].cols()), (6, 2));
    }

    #[test]
    fn deterministic_construction() {
        let a = tiny_model();
        let b = tiny_model();
        let graph = tiny_graph();
        let x = Matrix::zeros(6, 3);
        let la = a.forward(&graph, &x);
        let lb = b.forward(&graph, &x);
        assert_eq!(la[0].as_slice(), lb[0].as_slice());
    }

    /// Row-masked inference returns, for every requested row, logits
    /// bit-identical to the corresponding row of the full pass — for
    /// strict subsets, the full set, and the empty set.
    #[test]
    fn infer_rows_matches_full_pass_bitwise() {
        let model = tiny_model();
        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let full = model.forward(&graph, &x);
        let mut scratch = InferenceScratch::default();
        for rows in [vec![0u32, 2, 5], vec![3], (0..6u32).collect(), vec![]] {
            let masked = model.infer_rows_observed(&graph, &x, &rows, &mut scratch, None);
            assert_eq!(masked.len(), full.len());
            for (task, (m, f)) in masked.iter().zip(&full).enumerate() {
                assert_eq!(m.rows(), rows.len());
                for (k, &r) in rows.iter().enumerate() {
                    assert_eq!(
                        m.row(k),
                        f.row(r as usize),
                        "task {task} row {r} diverged under masking"
                    );
                }
            }
        }
    }

    /// A reused scratch produces logits bit-identical to the allocating
    /// forward, across graphs of different sizes and both orders
    /// (grow-then-shrink and shrink-then-grow).
    #[test]
    fn infer_with_reused_scratch_matches_forward() {
        let model = tiny_model();
        let mut scratch = InferenceScratch::default();
        for n in [6usize, 11, 4, 9] {
            let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
            let graph = Graph::from_edges(n, &edges, Direction::Bidirectional);
            let mut x = Matrix::zeros(n, 3);
            for r in 0..n {
                x.set(r, r % 3, 1.0);
            }
            let expected = model.forward(&graph, &x);
            let logits = model.infer(&graph, &x, &mut scratch);
            assert_eq!(logits.len(), expected.len());
            for (a, b) in logits.iter().zip(&expected) {
                assert_eq!(a, b, "n = {n}");
            }
        }
    }

    /// The training-mode forward (which detours through the tape) computes
    /// the same logits as inference.
    #[test]
    fn forward_train_matches_inference_logits() {
        let model = tiny_model();
        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let mut tape = Tape::default();
        let trained = model.forward_train(&graph, &x, &mut tape);
        let inferred = model.forward(&graph, &x);
        for (a, b) in trained.iter().zip(&inferred) {
            assert_eq!(a, b);
        }
    }

    /// Quantising a model shrinks the resident weight store ~4x, leaves
    /// logits within quantisation tolerance of the f32 forward, and the
    /// quantised inference path is itself deterministic (scratch reuse
    /// included).
    #[test]
    fn quantised_model_serves_close_deterministic_logits() {
        let mut model = tiny_model();
        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let f32_logits = model.forward(&graph, &x);
        let f32_bytes = model.resident_weight_bytes();
        assert!(!model.is_quantised());
        model.quantise();
        assert!(model.is_quantised());
        let q_bytes = model.resident_weight_bytes();
        // The tiny test model is scale/bias-heavy; real-size models hit
        // ~4x (guarded at the core level on the shallow paper config).
        assert!(
            q_bytes * 2 < f32_bytes,
            "quantised store must be well under half of the f32 store \
             ({q_bytes} vs {f32_bytes} bytes)"
        );
        let q_logits = model.forward(&graph, &x);
        for (a, b) in q_logits.iter().zip(&f32_logits) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 0.1, "{x} vs {y}");
            }
        }
        let mut scratch = InferenceScratch::default();
        let again = model.infer(&graph, &x, &mut scratch);
        for (a, b) in again.iter().zip(&q_logits) {
            assert_eq!(a, b, "quantised inference must be deterministic");
        }
    }

    /// The observed forward pass is bit-identical to the plain one and
    /// reports every stage exactly once, in order.
    #[test]
    fn infer_observed_reports_all_stages() {
        use std::cell::RefCell;
        struct Recorder(RefCell<Vec<(ForwardStage, u64)>>);
        impl ForwardObserver for Recorder {
            fn record_stage(&self, stage: ForwardStage, micros: u64) {
                self.0.borrow_mut().push((stage, micros));
            }
        }
        let model = tiny_model();
        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let expected = model.forward(&graph, &x);
        let recorder = Recorder(RefCell::new(Vec::new()));
        let mut scratch = InferenceScratch::default();
        let logits = model.infer_observed(&graph, &x, &mut scratch, Some(&recorder));
        for (a, b) in logits.iter().zip(&expected) {
            assert_eq!(a, b, "observation must not change the forward");
        }
        let stages: Vec<ForwardStage> = recorder.0.borrow().iter().map(|&(s, _)| s).collect();
        assert_eq!(
            stages,
            vec![
                ForwardStage::Sage(0),
                ForwardStage::Sage(1),
                ForwardStage::Shared,
                ForwardStage::Heads,
            ]
        );
    }

    #[test]
    fn paper_configs() {
        let shallow = ModelConfig::shallow(3, vec![4, 2, 2]);
        assert_eq!((shallow.layers, shallow.hidden), (4, 32));
        let deep = ModelConfig::deep(3, vec![4, 2, 2]);
        assert_eq!((deep.layers, deep.hidden), (8, 80));
        let m = MultiTaskSage::new(deep);
        assert_eq!(m.num_tasks(), 3);
        assert!(m.num_params() > 50_000, "deep model is non-trivial");
    }

    /// `param_slices` exposes every parameter exactly once, in an order
    /// stable enough that injecting them into a differently seeded model
    /// reproduces the source model bit for bit.
    #[test]
    fn param_slices_roundtrip_into_fresh_model() {
        let src = tiny_model();
        let total: usize = src.param_slices().iter().map(|s| s.len()).sum();
        assert_eq!(total, src.num_params());

        let saved: Vec<Vec<f32>> = src.param_slices().iter().map(|s| s.to_vec()).collect();
        let mut dst = MultiTaskSage::new(ModelConfig {
            seed: 0xBEEF,
            ..src.config().clone()
        });
        let mut slots = dst.param_slices_mut();
        assert_eq!(slots.len(), saved.len());
        for (slot, tensor) in slots.iter_mut().zip(&saved) {
            slot.copy_from_slice(tensor);
        }

        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let la = src.forward(&graph, &x);
        let lb = dst.forward(&graph, &x);
        for (a, b) in la.iter().zip(&lb) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// A gradient step on a toy problem must reduce the loss.
    #[test]
    fn one_adam_step_reduces_loss() {
        use crate::adam::Adam;
        use crate::loss::nll_loss;
        let mut model = tiny_model();
        let graph = tiny_graph();
        let mut x = Matrix::zeros(6, 3);
        for r in 0..6 {
            x.set(r, r % 3, 1.0);
        }
        let targets: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3, 0, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![1, 0, 1, 0, 1, 0],
        ];
        let mut opt = Adam::new(0.01);
        let mut tape = Tape::default();
        let mut losses = Vec::new();
        for _ in 0..30 {
            model.zero_grad();
            let logits = model.forward_train(&graph, &x, &mut tape);
            let mut total = 0.0;
            let mut grads = Vec::new();
            for (t, l) in logits.iter().enumerate() {
                let (loss, grad) = nll_loss(l, &targets[t], 1.0);
                total += loss;
                grads.push(grad);
            }
            model.backward(&graph, &grads, &tape);
            opt.step(model.param_grads());
            losses.push(total);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss did not drop: {losses:?}"
        );
    }
}
