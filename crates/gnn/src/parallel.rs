//! Thread-parallel helpers (the CPU stand-in for the paper's GPU kernels).
//!
//! Crossbeam scoped threads process disjoint row blocks; small workloads
//! fall back to serial execution so training on tiny graphs is not dominated
//! by thread-spawn overhead.

std::thread_local! {
    /// Per-thread intra-op parallelism cap installed by
    /// [`set_intra_threads`] (0 = uncapped). Serve workers pin this at
    /// startup so `workers x kernel threads` never oversubscribes the
    /// machine; tests pin it to force the serial or parallel path
    /// deterministically.
    static INTRA_LIMIT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Caps the parallelism of every kernel/assembly call made *from the
/// calling thread* to `limit` threads. `1` forces fully serial execution,
/// `0` removes the cap. The cap takes precedence over `GAMORA_THREADS`
/// and hardware detection — it is the per-worker budget a pool supervisor
/// hands out after consulting [`num_threads`] itself.
pub fn set_intra_threads(limit: usize) {
    INTRA_LIMIT.with(|c| c.set(limit));
}

/// The calling thread's intra-op parallelism cap (0 = uncapped).
pub fn intra_threads() -> usize {
    INTRA_LIMIT.with(|c| c.get())
}

/// Number of worker threads: the calling thread's [`set_intra_threads`]
/// cap if one is installed, else the `GAMORA_THREADS` env override, else
/// the machine's available parallelism.
///
/// Hardware detection is cached: `available_parallelism` reads cgroup
/// files on Linux (allocating on every call), which would put heap churn
/// and syscalls on the allocation-free inference hot path.
pub fn num_threads() -> usize {
    let cap = INTRA_LIMIT.with(|c| c.get());
    if cap > 0 {
        return cap;
    }
    if let Ok(v) = std::env::var("GAMORA_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    static DETECTED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum rows each worker thread must have to justify its spawn cost
/// (crossbeam scoped threads are real OS threads, ~tens of microseconds
/// each; training graphs with a few thousand nodes must stay serial).
const MIN_ROWS_PER_THREAD: usize = 4096;

/// Applies `f(row_index, row)` to every `width`-sized row of `data`,
/// in parallel over row blocks.
///
/// # Panics
///
/// Panics if `width` is zero while `data` is non-empty, or if `data.len()`
/// is not a multiple of `width`.
pub fn for_each_row<F>(data: &mut [f32], width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    for_each_row_block(data, width, 1, f);
}

/// Applies `f(first_row_index, block)` to consecutive blocks of up to
/// `block_rows` full `width`-sized rows of `data`, in parallel over row
/// ranges. Thread boundaries land on block multiples, so a multi-row
/// register tile is never split across workers; the final block may hold
/// fewer than `block_rows` rows.
///
/// # Panics
///
/// Panics if `width` is zero while `data` is non-empty, if `data.len()`
/// is not a multiple of `width`, or if `block_rows` is zero.
pub fn for_each_row_block<F>(data: &mut [f32], width: usize, block_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        width > 0 && data.len().is_multiple_of(width),
        "bad row width"
    );
    assert!(block_rows > 0, "bad block height");
    let rows = data.len() / width;
    // Decide serial vs parallel from the row count alone first: the serial
    // path must stay completely free of env lookups and allocations (it is
    // the steady state of warmed-up inference).
    let max_useful = rows / MIN_ROWS_PER_THREAD;
    let nt = if max_useful <= 1 {
        1
    } else {
        num_threads().min(max_useful)
    };
    if nt <= 1 {
        for (blk, chunk) in data.chunks_mut(block_rows * width).enumerate() {
            f(blk * block_rows, chunk);
        }
        return;
    }
    let rows_per = rows.div_ceil(nt).next_multiple_of(block_rows);
    crossbeam::thread::scope(|s| {
        let mut rest = data;
        let mut start_row = 0;
        while !rest.is_empty() {
            let take = (rows_per * width).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fref = &f;
            let sr = start_row;
            s.spawn(move |_| {
                for (i, chunk) in head.chunks_mut(block_rows * width).enumerate() {
                    fref(sr + i * block_rows, chunk);
                }
            });
            start_row += take / width;
            rest = tail;
        }
    })
    .expect("worker thread panicked");
}

/// Number of worker threads worth spawning for a `rows`-sized workload.
pub fn effective_threads(rows: usize) -> usize {
    (rows / MIN_ROWS_PER_THREAD).clamp(1, num_threads())
}

/// Maps `f` over `items` with one thread per item (callers pass one item
/// per worker). Results keep input order.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(&f).collect();
    }
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| {
                let fref = &f;
                s.spawn(move |_| fref(item))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_row_visits_every_row_once() {
        let width = 4;
        let rows = 1000; // above the serial cutoff
        let mut data = vec![0.0f32; rows * width];
        for_each_row(&mut data, width, |r, chunk| {
            for v in chunk.iter_mut() {
                *v += r as f32 + 1.0;
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(data[r * width + c], r as f32 + 1.0);
            }
        }
    }

    #[test]
    fn for_each_row_serial_path() {
        let mut data = vec![1.0f32; 8];
        for_each_row(&mut data, 2, |r, chunk| chunk[0] = r as f32);
        assert_eq!(data, vec![0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0]);
    }

    /// Row blocks tile the data exactly once, blocks never split across
    /// the parallel boundary, and the first-row index is always a block
    /// multiple — for row counts on and off the block height.
    #[test]
    fn for_each_row_block_visits_every_row_once_in_aligned_blocks() {
        let width = 3;
        for rows in [1usize, 4, 7, 4096 * 3 + 2] {
            let mut data = vec![0.0f32; rows * width];
            for_each_row_block(&mut data, width, 4, |row0, block| {
                assert_eq!(row0 % 4, 0, "blocks start on tile boundaries");
                assert!(block.len() <= 4 * width);
                assert!(block.len().is_multiple_of(width), "only whole rows");
                for (i, chunk) in block.chunks_mut(width).enumerate() {
                    for v in chunk.iter_mut() {
                        *v += (row0 + i) as f32 + 1.0;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..width {
                    assert_eq!(data[r * width + c], r as f32 + 1.0, "rows = {rows}");
                }
            }
        }
    }

    #[test]
    fn map_preserves_order() {
        let out = map((0..20).collect::<Vec<_>>(), |x| x * x);
        assert_eq!(out, (0..20).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<f32> = Vec::new();
        for_each_row(&mut empty, 4, |_, _| panic!("must not be called"));
        let out: Vec<i32> = map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn intra_thread_cap_overrides_detection() {
        set_intra_threads(3);
        assert_eq!(num_threads(), 3);
        assert_eq!(intra_threads(), 3);
        set_intra_threads(0);
        assert_eq!(intra_threads(), 0);
        assert!(num_threads() >= 1);
    }
}
