//! Dense 2-D tensors with multi-threaded, cache-blocked kernels.
//!
//! The paper runs GraphSAGE on an NVIDIA A100; this reproduction substitutes
//! data-parallel CPU kernels (crossbeam scoped threads over row blocks),
//! which preserves the batching/parallelism story of Figures 7 and 8 at CPU
//! scale. Only the operations the GNN stack needs are implemented.
//!
//! The forward-pass GEMMs all funnel through one register-blocked row
//! micro-kernel ([`gemm_row`]): the K dimension is swept in [`KC`]-sized
//! cache panels and unrolled four-wide, so each step issues four
//! independent multiply-adds per output element and the compiler
//! vectorises the N loop. [`fused_gemm_into`] drives that kernel with an
//! optional *second* input/weight pair (the split-weight SAGE trick:
//! `concat([h, agg]) @ W == h @ W_self + agg @ W_neigh`, no concat buffer)
//! and a fused bias + ReLU epilogue, so a whole layer is one pass over the
//! output instead of matmul-then-bias-then-activation.

use crate::parallel;
use rand::Rng;
use std::fmt;

/// A row-major `rows x cols` matrix of `f32`.
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialisation.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying mutable row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reshapes to `rows x cols` and zero-fills, reusing the existing
    /// allocation whenever capacity allows — the workhorse of the
    /// allocation-free inference path.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows x cols` *without* zeroing retained elements —
    /// for kernels that overwrite every element anyway (skips the memset
    /// that [`Matrix::reset`] pays).
    fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes a copy of `src`, reusing the existing allocation whenever
    /// capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// `self @ other` with parallel row blocks.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self @ other`, writing into a caller-owned buffer (no heap
    /// allocation once `out` has enough capacity). Runs the blocked
    /// micro-kernel (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        fused_gemm_into(self, &other.data, None, None, false, other.cols, out);
    }

    /// `out += self @ other`, accumulating into an existing buffer — the
    /// standalone counterpart of the split-weight accumulation inside
    /// [`fused_gemm_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows x other.cols`.
    pub fn matmul_add_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_add_into accumulator shape mismatch"
        );
        let n = other.cols;
        parallel::for_each_row(&mut out.data, n.max(1), |r, out_row| {
            gemm_row(self.row(r), &other.data, out_row);
        });
    }

    /// `self^T @ other` without materialising the transpose
    /// (used for weight gradients: `X^T @ dY`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul shape mismatch");
        let (m, n) = (self.cols, other.cols);
        // Accumulate per-thread partials to avoid contended writes.
        let num_chunks = parallel::effective_threads(self.rows);
        let chunk = self.rows.div_ceil(num_chunks).max(1);
        let row_ranges: Vec<(usize, usize)> = (0..self.rows)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(self.rows)))
            .collect();
        let partials: Vec<Matrix> = parallel::map(row_ranges, |(start, end)| {
            let mut acc = Matrix::zeros(m, n);
            for r in start..end {
                let x = self.row(r);
                let y = other.row(r);
                for (i, &xv) in x.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let acc_row = acc.row_mut(i);
                    for (a, &yv) in acc_row.iter_mut().zip(y) {
                        *a += xv * yv;
                    }
                }
            }
            acc
        });
        let mut out = Matrix::zeros(m, n);
        for p in partials {
            for (o, v) in out.data.iter_mut().zip(p.data) {
                *o += v;
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose
    /// (used for input gradients: `dY @ W^T`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose shape mismatch");
        let n = other.rows;
        let mut out = Matrix::zeros(self.rows, n);
        parallel::for_each_row(&mut out.data, n.max(1), |r, out_row| {
            let a_row = self.row(r);
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(c);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.hconcat_into(other, &mut out);
        out
    }

    /// `out = [self | other]`, writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "hconcat shape mismatch");
        out.reshape_for_overwrite(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Splits horizontally into `[left (cols_left) | right]`.
    ///
    /// # Panics
    ///
    /// Panics if `cols_left > self.cols`.
    pub fn hsplit(&self, cols_left: usize) -> (Matrix, Matrix) {
        assert!(cols_left <= self.cols);
        let mut left = Matrix::zeros(self.rows, cols_left);
        let mut right = Matrix::zeros(self.rows, self.cols - cols_left);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..cols_left]);
            right.row_mut(r).copy_from_slice(&self.row(r)[cols_left..]);
        }
        (left, right)
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        let mut out = self.clone();
        out.relu_in_place();
        out
    }

    /// Element-wise ReLU, in place.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// Masks gradients through a ReLU: `out = self * (activated > 0)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn relu_backward(&self, activated: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (activated.rows, activated.cols));
        let mut out = self.clone();
        for (o, &a) in out.data.iter_mut().zip(&activated.data) {
            if a <= 0.0 {
                *o = 0.0;
            }
        }
        out
    }

    /// Adds a row vector (bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sums over rows, producing a row vector (bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// In-place scaled add: `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o += scale * v;
        }
    }

    /// Frobenius norm (diagnostics and gradient-check tests).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// K-dimension cache-block size: one `KC x n` panel of the weight matrix
/// (64 KiB at `n = 64`) stays resident in L1/L2 across the accumulation
/// sweep of a row block.
const KC: usize = 256;

/// Register-blocked row micro-kernel: `out_row += a_row @ b` where `b` is
/// a row-major `a_row.len() x out_row.len()` weight slice.
///
/// K is swept in [`KC`]-sized panels and unrolled four-wide: each step
/// folds four weight rows into the output with four independent products
/// per element, which the compiler turns into FMA chains vectorised over
/// N. The scalar remainder keeps the skip on zero activations that makes
/// the sparse 0/1 feature matrices of the first layer cheap.
#[inline]
fn gemm_row(a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    let n = out_row.len();
    debug_assert_eq!(b.len(), a_row.len() * n);
    let mut kb = 0;
    while kb < a_row.len() {
        let kend = (kb + KC).min(a_row.len());
        let mut k = kb;
        while k + 4 <= kend {
            let a0 = a_row[k];
            let a1 = a_row[k + 1];
            let a2 = a_row[k + 2];
            let a3 = a_row[k + 3];
            if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                let b0 = &b[k * n..(k + 1) * n];
                let b1 = &b[(k + 1) * n..(k + 2) * n];
                let b2 = &b[(k + 2) * n..(k + 3) * n];
                let b3 = &b[(k + 3) * n..(k + 4) * n];
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
                }
            }
            k += 4;
        }
        while k < kend {
            let a = a_row[k];
            if a != 0.0 {
                for (o, &v) in out_row.iter_mut().zip(&b[k * n..(k + 1) * n]) {
                    *o += a * v;
                }
            }
            k += 1;
        }
        kb = kend;
    }
}

/// Fused layer GEMM: `out = act(x1 @ w1 [+ x2 @ w2] [+ bias])` in one pass
/// over the output, parallel over row blocks.
///
/// `w1`/`w2` are row-major `x.cols() x n` weight slices (for the SAGE
/// split-weight trick they are the two contiguous halves of one combined
/// `2d x n` matrix, so no weights are copied). The bias add and ReLU run
/// in the GEMM epilogue while the freshly accumulated row is still in
/// cache.
///
/// # Panics
///
/// Panics on any shape mismatch between the inputs, weights, bias and `n`.
pub(crate) fn fused_gemm_into(
    x1: &Matrix,
    w1: &[f32],
    pair2: Option<(&Matrix, &[f32])>,
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    out: &mut Matrix,
) {
    assert_eq!(w1.len(), x1.cols * n, "weight shape mismatch");
    if let Some((x2, w2)) = pair2 {
        assert_eq!(x2.rows, x1.rows, "fused GEMM input row mismatch");
        assert_eq!(w2.len(), x2.cols * n, "second weight shape mismatch");
    }
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "bias width mismatch");
    }
    out.reshape_for_overwrite(x1.rows, n);
    parallel::for_each_row(&mut out.data, n.max(1), |r, out_row| {
        out_row.fill(0.0);
        gemm_row(x1.row(r), w1, out_row);
        if let Some((x2, w2)) = pair2 {
            gemm_row(x2.row(r), w2, out_row);
        }
        match (bias, relu) {
            (Some(b), true) => {
                for (o, &bv) in out_row.iter_mut().zip(b) {
                    *o = (*o + bv).max(0.0);
                }
            }
            (Some(b), false) => {
                for (o, &bv) in out_row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
            (None, true) => {
                for o in out_row.iter_mut() {
                    *o = o.max(0.0);
                }
            }
            (None, false) => {}
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::glorot(rows, cols, &mut rng)
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = small(17, 9, 1);
        let b = small(9, 13, 2);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    /// The blocked kernel must survive K spanning multiple cache panels
    /// plus a non-multiple-of-4 remainder, and N not a register multiple.
    #[test]
    fn blocked_matmul_handles_odd_shapes_across_panels() {
        for (m, k, n) in [(3, 2 * 256 + 3, 5), (1, 255, 1), (4, 7, 13)] {
            let a = small(m, k, 21 + k as u64);
            let b = small(k, n, 22 + n as u64);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn matmul_add_into_accumulates_on_top() {
        let a = small(7, 9, 31);
        let b = small(9, 6, 32);
        let mut out = Matrix::zeros(7, 6);
        a.matmul_add_into(&b, &mut out);
        a.matmul_add_into(&b, &mut out);
        let once = naive_matmul(&a, &b);
        let mut twice = once.clone();
        twice.add_scaled(&once, 1.0);
        assert_close(&out, &twice);
    }

    /// The fused epilogue (bias + ReLU inside the GEMM) matches the
    /// unfused matmul → bias → ReLU composition exactly.
    #[test]
    fn fused_epilogue_matches_unfused_composition() {
        let x = small(6, 10, 41);
        let w = small(10, 4, 42);
        let bias: Vec<f32> = (0..4).map(|i| i as f32 * 0.25 - 0.4).collect();
        let mut fused = Matrix::default();
        fused_gemm_into(&x, w.as_slice(), None, Some(&bias), true, 4, &mut fused);
        let mut unfused = x.matmul(&w);
        unfused.add_row_vector(&bias);
        unfused.relu_in_place();
        assert_eq!(fused, unfused);
    }

    /// Split-weight GEMM: `[h | agg] @ W` equals `h @ W_self + agg @
    /// W_neigh` when the halves are the contiguous row halves of `W`.
    #[test]
    fn split_weight_gemm_matches_concat_path() {
        let h = small(9, 6, 51);
        let agg = small(9, 6, 52);
        let w = small(12, 7, 53);
        let (w_self, w_neigh) = w.as_slice().split_at(6 * 7);
        let mut split = Matrix::default();
        fused_gemm_into(
            &h,
            w_self,
            Some((&agg, w_neigh)),
            None,
            false,
            7,
            &mut split,
        );
        let concat = h.hconcat(&agg);
        assert_close(&split, &naive_matmul(&concat, &w));
    }

    #[test]
    fn transpose_matmul_matches_naive() {
        let a = small(23, 7, 3);
        let b = small(23, 11, 4);
        // a^T @ b
        let mut at = Matrix::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&a.transpose_matmul(&b), &naive_matmul(&at, &b));
    }

    #[test]
    fn matmul_transpose_matches_naive() {
        let a = small(9, 6, 5);
        let b = small(14, 6, 6);
        let mut bt = Matrix::zeros(b.cols(), b.rows());
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                bt.set(j, i, b.get(i, j));
            }
        }
        assert_close(&a.matmul_transpose(&b), &naive_matmul(&a, &bt));
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = small(5, 3, 7);
        let b = small(5, 4, 8);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 7);
        let (l, r) = cat.hsplit(3);
        assert_close(&l, &a);
        assert_close(&r, &b);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = x.relu();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gx = g.relu_backward(&y);
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut x = Matrix::zeros(3, 2);
        x.add_row_vector(&[1.0, -2.0]);
        assert_eq!(x.column_sums(), vec![3.0, -6.0]);
    }

    /// `_into` kernels reuse the destination's allocation: repeated calls
    /// at the same (or smaller) shape never reallocate, and results match
    /// the allocating variants exactly.
    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let a = small(17, 9, 1);
        let b = small(9, 13, 2);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_close(&out, &a.matmul(&b));
        let cap = out.data.capacity();
        let ptr = out.data.as_ptr();
        // Same shape again: no growth, same buffer.
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data.capacity(), cap);
        assert_eq!(out.data.as_ptr(), ptr);
        // Smaller product fits in the same buffer.
        let c = small(5, 9, 3);
        c.matmul_into(&b, &mut out);
        assert_eq!(out.data.capacity(), cap);
        assert_close(&out, &c.matmul(&b));

        let mut cat = Matrix::default();
        let x = small(5, 3, 7);
        let y = small(5, 4, 8);
        x.hconcat_into(&y, &mut cat);
        assert_close(&cat, &x.hconcat(&y));

        let mut r = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        r.relu_in_place();
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0, 0.0]);

        let mut dst = Matrix::default();
        dst.copy_from(&x);
        assert_eq!(dst, x);
    }

    #[test]
    fn reset_zeroes_and_reshapes() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        m.reset(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn glorot_is_bounded_and_seeded() {
        let a = small(64, 32, 42);
        let b = small(64, 32, 42);
        assert_eq!(a, b, "deterministic under the same seed");
        let limit = (6.0 / 96.0f32).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= limit));
    }
}
