//! Dense 2-D tensors with multi-threaded, cache-blocked kernels.
//!
//! The paper runs GraphSAGE on an NVIDIA A100; this reproduction substitutes
//! data-parallel CPU kernels (crossbeam scoped threads over row blocks),
//! which preserves the batching/parallelism story of Figures 7 and 8 at CPU
//! scale. Only the operations the GNN stack needs are implemented.
//!
//! The forward-pass GEMMs all funnel through one register-blocked tile
//! micro-kernel ([`gemm_tile`]): up to [`MR`] output rows are processed
//! per sweep, the K dimension is swept in [`KC`]-sized cache panels and
//! unrolled four-wide, so each loaded weight panel is reused across every
//! row of the tile and the compiler vectorises the N loop.
//! [`fused_gemm_into`] drives that kernel with an optional *second*
//! input/weight pair (the split-weight SAGE trick: `concat([h, agg]) @ W
//! == h @ W_self + agg @ W_neigh`, no concat buffer) and a fused
//! scale + bias + ReLU epilogue, so a whole layer is one pass over the
//! output instead of matmul-then-bias-then-activation.
//!
//! Weights come in two storage classes behind the same kernel: plain
//! `f32` ([`Matrix`]) and a read-only i8-quantised store
//! ([`QuantisedMatrix`], per-output-column scale). The quantised path
//! accumulates `f32` sums of `activation x i8-weight` products inside the
//! K-panel loop and applies the column scales once in the epilogue —
//! mathematically the dequantised product, at a quarter of the resident
//! weight bytes, with no layer or model code aware of the difference.
//!
//! Orthogonally to the *element* storage class, both tensor types hide a
//! second seam: **where the elements live**. The default is an owned
//! `Vec`; [`Matrix::from_region`] / [`QuantisedMatrix::from_region`]
//! instead borrow a span of a shared read-only byte region (a
//! [`WeightRegion`], e.g. a memory-mapped snapshot), with bounds and
//! alignment checked once at construction. Read paths are identical for
//! both storages; mutation promotes a borrowed span to an owned copy
//! (copy-on-write), and overwrite-style entry points simply swap in owned
//! storage. Layers, models and kernels never observe the difference.

use crate::parallel;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// A shared, immutable byte region that can back borrowed tensor storage
/// — the seam between tensors and a memory-mapped snapshot payload.
///
/// Implementations guarantee that [`WeightRegion::bytes`] returns the
/// same pointer and length for the whole lifetime of the value (the
/// region is frozen at construction), which is what makes the per-call
/// slice derivation in borrowed storage sound.
pub trait WeightRegion: Send + Sync {
    /// The region's bytes.
    fn bytes(&self) -> &[u8];
}

// A plain byte buffer is a valid (trivially "mapped") region — handy for
// tests and for read-to-owned mmap fallbacks that still want one shared
// allocation.
impl WeightRegion for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

/// Error from constructing borrowed tensor storage over a
/// [`WeightRegion`] span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The requested span does not fit inside the region (or its byte
    /// length overflows `usize`).
    OutOfBounds {
        /// Byte offset of the span start within the region.
        offset: usize,
        /// Byte length of the span (`usize::MAX` when the length
        /// computation itself overflowed).
        len: usize,
        /// Total region length in bytes.
        region: usize,
    },
    /// The span's start address is not aligned for the element type.
    Misaligned {
        /// Byte offset of the span start within the region.
        offset: usize,
        /// Required alignment in bytes.
        align: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfBounds {
                offset,
                len,
                region,
            } => write!(
                f,
                "weight span {offset}+{len} escapes its {region}-byte region"
            ),
            StorageError::Misaligned { offset, align } => {
                write!(f, "weight span at byte {offset} is not {align}-aligned")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Element storage of one tensor: an owned `Vec` or a borrowed span of a
/// shared [`WeightRegion`]. Private — everything outside this module sees
/// slices.
#[derive(Clone)]
enum Store<T> {
    Owned(Vec<T>),
    Borrowed {
        region: Arc<dyn WeightRegion>,
        /// Byte offset of the element span inside the region.
        offset: usize,
        /// Element count (not bytes).
        len: usize,
    },
}

impl<T> Default for Store<T> {
    fn default() -> Self {
        Store::Owned(Vec::new())
    }
}

impl<T: WeightElem> Store<T> {
    /// Validates bounds and alignment once; after this, per-call slice
    /// derivation in [`Store::as_slice`] cannot fail.
    fn borrowed(
        region: Arc<dyn WeightRegion>,
        offset: usize,
        len: usize,
    ) -> Result<Store<T>, StorageError> {
        let bytes = region.bytes();
        let oob = |len| StorageError::OutOfBounds {
            offset,
            len,
            region: bytes.len(),
        };
        let byte_len = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(oob(usize::MAX))?;
        let end = offset.checked_add(byte_len).ok_or(oob(byte_len))?;
        if end > bytes.len() {
            return Err(oob(byte_len));
        }
        let align = std::mem::align_of::<T>();
        if !(bytes.as_ptr() as usize + offset).is_multiple_of(align) {
            return Err(StorageError::Misaligned { offset, align });
        }
        Ok(Store::Borrowed {
            region,
            offset,
            len,
        })
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            Store::Owned(v) => v,
            Store::Borrowed {
                region,
                offset,
                len,
            } => {
                let bytes = region.bytes();
                debug_assert!(offset + len * std::mem::size_of::<T>() <= bytes.len());
                // SAFETY: `Store::borrowed` checked bounds and alignment
                // against this region, whose bytes are immutable and
                // pointer-stable for its lifetime (the `WeightRegion`
                // contract); `T` is one of the closed `WeightElem` set
                // (f32 / i8), for which every bit pattern is a valid
                // value.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(*offset) as *const T, *len) }
            }
        }
    }

    /// Mutable access, promoting a borrowed span to an owned copy first
    /// (copy-on-write). Free for already-owned storage.
    fn make_owned(&mut self) -> &mut Vec<T> {
        if matches!(self, Store::Borrowed { .. }) {
            let copied = self.as_slice().to_vec();
            *self = Store::Owned(copied);
        }
        match self {
            Store::Owned(v) => v,
            Store::Borrowed { .. } => unreachable!("promoted above"),
        }
    }

    /// Mutable access for callers about to overwrite every element:
    /// borrowed contents are dropped, not copied. Free for already-owned
    /// storage (and preserves its capacity).
    fn owned_for_overwrite(&mut self) -> &mut Vec<T> {
        if matches!(self, Store::Borrowed { .. }) {
            *self = Store::Owned(Vec::new());
        }
        match self {
            Store::Owned(v) => v,
            Store::Borrowed { .. } => unreachable!("replaced above"),
        }
    }

    /// Bytes owned by this process (borrowed spans live in the shared
    /// region and count zero).
    fn owned_bytes(&self) -> usize {
        match self {
            Store::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Store::Borrowed { .. } => 0,
        }
    }

    fn is_borrowed(&self) -> bool {
        matches!(self, Store::Borrowed { .. })
    }
}

/// A row-major `rows x cols` matrix of `f32`.
#[derive(Clone, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Store<f32>,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Matrix) -> bool {
        // Storage-blind: a borrowed matrix equals an owned one with the
        // same shape and elements (bit-wise f32 comparison, as before).
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: Store::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols);
        Matrix {
            rows,
            cols,
            data: Store::Owned(data),
        }
    }

    /// Glorot/Xavier-uniform initialisation.
    pub fn glorot(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Matrix {
            rows,
            cols,
            data: Store::Owned(data),
        }
    }

    /// Borrows a `rows x cols` span of a shared read-only byte region
    /// (e.g. a memory-mapped snapshot payload) starting at byte `offset`.
    ///
    /// Bounds and `f32` alignment are validated here, once; afterwards
    /// the matrix reads exactly like an owned one (and compares equal to
    /// an owned matrix with the same elements). Mutating entry points
    /// promote to an owned copy first (copy-on-write).
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when the span escapes the region or its
    /// start is misaligned for `f32`.
    pub fn from_region(
        rows: usize,
        cols: usize,
        region: &Arc<dyn WeightRegion>,
        offset: usize,
    ) -> Result<Matrix, StorageError> {
        let len = rows.checked_mul(cols).ok_or(StorageError::OutOfBounds {
            offset,
            len: usize::MAX,
            region: region.bytes().len(),
        })?;
        Ok(Matrix {
            rows,
            cols,
            data: Store::borrowed(Arc::clone(region), offset, len)?,
        })
    }

    /// Bytes of element data owned by this process: the full payload for
    /// owned storage, zero for spans borrowed from a shared region.
    pub fn resident_bytes(&self) -> usize {
        self.data.owned_bytes()
    }

    /// Whether the elements are borrowed from a shared [`WeightRegion`].
    pub fn is_borrowed(&self) -> bool {
        self.data.is_borrowed()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// The underlying mutable row-major slice (copy-on-write for
    /// borrowed storage).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.make_owned()
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice (copy-on-write for borrowed storage).
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols;
        &mut self.data.make_owned()[r * cols..(r + 1) * cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data.as_slice()[r * self.cols + c]
    }

    /// Element assignment (copy-on-write for borrowed storage).
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let idx = r * self.cols + c;
        self.data.make_owned()[idx] = v;
    }

    /// Reshapes to `rows x cols` and zero-fills, reusing the existing
    /// allocation whenever capacity allows — the workhorse of the
    /// allocation-free inference path. Borrowed storage is dropped, not
    /// copied (the contents are discarded anyway).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let data = self.data.owned_for_overwrite();
        data.clear();
        data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows x cols` *without* zeroing retained elements —
    /// for kernels that overwrite every element anyway (skips the memset
    /// that [`Matrix::reset`] pays).
    fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.owned_for_overwrite().resize(rows * cols, 0.0);
    }

    /// Becomes a copy of `src`, reusing the existing allocation whenever
    /// capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        let data = self.data.owned_for_overwrite();
        data.clear();
        data.extend_from_slice(src.as_slice());
    }

    /// `self @ other` with parallel row blocks.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self @ other`, writing into a caller-owned buffer (no heap
    /// allocation once `out` has enough capacity). Runs the blocked
    /// micro-kernel (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        fused_gemm_into(
            self,
            Weights::F32(other.as_slice()),
            None,
            Epilogue::default(),
            other.cols,
            out,
        );
    }

    /// `out += self @ other`, accumulating into an existing buffer — the
    /// standalone counterpart of the split-weight accumulation inside
    /// [`fused_gemm_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` is not
    /// `self.rows x other.cols`.
    pub fn matmul_add_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_add_into accumulator shape mismatch"
        );
        let n = other.cols;
        parallel::for_each_row_block(out.data.make_owned(), n.max(1), MR, |row0, block| {
            let rows = block.len() / n.max(1);
            gemm_tile(self, row0, rows, other.as_slice(), n, block);
        });
    }

    /// `self^T @ other` without materialising the transpose
    /// (used for weight gradients: `X^T @ dY`).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul shape mismatch");
        let (m, n) = (self.cols, other.cols);
        // Accumulate per-thread partials to avoid contended writes.
        let num_chunks = parallel::effective_threads(self.rows);
        let chunk = self.rows.div_ceil(num_chunks).max(1);
        let row_ranges: Vec<(usize, usize)> = (0..self.rows)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(self.rows)))
            .collect();
        let partials: Vec<Matrix> = parallel::map(row_ranges, |(start, end)| {
            let mut acc = Matrix::zeros(m, n);
            for r in start..end {
                let x = self.row(r);
                let y = other.row(r);
                for (i, &xv) in x.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let acc_row = acc.row_mut(i);
                    for (a, &yv) in acc_row.iter_mut().zip(y) {
                        *a += xv * yv;
                    }
                }
            }
            acc
        });
        let mut out = Matrix::zeros(m, n);
        for p in partials {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *o += v;
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose
    /// (used for input gradients: `dY @ W^T`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose shape mismatch");
        let n = other.rows;
        let mut out = Matrix::zeros(self.rows, n);
        parallel::for_each_row(out.data.make_owned(), n.max(1), |r, out_row| {
            let a_row = self.row(r);
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(c);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.hconcat_into(other, &mut out);
        out
    }

    /// `out = [self | other]`, writing into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "hconcat shape mismatch");
        out.reshape_for_overwrite(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Splits horizontally into `[left (cols_left) | right]`.
    ///
    /// # Panics
    ///
    /// Panics if `cols_left > self.cols`.
    pub fn hsplit(&self, cols_left: usize) -> (Matrix, Matrix) {
        assert!(cols_left <= self.cols);
        let mut left = Matrix::zeros(self.rows, cols_left);
        let mut right = Matrix::zeros(self.rows, self.cols - cols_left);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..cols_left]);
            right.row_mut(r).copy_from_slice(&self.row(r)[cols_left..]);
        }
        (left, right)
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        let mut out = self.clone();
        out.relu_in_place();
        out
    }

    /// Element-wise ReLU, in place (copy-on-write for borrowed storage).
    pub fn relu_in_place(&mut self) {
        for v in self.data.make_owned().iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Masks gradients through a ReLU: `out = self * (activated > 0)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn relu_backward(&self, activated: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (activated.rows, activated.cols));
        let mut out = self.clone();
        for (o, &a) in out.as_mut_slice().iter_mut().zip(activated.as_slice()) {
            if a <= 0.0 {
                *o = 0.0;
            }
        }
        out
    }

    /// Adds a row vector (bias) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sums over rows, producing a row vector (bias gradients).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// In-place scaled add: `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (o, &v) in self.data.make_owned().iter_mut().zip(other.as_slice()) {
            *o += scale * v;
        }
    }

    /// Frobenius norm (diagnostics and gradient-check tests).
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// A read-only i8-quantised weight matrix with one `f32` scale per
/// **output column**.
///
/// `value(r, c) ~= data[r * cols + c] as f32 * scales[c]`. Quantisation
/// is symmetric absmax: each column's scale is `max_r |w[r][c]| / 127`,
/// so the i8 range is fully used per column and a column of zeros
/// quantises (and dequantises) to exact zeros. The store is ~4x smaller
/// than the `f32` weights it replaces and is consumed directly by the
/// fused GEMM kernel: raw i8 products are accumulated in `f32` and the
/// column scale is applied once in the epilogue.
#[derive(Clone, Default)]
pub struct QuantisedMatrix {
    rows: usize,
    cols: usize,
    data: Store<i8>,
    scales: Store<f32>,
}

impl PartialEq for QuantisedMatrix {
    fn eq(&self, other: &QuantisedMatrix) -> bool {
        // Storage-blind, like `Matrix`: shape + elements, regardless of
        // where they live.
        self.rows == other.rows
            && self.cols == other.cols
            && self.values() == other.values()
            && self.scales() == other.scales()
    }
}

impl fmt::Debug for QuantisedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QuantisedMatrix({}x{} i8)", self.rows, self.cols)
    }
}

impl QuantisedMatrix {
    /// Quantises an `f32` matrix with per-column symmetric absmax scales.
    pub fn quantise(src: &Matrix) -> QuantisedMatrix {
        let (rows, cols) = (src.rows(), src.cols());
        let mut scales = vec![0.0f32; cols];
        for r in 0..rows {
            for (s, &v) in scales.iter_mut().zip(src.row(r)) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scales {
            *s /= 127.0;
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for (&v, &s) in src.row(r).iter().zip(&scales) {
                let q = if s == 0.0 { 0.0 } else { (v / s).round() };
                data.push(q.clamp(-127.0, 127.0) as i8);
            }
        }
        QuantisedMatrix {
            rows,
            cols,
            data: Store::Owned(data),
            scales: Store::Owned(scales),
        }
    }

    /// Rebuilds a store from its serialised parts (snapshot loading).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or `scales.len() != cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
    ) -> QuantisedMatrix {
        assert_eq!(data.len(), rows * cols, "quantised payload shape mismatch");
        assert_eq!(scales.len(), cols, "one scale per output column");
        QuantisedMatrix {
            rows,
            cols,
            data: Store::Owned(data),
            scales: Store::Owned(scales),
        }
    }

    /// Borrows a quantised store from a shared read-only byte region: the
    /// `rows * cols` i8 values at `values_offset` and the `cols` `f32`
    /// scales at `scales_offset`.
    ///
    /// Bounds and alignment are validated once, here (i8 values accept
    /// any offset; scales must be 4-byte-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`StorageError`] when either span escapes the region or
    /// the scale span is misaligned.
    pub fn from_region(
        rows: usize,
        cols: usize,
        region: &Arc<dyn WeightRegion>,
        values_offset: usize,
        scales_offset: usize,
    ) -> Result<QuantisedMatrix, StorageError> {
        let len = rows.checked_mul(cols).ok_or(StorageError::OutOfBounds {
            offset: values_offset,
            len: usize::MAX,
            region: region.bytes().len(),
        })?;
        Ok(QuantisedMatrix {
            rows,
            cols,
            data: Store::borrowed(Arc::clone(region), values_offset, len)?,
            scales: Store::borrowed(Arc::clone(region), scales_offset, cols)?,
        })
    }

    /// Whether the store is borrowed from a shared [`WeightRegion`].
    pub fn is_borrowed(&self) -> bool {
        self.data.is_borrowed() || self.scales.is_borrowed()
    }

    /// Expands back to `f32` (`q * scale`, exact in `f32`: the product of
    /// an integer in ±127 and an `f32` scale rounds once).
    pub fn dequantise(&self) -> Matrix {
        let (values, scales) = (self.values(), self.scales());
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let row = &values[r * self.cols..(r + 1) * self.cols];
            for (&q, &s) in row.iter().zip(scales) {
                data.push(q as f32 * s);
            }
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw row-major i8 values.
    #[inline]
    pub fn values(&self) -> &[i8] {
        self.data.as_slice()
    }

    /// The per-output-column dequantisation scales.
    #[inline]
    pub fn scales(&self) -> &[f32] {
        self.scales.as_slice()
    }

    /// Bytes of the store owned by this process (i8 payload + f32
    /// scales); spans borrowed from a shared region count zero.
    pub fn resident_bytes(&self) -> usize {
        self.data.owned_bytes() + self.scales.owned_bytes()
    }
}

/// K-dimension cache-block size: one `KC x n` panel of the weight matrix
/// (64 KiB at `n = 64`) stays resident in L1/L2 across the accumulation
/// sweep of a row block.
const KC: usize = 256;

/// Register-tile height: output rows processed per micro-kernel sweep.
/// Each loaded weight panel (the four `b` row slices of a K-quad) is
/// reused across all `MR` rows, cutting weight-load traffic by the tile
/// height; `MR` output rows of accumulators stay live at once, which at
/// `n <= 64` still fits the architectural register/L1 budget.
const MR: usize = 4;

/// A weight element the micro-kernel can promote to `f32` on load — the
/// one seam between the `f32` and i8-quantised storage classes. Both
/// monomorphisations keep the vectorisable N loop; `promote` is an
/// identity for `f32` and a lane-wise int-to-float convert for `i8`.
trait WeightElem: Copy + Send + Sync {
    fn promote(self) -> f32;
}

impl WeightElem for f32 {
    #[inline(always)]
    fn promote(self) -> f32 {
        self
    }
}

impl WeightElem for i8 {
    #[inline(always)]
    fn promote(self) -> f32 {
        self as f32
    }
}

/// A weight operand for [`fused_gemm_into`]: a plain row-major `f32`
/// slice, or the raw i8 values of a [`QuantisedMatrix`] (whose column
/// scales the caller passes separately for the epilogue).
#[derive(Copy, Clone)]
pub(crate) enum Weights<'a> {
    /// Row-major `k x n` `f32` weights.
    F32(&'a [f32]),
    /// Row-major `k x n` i8-quantised weights (apply column scales in the
    /// epilogue).
    I8(&'a [i8]),
}

impl Weights<'_> {
    fn len(&self) -> usize {
        match self {
            Weights::F32(w) => w.len(),
            Weights::I8(w) => w.len(),
        }
    }
}

/// Register-blocked tile micro-kernel: `out[i] += x.row(row0 + i) @ b`
/// for `i in 0..rows`, where `b` is a row-major `x.cols() x n` weight
/// slice and `out` is the contiguous `rows x n` output block.
///
/// K is swept in [`KC`]-sized panels and unrolled four-wide; the four
/// weight-row slices of each K-quad are hoisted out of the row loop, so
/// one panel load feeds all `rows` output rows of the tile (the
/// multi-row register tile). Per output element each step folds four
/// independent products, which the compiler turns into FMA chains
/// vectorised over N. Per-row accumulation order is identical to the
/// single-row kernel this replaces, so `f32` results are bit-identical.
/// The per-row skip on all-zero coefficient quads (and the scalar
/// remainder's zero skip) keeps the sparse 0/1 feature matrices of the
/// first layer cheap.
#[inline]
fn gemm_tile<E: WeightElem>(
    x: &Matrix,
    row0: usize,
    rows: usize,
    b: &[E],
    n: usize,
    out: &mut [f32],
) {
    let k_total = x.cols;
    // Resolve the activation storage once: the inner loops index a plain
    // slice, so borrowed (region-backed) matrices pay nothing per row.
    let a_all = x.as_slice();
    debug_assert_eq!(b.len(), k_total * n);
    debug_assert_eq!(out.len(), rows * n);
    let mut kb = 0;
    while kb < k_total {
        let kend = (kb + KC).min(k_total);
        let mut k = kb;
        while k + 4 <= kend {
            let b0 = &b[k * n..(k + 1) * n];
            let b1 = &b[(k + 1) * n..(k + 2) * n];
            let b2 = &b[(k + 2) * n..(k + 3) * n];
            let b3 = &b[(k + 3) * n..(k + 4) * n];
            for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
                let a_row = &a_all[(row0 + i) * k_total..(row0 + i + 1) * k_total];
                let a0 = a_row[k];
                let a1 = a_row[k + 1];
                let a2 = a_row[k + 2];
                let a3 = a_row[k + 3];
                if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                    for ((((o, &v0), &v1), &v2), &v3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o += a0 * v0.promote()
                            + a1 * v1.promote()
                            + a2 * v2.promote()
                            + a3 * v3.promote();
                    }
                }
            }
            k += 4;
        }
        while k < kend {
            let bk = &b[k * n..(k + 1) * n];
            for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
                let a = a_all[(row0 + i) * k_total + k];
                if a != 0.0 {
                    for (o, &v) in out_row.iter_mut().zip(bk) {
                        *o += a * v.promote();
                    }
                }
            }
            k += 1;
        }
        kb = kend;
    }
}

/// Dispatches one tile through [`gemm_tile`] for either weight storage
/// class.
#[inline]
fn gemm_tile_dyn(x: &Matrix, row0: usize, rows: usize, w: Weights<'_>, n: usize, out: &mut [f32]) {
    match w {
        Weights::F32(b) => gemm_tile(x, row0, rows, b, n, out),
        Weights::I8(b) => gemm_tile(x, row0, rows, b, n, out),
    }
}

/// The post-accumulation work fused into the GEMM: optional per-output-
/// column scales (the i8 dequantisation step — applied *before* the
/// bias, which is stored unscaled), optional bias add, optional ReLU.
/// All of it runs on each freshly accumulated tile while it is still in
/// cache.
#[derive(Copy, Clone, Default)]
pub(crate) struct Epilogue<'a> {
    /// Per-output-column multipliers (i8 dequantisation), length `n`.
    pub scales: Option<&'a [f32]>,
    /// Per-output-column bias, length `n`.
    pub bias: Option<&'a [f32]>,
    /// Clamp the result at zero.
    pub relu: bool,
}

impl Epilogue<'_> {
    #[inline]
    fn apply(&self, out_row: &mut [f32]) {
        if let Some(s) = self.scales {
            for (o, &sv) in out_row.iter_mut().zip(s) {
                *o *= sv;
            }
        }
        match (self.bias, self.relu) {
            (Some(b), true) => {
                for (o, &bv) in out_row.iter_mut().zip(b) {
                    *o = (*o + bv).max(0.0);
                }
            }
            (Some(b), false) => {
                for (o, &bv) in out_row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
            (None, true) => {
                for o in out_row.iter_mut() {
                    *o = o.max(0.0);
                }
            }
            (None, false) => {}
        }
    }
}

/// Fused layer GEMM: `out = act((x1 @ w1 [+ x2 @ w2]) [* scales] [+
/// bias])` in one pass over the output, parallel over [`MR`]-row tile
/// blocks.
///
/// `w1`/`w2` are row-major `x.cols() x n` weight operands (for the SAGE
/// split-weight trick they are the two contiguous halves of one combined
/// `2d x n` matrix, so no weights are copied — and, being halves of one
/// quantised store, they share the one set of column scales in
/// `epilogue`). The epilogue runs while the freshly accumulated rows are
/// still in cache.
///
/// # Panics
///
/// Panics on any shape mismatch between the inputs, weights, epilogue
/// vectors and `n`.
pub(crate) fn fused_gemm_into(
    x1: &Matrix,
    w1: Weights<'_>,
    pair2: Option<(&Matrix, Weights<'_>)>,
    epilogue: Epilogue<'_>,
    n: usize,
    out: &mut Matrix,
) {
    assert_eq!(w1.len(), x1.cols * n, "weight shape mismatch");
    if let Some((x2, w2)) = pair2 {
        assert_eq!(x2.rows, x1.rows, "fused GEMM input row mismatch");
        assert_eq!(w2.len(), x2.cols * n, "second weight shape mismatch");
    }
    if let Some(s) = epilogue.scales {
        assert_eq!(s.len(), n, "scale width mismatch");
    }
    if let Some(b) = epilogue.bias {
        assert_eq!(b.len(), n, "bias width mismatch");
    }
    out.reshape_for_overwrite(x1.rows, n);
    parallel::for_each_row_block(out.data.make_owned(), n.max(1), MR, |row0, block| {
        block.fill(0.0);
        let rows = block.len() / n.max(1);
        gemm_tile_dyn(x1, row0, rows, w1, n, block);
        if let Some((x2, w2)) = pair2 {
            gemm_tile_dyn(x2, row0, rows, w2, n, block);
        }
        for out_row in block.chunks_exact_mut(n.max(1)) {
            epilogue.apply(out_row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::glorot(rows, cols, &mut rng)
    }

    /// Capacity and base pointer of a matrix's owned storage (panics on
    /// borrowed storage — the allocation-reuse tests only make sense for
    /// owned buffers).
    fn owned_parts(m: &Matrix) -> (usize, *const f32) {
        match &m.data {
            Store::Owned(v) => (v.capacity(), v.as_ptr()),
            Store::Borrowed { .. } => panic!("expected owned storage"),
        }
    }

    /// A test [`WeightRegion`] with a guaranteed 8-byte-aligned base, so
    /// alignment outcomes are deterministic (a `Vec<u8>` base only has
    /// alignment 1 on paper).
    struct AlignedRegion(Vec<u64>);

    impl AlignedRegion {
        fn from_bytes(bytes: &[u8]) -> AlignedRegion {
            let mut words = vec![0u64; bytes.len().div_ceil(8)];
            // SAFETY: u64 -> u8 reinterpretation of an owned buffer; the
            // byte length never exceeds the allocation.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, bytes.len())
            };
            dst.copy_from_slice(bytes);
            AlignedRegion(words)
        }
    }

    impl WeightRegion for AlignedRegion {
        fn bytes(&self) -> &[u8] {
            // SAFETY: in-bounds u64 -> u8 reinterpretation.
            unsafe { std::slice::from_raw_parts(self.0.as_ptr() as *const u8, self.0.len() * 8) }
        }
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let a = small(17, 9, 1);
        let b = small(9, 13, 2);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
    }

    /// The blocked kernel must survive K spanning multiple cache panels
    /// plus a non-multiple-of-4 remainder, and N not a register multiple.
    #[test]
    fn blocked_matmul_handles_odd_shapes_across_panels() {
        for (m, k, n) in [(3, 2 * 256 + 3, 5), (1, 255, 1), (4, 7, 13)] {
            let a = small(m, k, 21 + k as u64);
            let b = small(k, n, 22 + n as u64);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn matmul_add_into_accumulates_on_top() {
        let a = small(7, 9, 31);
        let b = small(9, 6, 32);
        let mut out = Matrix::zeros(7, 6);
        a.matmul_add_into(&b, &mut out);
        a.matmul_add_into(&b, &mut out);
        let once = naive_matmul(&a, &b);
        let mut twice = once.clone();
        twice.add_scaled(&once, 1.0);
        assert_close(&out, &twice);
    }

    /// The fused epilogue (bias + ReLU inside the GEMM) matches the
    /// unfused matmul → bias → ReLU composition exactly.
    #[test]
    fn fused_epilogue_matches_unfused_composition() {
        let x = small(6, 10, 41);
        let w = small(10, 4, 42);
        let bias: Vec<f32> = (0..4).map(|i| i as f32 * 0.25 - 0.4).collect();
        let mut fused = Matrix::default();
        fused_gemm_into(
            &x,
            Weights::F32(w.as_slice()),
            None,
            Epilogue {
                scales: None,
                bias: Some(&bias),
                relu: true,
            },
            4,
            &mut fused,
        );
        let mut unfused = x.matmul(&w);
        unfused.add_row_vector(&bias);
        unfused.relu_in_place();
        assert_eq!(fused, unfused);
    }

    /// Split-weight GEMM: `[h | agg] @ W` equals `h @ W_self + agg @
    /// W_neigh` when the halves are the contiguous row halves of `W`.
    #[test]
    fn split_weight_gemm_matches_concat_path() {
        let h = small(9, 6, 51);
        let agg = small(9, 6, 52);
        let w = small(12, 7, 53);
        let (w_self, w_neigh) = w.as_slice().split_at(6 * 7);
        let mut split = Matrix::default();
        fused_gemm_into(
            &h,
            Weights::F32(w_self),
            Some((&agg, Weights::F32(w_neigh))),
            Epilogue::default(),
            7,
            &mut split,
        );
        let concat = h.hconcat(&agg);
        assert_close(&split, &naive_matmul(&concat, &w));
    }

    #[test]
    fn transpose_matmul_matches_naive() {
        let a = small(23, 7, 3);
        let b = small(23, 11, 4);
        // a^T @ b
        let mut at = Matrix::zeros(a.cols(), a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&a.transpose_matmul(&b), &naive_matmul(&at, &b));
    }

    #[test]
    fn matmul_transpose_matches_naive() {
        let a = small(9, 6, 5);
        let b = small(14, 6, 6);
        let mut bt = Matrix::zeros(b.cols(), b.rows());
        for i in 0..b.rows() {
            for j in 0..b.cols() {
                bt.set(j, i, b.get(i, j));
            }
        }
        assert_close(&a.matmul_transpose(&b), &naive_matmul(&a, &bt));
    }

    #[test]
    fn concat_and_split_roundtrip() {
        let a = small(5, 3, 7);
        let b = small(5, 4, 8);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 7);
        let (l, r) = cat.hsplit(3);
        assert_close(&l, &a);
        assert_close(&r, &b);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = x.relu();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gx = g.relu_backward(&y);
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut x = Matrix::zeros(3, 2);
        x.add_row_vector(&[1.0, -2.0]);
        assert_eq!(x.column_sums(), vec![3.0, -6.0]);
    }

    /// `_into` kernels reuse the destination's allocation: repeated calls
    /// at the same (or smaller) shape never reallocate, and results match
    /// the allocating variants exactly.
    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let a = small(17, 9, 1);
        let b = small(9, 13, 2);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_close(&out, &a.matmul(&b));
        let (cap, ptr) = owned_parts(&out);
        // Same shape again: no growth, same buffer.
        a.matmul_into(&b, &mut out);
        assert_eq!(owned_parts(&out), (cap, ptr));
        // Smaller product fits in the same buffer.
        let c = small(5, 9, 3);
        c.matmul_into(&b, &mut out);
        assert_eq!(owned_parts(&out).0, cap);
        assert_close(&out, &c.matmul(&b));

        let mut cat = Matrix::default();
        let x = small(5, 3, 7);
        let y = small(5, 4, 8);
        x.hconcat_into(&y, &mut cat);
        assert_close(&cat, &x.hconcat(&y));

        let mut r = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        r.relu_in_place();
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0, 0.0]);

        let mut dst = Matrix::default();
        dst.copy_from(&x);
        assert_eq!(dst, x);
    }

    #[test]
    fn reset_zeroes_and_reshapes() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        m.reset(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    /// Quantise → dequantise is idempotent on already-dequantised values
    /// (the i8 payload and scales reproduce exactly), and the error of a
    /// single quantisation round is bounded by half a quantisation step
    /// per column.
    #[test]
    fn quantise_roundtrip_and_error_bound() {
        let w = small(24, 9, 71);
        let q = QuantisedMatrix::quantise(&w);
        assert_eq!((q.rows(), q.cols()), (24, 9));
        assert_eq!(q.values().len(), 24 * 9);
        assert_eq!(q.scales().len(), 9);
        let deq = q.dequantise();
        for c in 0..9 {
            let step = q.scales()[c];
            for r in 0..24 {
                assert!(
                    (deq.get(r, c) - w.get(r, c)).abs() <= 0.5 * step + 1e-7,
                    "({r},{c}): {} vs {} exceeds half a step {step}",
                    deq.get(r, c),
                    w.get(r, c)
                );
            }
        }
        // Requantising the dequantised values is exact.
        let q2 = QuantisedMatrix::quantise(&deq);
        assert_eq!(q2.values(), q.values());
        for (a, b) in q2.scales().iter().zip(q.scales()) {
            assert!((a - b).abs() <= f32::EPSILON * b.abs(), "{a} vs {b}");
        }
        // ~4x smaller than the f32 store it replaces.
        assert!(q.resident_bytes() * 3 < 24 * 9 * 4);
    }

    /// An all-zero column quantises to scale 0 / values 0 and dequantises
    /// back to exact zeros (no division by the zero absmax).
    #[test]
    fn quantise_handles_zero_columns() {
        let mut w = small(6, 4, 72);
        for r in 0..6 {
            w.set(r, 2, 0.0);
        }
        let q = QuantisedMatrix::quantise(&w);
        assert_eq!(q.scales()[2], 0.0);
        let deq = q.dequantise();
        for r in 0..6 {
            assert_eq!(deq.get(r, 2), 0.0);
        }
    }

    /// The quantised GEMM path (i8 accumulation + epilogue scales) equals
    /// the f32 GEMM over the dequantised weights to float tolerance, for
    /// both the plain and the split-weight form.
    #[test]
    fn quantised_gemm_matches_dequantised_f32_path() {
        let x = small(9, 20, 81);
        let w = small(20, 7, 82);
        let q = QuantisedMatrix::quantise(&w);
        let deq = q.dequantise();
        let bias: Vec<f32> = (0..7).map(|i| i as f32 * 0.1 - 0.3).collect();
        for relu in [false, true] {
            let mut quant = Matrix::default();
            fused_gemm_into(
                &x,
                Weights::I8(q.values()),
                None,
                Epilogue {
                    scales: Some(q.scales()),
                    bias: Some(&bias),
                    relu,
                },
                7,
                &mut quant,
            );
            let mut f32_path = Matrix::default();
            fused_gemm_into(
                &x,
                Weights::F32(deq.as_slice()),
                None,
                Epilogue {
                    scales: None,
                    bias: Some(&bias),
                    relu,
                },
                7,
                &mut f32_path,
            );
            assert_close(&quant, &f32_path);
        }

        // Split-weight: the two row halves of one quantised store share
        // its column scales.
        let h = small(5, 10, 83);
        let agg = small(5, 10, 84);
        let (q_self, q_neigh) = q.values().split_at(10 * 7);
        let mut split = Matrix::default();
        fused_gemm_into(
            &h,
            Weights::I8(q_self),
            Some((&agg, Weights::I8(q_neigh))),
            Epilogue {
                scales: Some(q.scales()),
                bias: None,
                relu: false,
            },
            7,
            &mut split,
        );
        let concat = h.hconcat(&agg);
        assert_close(&split, &naive_matmul(&concat, &deq));
    }

    /// Multi-row tiles must survive row counts off the tile height: every
    /// `m mod MR` residue, including sub-tile matrices.
    #[test]
    fn tiled_matmul_handles_all_row_remainders() {
        for m in 1..=9usize {
            let a = small(m, 37, 90 + m as u64);
            let b = small(37, 5, 91);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b));
        }
    }

    #[test]
    fn glorot_is_bounded_and_seeded() {
        let a = small(64, 32, 42);
        let b = small(64, 32, 42);
        assert_eq!(a, b, "deterministic under the same seed");
        let limit = (6.0 / 96.0f32).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= limit));
    }

    /// Region-borrowed storage reads (and GEMMs) bit-identically to the
    /// owned matrix it was serialised from, promotes to an owned copy on
    /// mutation, and leaves the shared region untouched.
    #[test]
    fn borrowed_storage_reads_and_promotes_on_write() {
        let src = small(4, 3, 101);
        let mut bytes = vec![0u8; 4 + 12 * 4];
        for (i, v) in src.as_slice().iter().enumerate() {
            bytes[4 + i * 4..8 + i * 4].copy_from_slice(&v.to_le_bytes());
        }
        let region: Arc<dyn WeightRegion> = Arc::new(AlignedRegion::from_bytes(&bytes));
        let mut m = Matrix::from_region(4, 3, &region, 4).unwrap();
        assert!(m.is_borrowed());
        assert_eq!(m.resident_bytes(), 0);
        assert_eq!(m, src, "borrowed == owned, element for element");
        // GEMM over borrowed weights is bit-identical to owned weights.
        let x = small(5, 4, 102);
        assert_eq!(x.matmul(&m), x.matmul(&src));
        // Mutation promotes (copy-on-write); the region is unaffected.
        m.set(0, 0, 9.0);
        assert!(!m.is_borrowed());
        assert_eq!(m.resident_bytes(), 12 * 4);
        assert_eq!(m.get(0, 0), 9.0);
        assert_eq!(Matrix::from_region(4, 3, &region, 4).unwrap(), src);
    }

    /// Overwrite-style entry points swap borrowed storage for owned
    /// without copying the discarded contents.
    #[test]
    fn overwrite_paths_drop_borrowed_storage() {
        let src = small(4, 3, 103);
        let mut bytes = vec![0u8; 12 * 4];
        for (i, v) in src.as_slice().iter().enumerate() {
            bytes[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
        }
        let region: Arc<dyn WeightRegion> = Arc::new(AlignedRegion::from_bytes(&bytes));
        let mut m = Matrix::from_region(4, 3, &region, 0).unwrap();
        m.reset(2, 2);
        assert!(!m.is_borrowed());
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));

        let mut m = Matrix::from_region(4, 3, &region, 0).unwrap();
        m.copy_from(&small(2, 2, 104));
        assert!(!m.is_borrowed());
        assert_eq!(m, small(2, 2, 104));
    }

    /// Bad region spans are typed [`StorageError`]s at construction, not
    /// panics (and certainly not unchecked slices).
    #[test]
    fn bad_region_spans_are_typed_errors() {
        let region: Arc<dyn WeightRegion> = Arc::new(AlignedRegion(vec![0u64; 4])); // 32 bytes
        assert_eq!(
            Matrix::from_region(2, 2, &region, 2).unwrap_err(),
            StorageError::Misaligned {
                offset: 2,
                align: 4
            }
        );
        assert_eq!(
            Matrix::from_region(3, 3, &region, 0).unwrap_err(),
            StorageError::OutOfBounds {
                offset: 0,
                len: 36,
                region: 32
            }
        );
        assert!(matches!(
            Matrix::from_region(usize::MAX, 2, &region, 0).unwrap_err(),
            StorageError::OutOfBounds { .. }
        ));
        assert!(matches!(
            Matrix::from_region(2, 2, &region, usize::MAX - 2).unwrap_err(),
            StorageError::OutOfBounds { .. }
        ));
        // i8 values have alignment 1, so odd offsets are fine; bounds
        // still hold, and the f32 scales still need alignment.
        assert!(QuantisedMatrix::from_region(3, 3, &region, 1, 12).is_ok());
        assert!(QuantisedMatrix::from_region(3, 3, &region, 1, 30).is_err());
        assert!(matches!(
            QuantisedMatrix::from_region(3, 3, &region, 1, 10).unwrap_err(),
            StorageError::Misaligned { .. }
        ));
    }

    /// A borrowed quantised store behaves exactly like the owned one it
    /// was serialised from.
    #[test]
    fn borrowed_quantised_store_matches_owned() {
        let w = small(8, 5, 111);
        let q = QuantisedMatrix::quantise(&w);
        // Layout: 40 i8 values at 0, five f32 scales at 40 (4-aligned).
        let mut bytes = vec![0u8; 60];
        for (i, &v) in q.values().iter().enumerate() {
            bytes[i] = v as u8;
        }
        for (i, &s) in q.scales().iter().enumerate() {
            bytes[40 + i * 4..44 + i * 4].copy_from_slice(&s.to_le_bytes());
        }
        let region: Arc<dyn WeightRegion> = Arc::new(AlignedRegion::from_bytes(&bytes));
        let qb = QuantisedMatrix::from_region(8, 5, &region, 0, 40).unwrap();
        assert!(qb.is_borrowed());
        assert_eq!(qb.resident_bytes(), 0);
        assert_eq!(qb, q);
        assert_eq!(qb.dequantise(), q.dequantise());
        // The quantised GEMM consumes borrowed and owned stores
        // identically.
        let x = small(6, 8, 112);
        let mut owned = Matrix::default();
        let mut borrowed = Matrix::default();
        for (src, out) in [(&q, &mut owned), (&qb, &mut borrowed)] {
            fused_gemm_into(
                &x,
                Weights::I8(src.values()),
                None,
                Epilogue {
                    scales: Some(src.scales()),
                    bias: None,
                    relu: false,
                },
                5,
                out,
            );
        }
        assert_eq!(owned, borrowed);
    }
}
