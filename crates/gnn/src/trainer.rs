//! Full-batch multi-task training over one or more labelled graphs.

use crate::adam::Adam;
use crate::graph::Graph;
use crate::loss::{accuracy, nll_loss};
use crate::model::{InferenceScratch, MultiTaskSage, Tape};
use crate::tensor::Matrix;

/// One labelled graph: structure, node features, and per-task targets.
#[derive(Clone, Debug)]
pub struct GraphData {
    /// Message-passing structure.
    pub graph: Graph,
    /// `num_nodes x in_dim` node features.
    pub features: Matrix,
    /// Per task: one class index per node.
    pub labels: Vec<Vec<u32>>,
}

impl GraphData {
    /// Validates internal consistency (row counts, label ranges are checked
    /// lazily by the loss).
    ///
    /// # Panics
    ///
    /// Panics if features or labels do not cover every node.
    pub fn validate(&self, num_tasks: usize) {
        assert_eq!(self.features.rows(), self.graph.num_nodes());
        assert_eq!(self.labels.len(), num_tasks);
        for l in &self.labels {
            assert_eq!(l.len(), self.graph.num_nodes());
        }
    }
}

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-task loss weights — the paper uses α=0.8 (root/leaf), β=γ=1
    /// (XOR, MAJ).
    pub task_weights: Vec<f32>,
    /// Print a progress line every `log_every` epochs (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 120,
            lr: 8e-3,
            task_weights: vec![0.8, 1.0, 1.0],
            log_every: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Summed multi-task loss per epoch (averaged over graphs).
    pub epoch_losses: Vec<f32>,
    /// Final per-task accuracy on the training set.
    pub train_accuracy: Vec<f64>,
}

/// Trains `model` full-batch on the given graphs.
///
/// # Panics
///
/// Panics if a dataset entry is inconsistent with the model's task count
/// or the weight vector length differs from the task count.
pub fn train(model: &mut MultiTaskSage, data: &[GraphData], cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "training set must be non-empty");
    assert_eq!(
        cfg.task_weights.len(),
        model.num_tasks(),
        "one loss weight per task count"
    );
    for d in data {
        d.validate(model.num_tasks());
    }
    let mut opt = Adam::new(cfg.lr);
    // The trainer owns the training state: the model itself stays
    // immutable through every forward pass.
    let mut tape = Tape::default();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let mut total = 0.0f32;
        for d in data {
            model.zero_grad();
            let logits = model.forward_train(&d.graph, &d.features, &mut tape);
            let mut grads = Vec::with_capacity(logits.len());
            for (t, l) in logits.iter().enumerate() {
                let (loss, grad) = nll_loss(l, &d.labels[t], cfg.task_weights[t]);
                total += loss;
                grads.push(grad);
            }
            model.backward(&d.graph, &grads, &tape);
            opt.step(model.param_grads());
        }
        let avg = total / data.len() as f32;
        epoch_losses.push(avg);
        if cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0 {
            eprintln!("epoch {:4}  loss {avg:.4}", epoch + 1);
        }
    }
    TrainReport {
        epoch_losses,
        train_accuracy: evaluate(model, data),
    }
}

/// Per-task accuracy of `model` averaged over `data` (node-weighted).
pub fn evaluate(model: &MultiTaskSage, data: &[GraphData]) -> Vec<f64> {
    let mut correct = vec![0.0f64; model.num_tasks()];
    let mut total_nodes = 0usize;
    let mut scratch = InferenceScratch::default();
    for d in data {
        let logits = model.infer(&d.graph, &d.features, &mut scratch);
        for (t, l) in logits.iter().enumerate() {
            correct[t] += accuracy(l, &d.labels[t]) * d.graph.num_nodes() as f64;
        }
        total_nodes += d.graph.num_nodes();
    }
    correct
        .into_iter()
        .map(|c| c / total_nodes.max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use crate::model::{ModelConfig, MultiTaskSage};

    /// A toy two-class problem the model must overfit: nodes with feature
    /// bit 0 set are class 1 for task A; nodes with an odd number of
    /// neighbors are class 1 for task B.
    fn toy_data() -> GraphData {
        let n = 24;
        let mut edges = Vec::new();
        for i in 0..(n as u32 - 1) {
            edges.push((i, i + 1));
            if i % 3 == 0 && i + 2 < n as u32 {
                edges.push((i, i + 2));
            }
        }
        let graph = Graph::from_edges(n, &edges, Direction::Bidirectional);
        let mut features = Matrix::zeros(n, 3);
        let mut la = Vec::new();
        let mut lb = Vec::new();
        for v in 0..n {
            if v % 2 == 0 {
                features.set(v, 0, 1.0);
            }
            features.set(v, 1, (v % 3) as f32 * 0.5);
            la.push((v % 2 == 0) as u32);
            lb.push((graph.neighbors(v).len() % 2) as u32);
        }
        GraphData {
            graph,
            features,
            labels: vec![la, lb],
        }
    }

    #[test]
    fn training_overfits_toy_problem() {
        let data = vec![toy_data()];
        let mut model = MultiTaskSage::new(ModelConfig {
            in_dim: 3,
            hidden: 16,
            layers: 3,
            shared_dim: 16,
            task_classes: vec![2, 2],
            seed: 3,
        });
        let cfg = TrainConfig {
            epochs: 200,
            lr: 1e-2,
            task_weights: vec![1.0, 1.0],
            log_every: 0,
        };
        let report = train(&mut model, &data, &cfg);
        assert!(
            report.epoch_losses.last().unwrap() < &0.2,
            "loss {:?}",
            report.epoch_losses.last()
        );
        assert!(
            report.train_accuracy.iter().all(|&a| a > 0.95),
            "accuracy {:?}",
            report.train_accuracy
        );
    }

    #[test]
    fn evaluate_untrained_is_poorish() {
        let data = vec![toy_data()];
        let model = MultiTaskSage::new(ModelConfig {
            in_dim: 3,
            hidden: 8,
            layers: 2,
            shared_dim: 8,
            task_classes: vec![2, 2],
            seed: 5,
        });
        let acc = evaluate(&model, &data);
        assert_eq!(acc.len(), 2);
        assert!(acc.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    #[should_panic(expected = "task count")]
    fn weight_count_validated() {
        let data = vec![toy_data()];
        let mut model = MultiTaskSage::new(ModelConfig {
            in_dim: 3,
            hidden: 4,
            layers: 1,
            shared_dim: 4,
            task_classes: vec![2, 2],
            seed: 1,
        });
        let cfg = TrainConfig {
            task_weights: vec![1.0],
            ..TrainConfig::default()
        };
        let _ = train(&mut model, &data, &cfg);
    }
}
