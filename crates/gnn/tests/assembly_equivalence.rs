//! Parallel/serial equivalence: the sectioned CSR build and the tiled
//! aggregation kernels must be **bit-identical** to their serial
//! counterparts, for every direction, across awkward shapes (empty
//! sections, isolated nodes, node counts that are not multiples of the
//! tile size) and under every thread budget.
//!
//! The suite runs in two regimes:
//! - proptest over small random sectioned graphs, where the sectioned
//!   entry point takes its serial fallback — guards the contract checks
//!   and the fallback's stream ordering;
//! - deterministic large graphs (above `parallel`'s per-thread row
//!   cutoff) with an explicit intra-thread cap, where the scoped-thread
//!   fan-out actually engages — guards the disjoint-slice passes and the
//!   split prefix sum.

use gamora_gnn::{parallel, Direction, Graph, Matrix, ModelConfig, MultiTaskSage};
use proptest::collection::vec;
use proptest::prelude::*;

/// Restores the caller's intra-thread cap on drop, so a failing assert
/// can't leak a forced budget into other tests on the same thread.
struct CapGuard(usize);

impl CapGuard {
    fn set(limit: usize) -> CapGuard {
        let prev = parallel::intra_threads();
        parallel::set_intra_threads(limit);
        CapGuard(prev)
    }
}

impl Drop for CapGuard {
    fn drop(&mut self) {
        parallel::set_intra_threads(self.0);
    }
}

/// Builds the same sectioned edge set through both entry points and
/// asserts every observable array is bit-identical.
fn assert_sectioned_matches_streamed(sections: &[(usize, Vec<(u32, u32)>)], direction: Direction) {
    let spans: Vec<(usize, usize)> = sections
        .iter()
        .scan(0usize, |base, (n, _)| {
            let span = (*base, *n);
            *base += n;
            Some(span)
        })
        .collect();
    let num_nodes: usize = sections.iter().map(|(n, _)| *n).sum();

    let mut serial = Graph::default();
    Graph::from_edges_into(
        num_nodes,
        direction,
        |sink| {
            for ((_, edges), &(base, _)) in sections.iter().zip(&spans) {
                for &(s, d) in edges {
                    sink(s + base as u32, d + base as u32);
                }
            }
        },
        &mut serial,
    );

    let mut sectioned = Graph::default();
    Graph::from_sections_into(
        num_nodes,
        direction,
        sections.len(),
        |i| spans[i],
        |i, sink| {
            let base = spans[i].0 as u32;
            for &(s, d) in &sections[i].1 {
                sink(s + base, d + base);
            }
        },
        &mut sectioned,
    );

    assert_eq!(sectioned.num_nodes(), serial.num_nodes());
    assert_eq!(sectioned.num_edges(), serial.num_edges());
    for v in 0..num_nodes {
        assert_eq!(sectioned.neighbors(v), serial.neighbors(v), "node {v}");
    }
    // inv_deg and the reverse adjacency are private; mean aggregation
    // exercises forward offsets + inv_deg, the backward pass exercises
    // the reverse arrays. Bitwise equality of both outputs pins them all.
    let h = feature_ramp(num_nodes, 3);
    assert_eq!(
        serial.mean_aggregate(&h).as_slice(),
        sectioned.mean_aggregate(&h).as_slice()
    );
    assert_eq!(
        serial.mean_aggregate_backward(&h).as_slice(),
        sectioned.mean_aggregate_backward(&h).as_slice()
    );
}

/// Deterministic non-uniform matrix (dyadic values, exact in f32).
fn feature_ramp(rows: usize, cols: usize) -> Matrix {
    let mut h = Matrix::zeros(rows.max(1), cols);
    for (i, v) in h.as_mut_slice().iter_mut().enumerate() {
        *v = ((i % 23) as f32 - 11.0) * 0.25;
    }
    h
}

/// One random section: a node count (possibly zero) and edges drawn
/// inside it, including duplicates and self-loops.
fn section() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (0usize..24, 0usize..48).prop_flat_map(|(n, m)| {
        vec((0u32..24, 0u32..24), m).prop_map(move |edges| {
            if n == 0 {
                (0, Vec::new())
            } else {
                let wrap = |v: u32| v % n as u32;
                (n, edges.iter().map(|&(s, d)| (wrap(s), wrap(d))).collect())
            }
        })
    })
}

/// Between 1 and 5 random sections.
fn sections() -> impl Strategy<Value = Vec<(usize, Vec<(u32, u32)>)>> {
    (1usize..6).prop_flat_map(|k| vec(section(), k))
}

proptest! {
    /// Small sectioned graphs (serial fallback regime): bit-identical to
    /// the streamed build for every direction, including empty sections,
    /// isolated nodes and duplicate edges.
    #[test]
    fn sectioned_equals_streamed_small(sections in sections()) {
        for direction in [Direction::Fanin, Direction::Fanout, Direction::Bidirectional] {
            assert_sectioned_matches_streamed(&sections, direction);
        }
    }

    /// A 1-thread cap forces the serial path through the sectioned entry
    /// point; the result must still match the streamed build exactly.
    #[test]
    fn sectioned_equals_streamed_forced_serial(sections in sections()) {
        let _guard = CapGuard::set(1);
        assert_sectioned_matches_streamed(&sections, Direction::Bidirectional);
    }

    /// Tiled mean aggregation at a multi-thread cap is bit-identical to
    /// the 1-thread kernel on small graphs of awkward (non-tile-multiple)
    /// sizes.
    #[test]
    fn aggregation_cap_invariant_small(
        n in 1usize..60,
        edges in (0usize..80).prop_flat_map(|m| vec((0u32..60, 0u32..60), m)),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u32, d % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges, Direction::Bidirectional);
        let h = feature_ramp(n, 7);
        let serial = {
            let _one = CapGuard::set(1);
            g.mean_aggregate(&h)
        };
        let tiled = {
            let _four = CapGuard::set(4);
            g.mean_aggregate(&h)
        };
        prop_assert_eq!(serial.as_slice(), tiled.as_slice());
    }
}

/// Deterministic sectioned graph large enough to engage the scoped-thread
/// fan-out: `num_nodes` is far above `parallel`'s per-thread cutoff and
/// the section sizes are deliberately lopsided and non-tile-multiple.
fn large_sections() -> Vec<(usize, Vec<(u32, u32)>)> {
    let sizes = [9473usize, 1, 0, 6301, 4096, 777];
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    sizes
        .iter()
        .map(|&n| {
            let mut edges = Vec::new();
            // ~2 edges per node, plus guaranteed isolated tail nodes.
            for _ in 0..n.saturating_mul(2) {
                let s = (next() % n.max(1) as u64) as u32;
                let d = (next() % n.max(1) as u64) as u32;
                edges.push((s, d));
            }
            (n, edges)
        })
        .collect()
}

#[test]
fn sectioned_equals_streamed_large_parallel() {
    let sections = large_sections();
    let _guard = CapGuard::set(4);
    for direction in [
        Direction::Fanin,
        Direction::Fanout,
        Direction::Bidirectional,
    ] {
        assert_sectioned_matches_streamed(&sections, direction);
    }
}

#[test]
fn sectioned_reuse_across_thread_budgets() {
    // The same Graph instance rebuilt under different caps must converge
    // to identical arrays — buffer reuse can't leak stale slots.
    let sections = large_sections();
    let spans: Vec<(usize, usize)> = sections
        .iter()
        .scan(0usize, |base, (n, _)| {
            let span = (*base, *n);
            *base += n;
            Some(span)
        })
        .collect();
    let num_nodes: usize = sections.iter().map(|(n, _)| *n).sum();
    let build = |cap: usize, out: &mut Graph| {
        let _guard = CapGuard::set(cap);
        Graph::from_sections_into(
            num_nodes,
            Direction::Bidirectional,
            sections.len(),
            |i| spans[i],
            |i, sink| {
                let base = spans[i].0 as u32;
                for &(s, d) in &sections[i].1 {
                    sink(s + base, d + base);
                }
            },
            out,
        );
    };
    let mut reference = Graph::default();
    build(1, &mut reference);
    let mut reused = Graph::default();
    for cap in [4, 1, 3, 2] {
        build(cap, &mut reused);
        assert_eq!(reused.num_edges(), reference.num_edges());
        for v in 0..num_nodes {
            assert_eq!(reused.neighbors(v), reference.neighbors(v), "cap, node {v}");
        }
    }
}

#[test]
fn model_embeddings_cap_invariant_large() {
    // Full forward pass on a >8192-node graph: logits at a 4-thread cap
    // must be bit-identical to the 1-thread kernels.
    let sections = large_sections();
    let spans: Vec<(usize, usize)> = sections
        .iter()
        .scan(0usize, |base, (n, _)| {
            let span = (*base, *n);
            *base += n;
            Some(span)
        })
        .collect();
    let num_nodes: usize = sections.iter().map(|(n, _)| *n).sum();
    let mut graph = Graph::default();
    {
        let _guard = CapGuard::set(4);
        Graph::from_sections_into(
            num_nodes,
            Direction::Bidirectional,
            sections.len(),
            |i| spans[i],
            |i, sink| {
                let base = spans[i].0 as u32;
                for &(s, d) in &sections[i].1 {
                    sink(s + base, d + base);
                }
            },
            &mut graph,
        );
    }
    let x = feature_ramp(num_nodes, 3);
    let model = MultiTaskSage::new(ModelConfig::shallow(3, vec![4, 2, 2]));
    let serial_logits = {
        let _one = CapGuard::set(1);
        model.forward(&graph, &x)
    };
    let parallel_logits = {
        let _four = CapGuard::set(4);
        model.forward(&graph, &x)
    };
    assert_eq!(serial_logits.len(), parallel_logits.len());
    for (s, p) in serial_logits.iter().zip(&parallel_logits) {
        assert_eq!(s.as_slice(), p.as_slice());
    }
}
