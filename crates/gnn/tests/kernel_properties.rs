//! Property tests for the blocked/fused GEMM kernels against naive
//! references (vendored proptest shim).
//!
//! Activation values are dyadic rationals (multiples of 1/64 in [-1, 1]),
//! so every product is exact in `f32` and the accumulated sums stay well
//! inside the 24-bit mantissa: the blocked kernel and the naive triple
//! loop must then agree *exactly*, which makes the 1e-5 tolerance a hard
//! bound rather than a statistical one, while still exercising every
//! cache-panel and register-remainder path.

use gamora_gnn::{Direction, Graph, Linear, Matrix, SageLayer};
use proptest::collection;
use proptest::prelude::*;
use rand::SeedableRng;

/// A strategy for `len` dyadic `f32`s in [-1, 1] (exact products).
fn dyadic(len: usize) -> impl Strategy<Value = Vec<f32>> {
    collection::vec(0u32..129, len).prop_map(|v| {
        v.into_iter()
            .map(|x| (x as f32 - 64.0) / 64.0)
            .collect::<Vec<f32>>()
    })
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_close(got: &Matrix, want: &Matrix, tol: f32, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}"
    );
    for (r, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            (g - w).abs() <= tol,
            "{what}: element {r}: {g} vs {w} (diff {})",
            (g - w).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The register-blocked matmul matches the naive triple loop to 1e-5
    /// across shapes that hit every kernel path: K below / across / beyond
    /// one 256-wide cache panel, K and N not multiples of the 4-wide
    /// unroll, single rows and single columns.
    #[test]
    fn blocked_matmul_matches_naive_reference(
        case in (1usize..5, 1usize..600, 1usize..10).prop_flat_map(|(m, k, n)| {
            (dyadic(m * k), dyadic(k * n)).prop_map(move |(a, b)| (m, k, n, a, b))
        })
    ) {
        let (m, k, n, a, b) = case;
        let a = Matrix::from_vec(m, k, a);
        let b = Matrix::from_vec(k, n, b);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5, "matmul");

        // The accumulating variant adds exactly one more product term.
        let mut acc = naive_matmul(&a, &b);
        a.matmul_add_into(&b, &mut acc);
        let mut twice = naive_matmul(&a, &b);
        twice.add_scaled(&naive_matmul(&a, &b), 1.0);
        assert_close(&acc, &twice, 1e-5, "matmul_add_into");
    }

    /// The fused linear layer (bias + optional ReLU inside the GEMM
    /// epilogue) matches the unfused naive composition.
    #[test]
    fn fused_linear_matches_naive_reference(
        case in (1usize..7, 1usize..40, 1usize..8, any::<u64>()).prop_flat_map(|(m, k, n, seed)| {
            dyadic(m * k).prop_map(move |x| (m, k, n, seed, x))
        })
    ) {
        let (m, k, n, seed, x) = case;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Matrix::from_vec(m, k, x);
        for relu in [false, true] {
            let lin = Linear::new(k, n, relu, &mut rng);
            let mut want = naive_matmul(&x, &lin.w);
            want.add_row_vector(&lin.b);
            if relu {
                want.relu_in_place();
            }
            assert_close(&lin.forward(&x), &want, 1e-5, "fused linear");
        }
    }

    /// The split-weight SAGE forward (`h @ W_self + agg @ W_neigh`, fused
    /// bias + ReLU) matches the concat-then-matmul reference, including
    /// rows whose aggregation neighborhood is empty (isolated nodes: only
    /// the first `n / 2` nodes ever appear in an edge).
    #[test]
    fn split_weight_sage_matches_concat_reference(
        case in (3usize..12, 1usize..5, 1usize..6, 0usize..24, any::<u64>())
            .prop_flat_map(|(n, d_in, d_out, ne, seed)| {
                let span = (n / 2).max(1) as u32;
                (collection::vec((0u32..span, 0u32..span), ne), dyadic(n * d_in))
                    .prop_map(move |(edges, h)| (n, d_in, d_out, seed, edges, h))
            })
    ) {
        let (n, d_in, d_out, seed, edges, h) = case;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let layer = SageLayer::new(d_in, d_out, &mut rng);
        let graph = Graph::from_edges(n, &edges, Direction::Bidirectional);
        let h = Matrix::from_vec(n, d_in, h);

        // Reference: materialise the concat and push it through the
        // combined weight matrix with the naive loop.
        let slices = layer.param_slices();
        let w = Matrix::from_vec(2 * d_in, d_out, slices[0].to_vec());
        let agg = graph.mean_aggregate(&h);
        let concat = h.hconcat(&agg);
        let mut want = naive_matmul(&concat, &w);
        want.add_row_vector(slices[1]);
        want.relu_in_place();

        let got = layer.forward(&graph, &h);
        assert_close(&got, &want, 1e-5, "split-weight SAGE");

        // Isolated nodes aggregate zeros; their row must still equal the
        // reference (pure `h @ W_self` + bias path).
        for v in n / 2..n {
            assert!(graph.neighbors(v).is_empty());
        }
    }
}
