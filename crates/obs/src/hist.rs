//! Lock-free log-linear latency histogram.
//!
//! Values (typically microseconds) are binned into preallocated atomic
//! buckets: an exact linear region for small values followed by
//! [`SUB_BUCKETS`] sub-buckets per power of two (HDR-histogram style), which
//! bounds relative bucket width to `1/SUB_BUCKETS` (~3.1%). Recording is a
//! handful of relaxed atomic RMWs — no locks, no allocation — so histograms
//! can be shared freely across worker threads and shards and merged later.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per power of two (32 → ≤ ~3.1% relative bucket width).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total preallocated buckets covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Map a value to its bucket index. Monotone non-decreasing in `v`; exact
/// (width-1 buckets) for `v < SUB_BUCKETS`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let offset_exp = exp - SUB_BITS;
        // v >> offset_exp is in [SUB_BUCKETS, 2*SUB_BUCKETS).
        (offset_exp as usize) * SUB_BUCKETS as usize + (v >> offset_exp) as usize
    }
}

/// Smallest value mapping to bucket `index` (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        index as u64
    } else {
        let offset_exp = (index as u64 / SUB_BUCKETS) - 1;
        let mantissa = index as u64 - offset_exp * SUB_BUCKETS;
        mantissa << offset_exp
    }
}

/// Largest value mapping to bucket `index`.
#[inline]
pub fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        index as u64
    } else {
        let offset_exp = (index as u64 / SUB_BUCKETS) - 1;
        bucket_lower(index) + ((1u64 << offset_exp) - 1)
    }
}

/// A lock-free histogram with preallocated atomic buckets.
///
/// `record` is wait-free (relaxed `fetch_add`/`fetch_min`/`fetch_max`) and
/// allocation-free; concurrent recorders never contend on a lock. Snapshots
/// are taken with [`Histogram::snapshot`] and merged across shards/workers
/// with [`HistogramSnapshot::merge`].
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram (~15 KiB of buckets).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wait-free and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Fold another live histogram's contents into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Relaxed);
            if n != 0 {
                dst.fetch_add(n, Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// Capture an immutable snapshot for percentile extraction and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSnapshot {
            buckets: buckets.into_boxed_slice(),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Box<[u64]>,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Per-bucket counts, paired with `(lower, upper)` value bounds.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
    }

    /// Raw bucket count at `index` (for oracle tests).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Accumulate another snapshot into this one (shard/worker merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Extract the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Uses the nearest-rank definition: rank `ceil(q * count)` clamped to
    /// `[1, count]`. The returned value is the lower bound of the bucket
    /// holding that rank, clamped to the observed `[min, max]`, so it always
    /// falls in the same bucket as the exact order statistic — agreement with
    /// a sorted-vector oracle is bucket-exact (and value-exact in the linear
    /// region below `SUB_BUCKETS`).
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        // Increasing sweep across every octave: indexes must never regress
        // and every value must fall inside its bucket's bounds.
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let base = 1u64 << shift;
            for delta in [0u64, 1, 2, 3] {
                probes.push(base.saturating_sub(1).saturating_add(delta));
            }
        }
        probes.sort_unstable();
        let mut prev = 0usize;
        for v in probes {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
        // Linear region is exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_lower(bucket_index(v)), v);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn buckets_tile_contiguously() {
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper(i) + 1,
                bucket_lower(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_percentiles_small_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        // p50 of 1..=100 by nearest rank is the 50th value = 50; values <= 31
        // are exact, larger ones bucket-approximate. 50 falls in bucket
        // [48, 49]... check bucket agreement instead for values >= 32.
        let p50 = s.percentile(0.50);
        assert_eq!(bucket_index(p50), bucket_index(50));
        let p10 = s.percentile(0.10);
        assert_eq!(p10, 10); // exact linear region
        assert_eq!(
            s.percentile(1.0),
            s.percentile(0.999).max(s.percentile(1.0))
        );
        assert!(s.percentile(1.0) <= 100);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [0u64, 1, 31, 32, 33, 1000, 123_456, u64::MAX] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 64, 4096, 999_999_999] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let expect = combined.snapshot();
        assert_eq!(merged.count(), expect.count());
        assert_eq!(merged.sum, expect.sum);
        assert_eq!(merged.min, expect.min);
        assert_eq!(merged.max, expect.max);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.percentile(q), expect.percentile(q), "q={q}");
        }
        // merge_from on live histograms agrees too.
        combined.merge_from(&Histogram::new()); // no-op merge
        assert_eq!(combined.snapshot().count(), expect.count());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
