//! # gamora-obs — lock-free serving metrics
//!
//! Observability primitives for the Gamora serving stack: atomic
//! [`Counter`]/[`Gauge`] scalars, a lock-free log-linear [`Histogram`] with
//! preallocated atomic buckets (mergeable across shards and workers, with
//! p50/p90/p99/p99.9 extraction), a [`Registry`] that names and snapshots
//! them together, and a [`StageTimer`] for cheap per-stage latency spans.
//!
//! Design constraints, in order:
//! 1. **Hot-path cost ≈ zero.** Recording is a few relaxed atomic RMWs; no
//!    locks, no allocation, no syscalls. Handles are plain `Arc`s captured at
//!    registration time — the registry itself is never touched while serving.
//! 2. **Mergeable.** Every shard/worker records into its own metrics;
//!    [`Snapshot::merge`] combines them by name (counters add, gauges keep
//!    the high-water mark, histograms add bucket-wise) so a router can
//!    present one fleet-wide view.
//! 3. **Std-only.** Like the rest of the workspace, no external crates.

#![warn(missing_docs)]

mod hist;
mod registry;

pub use hist::{
    bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BITS,
    SUB_BUCKETS,
};
pub use registry::{MetricSnapshot, Registry, Snapshot};

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// A monotonically increasing atomic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An atomic gauge recording an instantaneous or high-water value.
///
/// Cross-shard merges take the **maximum** (see [`Snapshot::merge`]), which
/// matches the high-water-mark use (peak queue depth); prefer counters for
/// anything that should add up across shards.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Decrement by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A cheap monotonic span timer for stage latencies.
///
/// `StageTimer` is a single `Instant`; starting one is one clock read and
/// observing into a [`Histogram`] is a second read plus the wait-free record.
/// Nothing allocates, so timers are safe inside allocation-free hot paths.
#[derive(Clone, Copy, Debug)]
pub struct StageTimer {
    start: Instant,
}

impl StageTimer {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        StageTimer {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since start (saturating at `u64::MAX`).
    #[inline]
    pub fn elapsed_micros(&self) -> u64 {
        let micros = self.start.elapsed().as_micros();
        if micros > u64::MAX as u128 {
            u64::MAX
        } else {
            micros as u64
        }
    }

    /// Record the elapsed span into `hist` and return it in microseconds.
    #[inline]
    pub fn observe(&self, hist: &Histogram) -> u64 {
        let micros = self.elapsed_micros();
        hist.record(micros);
        micros
    }

    /// Record the span since the last lap (or start) into `hist`, then
    /// restart, returning the lap length in microseconds.
    #[inline]
    pub fn lap(&mut self, hist: &Histogram) -> u64 {
        let micros = self.observe(hist);
        self.start = Instant::now();
        micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(3);
        g.set_max(10);
        g.set_max(2);
        assert_eq!(g.get(), 10);
        g.inc();
        assert_eq!(g.get(), 11);
        g.set(0);
        g.dec();
        assert_eq!(g.get(), 0, "dec saturates at zero");
    }

    #[test]
    fn stage_timer_records() {
        let h = Histogram::new();
        let mut t = StageTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let lap = t.lap(&h);
        assert!(lap >= 1_000, "slept 2ms but measured {lap}us");
        let second = t.observe(&h);
        assert!(second < lap + 2_000_000, "lap reset the timer");
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
    }
}
