//! Named metric registry, point-in-time snapshots, and text exposition.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::{Counter, Gauge};

/// A live metric handle held by a [`Registry`].
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Names a set of live metrics and snapshots them together.
///
/// Registration hands back `Arc` handles that recording sites keep and bump
/// directly — the registry is only consulted at snapshot time, so it adds
/// zero cost to the hot path. Registering an existing name returns the
/// existing handle (and panics on a kind mismatch).
#[derive(Default)]
pub struct Registry {
    entries: Vec<(String, Metric)>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn find(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Register (or fetch) a monotonically increasing counter.
    pub fn counter(&mut self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.find(name) {
            match m {
                Metric::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let c = Arc::new(Counter::new());
        self.entries
            .push((name.to_string(), Metric::Counter(Arc::clone(&c))));
        c
    }

    /// Register (or fetch) a gauge (merged across shards by maximum).
    pub fn gauge(&mut self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.find(name) {
            match m {
                Metric::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let g = Arc::new(Gauge::new());
        self.entries
            .push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
        g
    }

    /// Register (or fetch) a latency histogram.
    pub fn histogram(&mut self, name: &str) -> Arc<Histogram> {
        if let Some(m) = self.find(name) {
            match m {
                Metric::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let h = Arc::new(Histogram::new());
        self.entries
            .push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
        h
    }

    /// Capture every registered metric at a point in time.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, m)| {
                    let snap = match m {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }
}

/// A snapshotted metric value.
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value (high-water semantics under merge).
    Gauge(u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a whole [`Registry`], mergeable across shards.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    entries: Vec<(String, MetricSnapshot)>,
}

impl Snapshot {
    /// Iterate `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricSnapshot)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricSnapshot::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricSnapshot::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merge another snapshot into this one, matching metrics by name.
    ///
    /// Counters and histograms accumulate; gauges keep the maximum
    /// (they record high-water marks such as peak queue depth). Metrics
    /// present only in `other` are appended.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.entries {
            match self.entries.iter_mut().find(|(n, _)| n == name) {
                Some((_, ours)) => match (ours, theirs) {
                    (MetricSnapshot::Counter(a), MetricSnapshot::Counter(b)) => *a += *b,
                    (MetricSnapshot::Gauge(a), MetricSnapshot::Gauge(b)) => *a = (*a).max(*b),
                    (MetricSnapshot::Histogram(a), MetricSnapshot::Histogram(b)) => a.merge(b),
                    _ => {}
                },
                None => self.entries.push((name.clone(), theirs.clone())),
            }
        }
    }

    /// Render a Prometheus-style text exposition.
    ///
    /// Counters become `<name> <value>` with a `# TYPE` line; histograms emit
    /// cumulative `_bucket{le="..."}` series (non-empty buckets plus `+Inf`)
    /// and `_sum`/`_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.entries {
            match metric {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricSnapshot::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (_lower, upper, n) in h.buckets() {
                        cumulative += n;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {cumulative}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_and_merge() {
        let mut reg_a = Registry::new();
        let jobs_a = reg_a.counter("jobs_total");
        let depth_a = reg_a.gauge("peak_queued");
        let lat_a = reg_a.histogram("latency_micros");
        jobs_a.add(10);
        depth_a.set_max(7);
        lat_a.record(100);
        lat_a.record(200);

        let mut reg_b = Registry::new();
        let jobs_b = reg_b.counter("jobs_total");
        let depth_b = reg_b.gauge("peak_queued");
        let lat_b = reg_b.histogram("latency_micros");
        jobs_b.add(5);
        depth_b.set_max(3);
        lat_b.record(400);

        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counter("jobs_total"), 15);
        assert_eq!(merged.gauge("peak_queued"), 7);
        let h = merged.histogram("latency_micros").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum, 700);
        assert_eq!(h.max, 400);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), 2);
        assert_eq!(reg.snapshot().iter().count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.histogram("x");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = Registry::new();
        reg.counter("jobs_total").add(3);
        reg.gauge("peak_queued").set_max(9);
        let h = reg.histogram("lat_micros");
        h.record(1);
        h.record(1);
        h.record(40);
        let text = reg.snapshot().prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        assert!(text.contains("# TYPE peak_queued gauge"));
        assert!(text.contains("peak_queued 9"));
        assert!(text.contains("# TYPE lat_micros histogram"));
        assert!(text.contains("lat_micros_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_micros_sum 42"));
        assert!(text.contains("lat_micros_count 3"));
    }
}
