//! Property tests: `Histogram` merge + percentile extraction against a
//! sorted-vector oracle, including bucket-boundary and single-observation
//! cases.

use gamora_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, SUB_BUCKETS};
use proptest::collection;
use proptest::prelude::*;

/// Nearest-rank order statistic from a sorted slice — the oracle the
/// histogram percentile must agree with (same bucket; exact in the linear
/// region).
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged shard histograms agree with a single sorted-vector oracle over
    /// all recorded values, at every quantile, to bucket precision.
    #[test]
    fn merge_and_percentiles_match_oracle(
        values in (1usize..200).prop_flat_map(|n| {
            // raw >> shift mixes magnitudes from full-range u64 down to 0.
            collection::vec(
                (any::<u64>(), 0u32..64).prop_map(|(raw, shift)| raw >> shift),
                n,
            )
        }),
        split in 0usize..200,
    ) {
        let split = split % (values.len() + 1);
        let (left, right) = values.split_at(split);
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for &v in left {
            h1.record(v);
        }
        for &v in right {
            h2.record(v);
        }
        let mut merged = h1.snapshot();
        merged.merge(&h2.snapshot());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(merged.count(), sorted.len() as u64);
        prop_assert_eq!(merged.min, sorted[0]);
        prop_assert_eq!(merged.max, *sorted.last().unwrap());
        let wrap_sum = sorted.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(merged.sum, wrap_sum);

        for q in QS {
            let got = merged.percentile(q);
            let want = oracle_percentile(&sorted, q);
            prop_assert_eq!(
                bucket_index(got),
                bucket_index(want),
                "q={} got={} want={}",
                q,
                got,
                want
            );
            prop_assert!(got >= merged.min && got <= merged.max);
        }
    }

    /// In the exact linear region (values < SUB_BUCKETS) percentiles equal
    /// the oracle's value exactly, not just to bucket precision.
    #[test]
    fn small_values_are_value_exact(
        values in (1usize..100).prop_flat_map(|n| {
            collection::vec(0u64..SUB_BUCKETS, n)
        }),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in QS {
            prop_assert_eq!(snap.percentile(q), oracle_percentile(&sorted, q), "q={}", q);
        }
    }

    /// A single observation is returned verbatim at every quantile.
    #[test]
    fn single_observation_is_exact(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), 1);
        for q in QS {
            prop_assert_eq!(snap.percentile(q), v, "q={}", q);
        }
    }

    /// Values sitting exactly on bucket boundaries (powers of two and their
    /// neighbours) land inside their bucket's [lower, upper] bounds, and the
    /// bounds tile without gaps.
    #[test]
    fn bucket_boundaries_contain_their_values(exp in 0u32..64, delta in 0u64..3) {
        let base = 1u64 << exp;
        let v = base.saturating_sub(1).saturating_add(delta); // base-1, base, base+1
        let i = bucket_index(v);
        prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        if bucket_upper(i) < u64::MAX {
            prop_assert_eq!(bucket_index(bucket_upper(i) + 1), i + 1);
        }
        let h = Histogram::new();
        h.record(v);
        prop_assert_eq!(h.snapshot().percentile(1.0), v);
    }
}
