//! Arbitrary-precision signed integers for polynomial coefficients.
//!
//! Backward rewriting of a `w`-bit multiplier manipulates coefficients up
//! to `2^(2w)`, far beyond machine words for the paper's 64-2048-bit
//! workloads. This is a compact sign-magnitude implementation with exactly
//! the operations symbolic computer algebra needs: add, subtract, multiply,
//! shift, compare.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A signed arbitrary-precision integer (sign + little-endian magnitude).
///
/// The representation is normalised: no leading zero limbs, and zero is
/// always non-negative.
///
/// ```
/// use gamora_sca::Int;
/// let a = Int::pow2(100);
/// let b = &a - &Int::from(1);
/// assert_eq!((&a - &b), Int::from(1));
/// assert!(b < a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    neg: bool,
    mag: Vec<u64>,
}

impl Int {
    /// Zero.
    pub fn zero() -> Self {
        Int::default()
    }

    /// One.
    pub fn one() -> Self {
        Int::from(1i64)
    }

    /// `2^k`.
    pub fn pow2(k: usize) -> Self {
        let mut mag = vec![0; k / 64 + 1];
        mag[k / 64] = 1u64 << (k % 64);
        Int { neg: false, mag }.normalised()
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => 64 * (self.mag.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// The value shifted left by `k` bits.
    pub fn shl(&self, k: usize) -> Int {
        if self.is_zero() {
            return Int::zero();
        }
        let (limbs, bits) = (k / 64, k % 64);
        let mut mag = vec![0u64; self.mag.len() + limbs + 1];
        for (i, &w) in self.mag.iter().enumerate() {
            mag[i + limbs] |= w << bits;
            if bits > 0 {
                mag[i + limbs + 1] |= w >> (64 - bits);
            }
        }
        Int { neg: self.neg, mag }.normalised()
    }

    /// Converts to `i128`, if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.bits() > 127 {
            return None;
        }
        let mut v: i128 = 0;
        for &w in self.mag.iter().rev() {
            v = (v << 64) | w as i128;
        }
        Some(if self.neg { -v } else { v })
    }

    fn normalised(mut self) -> Self {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.neg = false;
        }
        self
    }

    fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
        a.len().cmp(&b.len()).then_with(|| {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    o => return o,
                }
            }
            Ordering::Equal
        })
    }

    fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &word) in long.iter().enumerate() {
            let (s1, c1) = word.overflowing_add(*short.get(i).unwrap_or(&0));
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` for magnitudes with `a >= b`.
    fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &word) in a.iter().enumerate() {
            let rhs = *b.get(i).unwrap_or(&0);
            let (d1, b1) = word.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        out
    }

    /// Divides in place by a small divisor, returning the remainder.
    /// Used only for decimal formatting.
    fn div_small(&mut self, d: u64) -> u64 {
        let mut rem = 0u128;
        for w in self.mag.iter_mut().rev() {
            let cur = (rem << 64) | *w as u128;
            *w = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        rem as u64
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        Int {
            neg,
            mag: if mag == 0 { vec![] } else { vec![mag] },
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int {
            neg: false,
            mag: if v == 0 { vec![] } else { vec![v] },
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        if self.is_zero() {
            Int::zero()
        } else {
            Int {
                neg: !self.neg,
                mag: self.mag.clone(),
            }
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        -&self
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.neg == rhs.neg {
            Int {
                neg: self.neg,
                mag: Int::mag_add(&self.mag, &rhs.mag),
            }
            .normalised()
        } else {
            match Int::mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int {
                    neg: self.neg,
                    mag: Int::mag_sub(&self.mag, &rhs.mag),
                }
                .normalised(),
                Ordering::Less => Int {
                    neg: rhs.neg,
                    mag: Int::mag_sub(&rhs.mag, &self.mag),
                }
                .normalised(),
            }
        }
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        Int {
            neg: self.neg != rhs.neg,
            mag: Int::mag_mul(&self.mag, &rhs.mag),
        }
        .normalised()
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Int::mag_cmp(&self.mag, &other.mag),
            (true, true) => Int::mag_cmp(&other.mag, &self.mag),
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.mag.is_empty() {
            digits.push(v.div_small(10_000_000_000_000_000_000));
        }
        let mut s = String::new();
        if self.neg {
            s.push('-');
        }
        // A non-zero value has a non-empty magnitude, so the loop above
        // pushed at least one digit chunk (`div_small` always returns a
        // remainder before the magnitude can empty) — but a formatter
        // must never be able to panic, so the empty case renders the
        // value it mathematically is: zero.
        match digits.pop() {
            Some(top) => s.push_str(&top.to_string()),
            None => s.push('0'),
        }
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = Int::from(7i64);
        let b = Int::from(-3i64);
        assert_eq!((&a + &b).to_i128(), Some(4));
        assert_eq!((&a - &b).to_i128(), Some(10));
        assert_eq!((&a * &b).to_i128(), Some(-21));
        assert_eq!((-&a).to_i128(), Some(-7));
        assert_eq!((&a - &a), Int::zero());
    }

    #[test]
    fn zero_is_normalised() {
        let z = Int::from(5i64) - Int::from(5i64);
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert_eq!(z, Int::zero());
        assert_eq!((-&z), Int::zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn pow2_and_shifts() {
        assert_eq!(Int::pow2(0).to_i128(), Some(1));
        assert_eq!(Int::pow2(65).to_i128(), Some(1i128 << 65));
        assert_eq!(Int::from(5i64).shl(3).to_i128(), Some(40));
        assert_eq!(Int::from(1i64).shl(126).to_i128(), Some(1i128 << 126));
        assert_eq!(Int::pow2(64).bits(), 65);
    }

    /// Decimal rendering regression: every digits-vector shape the
    /// `Display` loop can produce — zero (early return), single-limb
    /// single-chunk values, values straddling the 10^19 chunk boundary
    /// (leading chunk must not be zero-padded, later chunks must be),
    /// and multi-limb magnitudes.
    #[test]
    fn display_zero_single_limb_and_chunk_boundaries() {
        assert_eq!(Int::zero().to_string(), "0");
        assert_eq!(Int::default().to_string(), "0");
        assert_eq!((Int::from(3i64) - Int::from(3i64)).to_string(), "0");
        assert_eq!((-Int::zero()).to_string(), "0");

        assert_eq!(Int::one().to_string(), "1");
        assert_eq!(Int::from(-1i64).to_string(), "-1");
        assert_eq!(Int::from(42i64).to_string(), "42");
        assert_eq!(Int::from(u64::MAX).to_string(), "18446744073709551615");

        // Exactly at and around the 10^19 decimal-chunk divisor.
        let chunk = Int::from(10_000_000_000_000_000_000u64);
        assert_eq!(chunk.to_string(), "10000000000000000000");
        assert_eq!(
            (&chunk + &Int::one()).to_string(),
            "10000000000000000001",
            "second chunk must be zero-padded to 19 digits"
        );
        assert_eq!((&chunk - &Int::one()).to_string(), "9999999999999999999");

        // Multi-limb: 2^128 = 340282366920938463463374607431768211456.
        assert_eq!(
            Int::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
        assert_eq!(
            (-Int::pow2(128)).to_string(),
            "-340282366920938463463374607431768211456"
        );

        // Display agrees with i128 formatting across the boundary into
        // two-limb territory.
        let big = Int::from(u64::MAX) + Int::one();
        assert_eq!(big.to_string(), (u64::MAX as i128 + 1).to_string());
    }

    #[test]
    fn large_multiplication() {
        // (2^100 + 1)^2 = 2^200 + 2^101 + 1
        let v = Int::pow2(100) + Int::one();
        let sq = &v * &v;
        let expected = Int::pow2(200) + Int::pow2(101) + Int::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn ordering() {
        let vals = [
            Int::from(-100i64),
            Int::from(-1i64),
            Int::zero(),
            Int::one(),
            Int::pow2(64),
            Int::pow2(200),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Int::from(123456789i64).to_string(), "123456789");
        assert_eq!(Int::from(-42i64).to_string(), "-42");
        // 2^64 = 18446744073709551616
        assert_eq!(Int::pow2(64).to_string(), "18446744073709551616");
        // 10^19 boundary of the chunked formatter
        let big = Int::from(10_000_000_000_000_000_000u64);
        assert_eq!(big.to_string(), "10000000000000000000");
    }

    #[test]
    fn to_i128_overflow_detected() {
        // 2^126 fits i128; 2^127 exceeds i128::MAX = 2^127 - 1.
        assert_eq!(Int::pow2(126).to_i128(), Some(1i128 << 126));
        assert_eq!(Int::pow2(127).to_i128(), None);
        assert_eq!(Int::pow2(500).to_i128(), None);
    }
}
