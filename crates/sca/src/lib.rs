//! # gamora-sca
//!
//! Symbolic computer algebra for arithmetic-circuit verification: the
//! downstream application that makes adder-tree extraction (and hence
//! Gamora) valuable, and the *slow exact baseline* of the paper's runtime
//! comparison (Figure 7).
//!
//! The stack:
//!
//! * [`Int`] — arbitrary-precision signed integers (coefficients reach
//!   `2^(2w)` for `w`-bit multipliers);
//! * [`Poly`] — multilinear polynomials over Boolean node variables
//!   (`x^2 = x`);
//! * [`backward_rewrite`] — reverse-topological substitution of gate
//!   variables, either node-by-node (naive symbolic evaluation) or
//!   adder-cut-at-a-time when an extracted adder tree is supplied
//!   (the fast flow of Yu et al. TCAD'17);
//! * [`verify`] — checks a network's output signature against a word-level
//!   spec such as `A * B`.
//!
//! ```
//! use gamora_circuits::csa_multiplier;
//! use gamora_sca::{product_spec, verify, RewriteParams};
//! let m = csa_multiplier(4);
//! let spec = product_spec(&m.a, &m.b);
//! let report = verify(&m.aig, &spec, None, &RewriteParams::default())?;
//! assert!(report.equivalent);
//! # Ok::<(), gamora_sca::RewriteError>(())
//! ```

#![warn(missing_docs)]

mod int;
mod poly;
mod rewrite;
mod verify;

pub use int::Int;
pub use poly::{Poly, Term};
pub use rewrite::{
    backward_rewrite, lit_poly, output_signature, poly_from_tt, word_poly, RewriteError,
    RewriteParams, RewriteStats,
};
pub use verify::{mac_spec, product_spec, sum_spec, verify, VerifyReport};
