//! Multilinear polynomials over Boolean node variables.
//!
//! Symbolic computer algebra for circuit verification works in the ring
//! `Z[x_1..x_n] / (x_i^2 - x_i)`: every variable is idempotent because it
//! models a Boolean signal. A word-level spec such as
//! `Σ 2^i out_i - A * B` must reduce to the zero polynomial after all gate
//! variables are substituted by their input expressions.

use crate::int::Int;
use gamora_aig::hasher::FxHashMap;
use std::fmt;

/// A monomial: a sorted set of distinct variable ids (empty = the constant
/// term). Multilinearity means exponents are always one.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Term(Box<[u32]>);

impl Term {
    /// The constant term.
    pub fn unit() -> Term {
        Term(Box::from([]))
    }

    /// A single-variable term.
    pub fn var(v: u32) -> Term {
        Term(Box::from([v]))
    }

    /// Builds a term from an iterator of variables (sorted, deduplicated).
    pub fn from_vars(vars: impl IntoIterator<Item = u32>) -> Term {
        let mut v: Vec<u32> = vars.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Term(v.into_boxed_slice())
    }

    /// The variables of this term.
    pub fn vars(&self) -> &[u32] {
        &self.0
    }

    /// Whether the term mentions `v`.
    pub fn contains(&self, v: u32) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    /// The term with `v` removed (no-op if absent).
    pub fn without(&self, v: u32) -> Term {
        Term(self.0.iter().copied().filter(|&x| x != v).collect())
    }

    /// The multilinear product of two terms (set union).
    pub fn merge(&self, other: &Term) -> Term {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (a, b) = (&self.0, &other.0);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = if j == b.len() || (i < a.len() && a[i] <= b[j]) {
                if j < b.len() && a[i] == b[j] {
                    j += 1;
                }
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
            out.push(next);
        }
        Term(out.into_boxed_slice())
    }

    /// Degree of the monomial.
    pub fn degree(&self) -> usize {
        self.0.len()
    }
}

/// A multilinear polynomial with [`Int`] coefficients.
///
/// ```
/// use gamora_sca::{Int, Poly};
/// // x0 * (1 - x0) = x0 - x0^2 = x0 - x0 = 0  (multilinearity)
/// let x = Poly::var(0);
/// let one_minus_x = &Poly::constant(Int::one()) - &x;
/// assert!((&x * &one_minus_x).is_zero());
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Poly {
    terms: FxHashMap<Term, Int>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: Int) -> Poly {
        let mut p = Poly::zero();
        p.add_term(Term::unit(), c);
        p
    }

    /// The polynomial `x_v`.
    pub fn var(v: u32) -> Poly {
        let mut p = Poly::zero();
        p.add_term(Term::var(v), Int::one());
        p
    }

    /// The polynomial of a literal: `x` for a plain variable, `1 - x` for a
    /// complemented one, and `0`/`1` for the constants.
    pub fn lit(var: u32, complemented: bool, is_const_node: bool) -> Poly {
        if is_const_node {
            return if complemented {
                Poly::constant(Int::one())
            } else {
                Poly::zero()
            };
        }
        if complemented {
            let mut p = Poly::constant(Int::one());
            p.add_term(Term::var(var), Int::from(-1i64));
            p
        } else {
            Poly::var(var)
        }
    }

    /// Adds `c * term`, cancelling to zero where coefficients vanish.
    pub fn add_term(&mut self, term: Term, c: Int) {
        if c.is_zero() {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.terms.entry(term) {
            Entry::Vacant(e) => {
                e.insert(c);
            }
            Entry::Occupied(mut e) => {
                *e.get_mut() = e.get().clone() + c;
                if e.get().is_zero() {
                    e.remove();
                }
            }
        }
    }

    /// Number of non-zero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(term, coefficient)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &Int)> {
        self.terms.iter()
    }

    /// The coefficient of a term (zero if absent).
    pub fn coefficient(&self, term: &Term) -> Int {
        self.terms.get(term).cloned().unwrap_or_else(Int::zero)
    }

    /// Adds `scale * p` into `self`.
    pub fn add_scaled(&mut self, p: &Poly, scale: &Int) {
        for (t, c) in p.iter() {
            self.add_term(t.clone(), c * scale);
        }
    }

    /// Substitutes variable `v` by polynomial `r` everywhere it occurs.
    ///
    /// Terms not containing `v` are untouched; a term `v * m` with
    /// coefficient `c` becomes `c * m * r` (multilinear products).
    pub fn substitute(&mut self, v: u32, r: &Poly) {
        let (with_v, without_v): (Vec<_>, FxHashMap<_, _>) = {
            let mut with_v = Vec::new();
            let mut rest = FxHashMap::default();
            for (t, c) in self.terms.drain() {
                if t.contains(v) {
                    with_v.push((t.without(v), c));
                } else {
                    rest.insert(t, c);
                }
            }
            (with_v, rest)
        };
        self.terms = without_v;
        for (stub, c) in with_v {
            for (rt, rc) in r.iter() {
                self.add_term(stub.merge(rt), &c * rc);
            }
        }
    }

    /// Evaluates the polynomial on a Boolean assignment.
    pub fn eval(&self, assign: impl Fn(u32) -> bool) -> Int {
        let mut total = Int::zero();
        for (t, c) in self.iter() {
            if t.vars().iter().all(|&v| assign(v)) {
                total += c;
            }
        }
        total
    }

    /// The largest variable id appearing in the polynomial.
    pub fn max_var(&self) -> Option<u32> {
        self.terms
            .keys()
            .filter_map(|t| t.vars().last().copied())
            .max()
    }
}

impl std::ops::Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out.add_scaled(rhs, &Int::one());
        out
    }
}

impl std::ops::Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out.add_scaled(rhs, &Int::from(-1i64));
        out
    }
}

impl std::ops::Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ta, ca) in self.iter() {
            for (tb, cb) in rhs.iter() {
                out.add_term(ta.merge(tb), ca * cb);
            }
        }
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut parts: Vec<(Vec<u32>, String)> = self
            .iter()
            .map(|(t, c)| {
                let vars = t
                    .vars()
                    .iter()
                    .map(|v| format!("x{v}"))
                    .collect::<Vec<_>>()
                    .join("*");
                let s = if vars.is_empty() {
                    format!("{c}")
                } else {
                    format!("{c}*{vars}")
                };
                (t.vars().to_vec(), s)
            })
            .collect();
        parts.sort();
        write!(
            f,
            "{}",
            parts
                .into_iter()
                .map(|(_, s)| s)
                .collect::<Vec<_>>()
                .join(" + ")
        )
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Poly({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilinear_squares_collapse() {
        let x = Poly::var(3);
        let sq = &x * &x;
        assert_eq!(sq, x);
    }

    #[test]
    fn complement_literal_algebra() {
        // x + (1 - x) = 1
        let x = Poly::lit(2, false, false);
        let nx = Poly::lit(2, true, false);
        let sum = &x + &nx;
        assert_eq!(sum, Poly::constant(Int::one()));
        // constants
        assert!(Poly::lit(0, false, true).is_zero());
        assert_eq!(Poly::lit(0, true, true), Poly::constant(Int::one()));
    }

    #[test]
    fn substitution_expands_products() {
        // p = 2*x1*x2; substitute x2 := x3 + x4 -> 2*x1*x3 + 2*x1*x4
        let mut p = Poly::zero();
        p.add_term(Term::from_vars([1, 2]), Int::from(2i64));
        let r = &Poly::var(3) + &Poly::var(4);
        p.substitute(2, &r);
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.coefficient(&Term::from_vars([1, 3])), Int::from(2i64));
        assert_eq!(p.coefficient(&Term::from_vars([1, 4])), Int::from(2i64));
    }

    #[test]
    fn substitution_triggers_cancellation() {
        // p = x5 - x6; substitute x5 := x6 -> 0
        let mut p = &Poly::var(5) - &Poly::var(6);
        p.substitute(5, &Poly::var(6));
        assert!(p.is_zero());
    }

    #[test]
    fn full_adder_identity() {
        // xor3 poly: a+b+c-2ab-2ac-2bc+4abc; maj poly: ab+ac+bc-2abc
        // sum + 2*maj == a + b + c
        let (a, b, c) = (Poly::var(0), Poly::var(1), Poly::var(2));
        let ab = &a * &b;
        let ac = &a * &c;
        let bc = &b * &c;
        let abc = &ab * &c;
        let mut xor3 = &(&a + &b) + &c;
        xor3.add_scaled(&ab, &Int::from(-2i64));
        xor3.add_scaled(&ac, &Int::from(-2i64));
        xor3.add_scaled(&bc, &Int::from(-2i64));
        xor3.add_scaled(&abc, &Int::from(4i64));
        let mut maj = &(&ab + &ac) + &bc;
        maj.add_scaled(&abc, &Int::from(-2i64));
        let mut lhs = xor3.clone();
        lhs.add_scaled(&maj, &Int::from(2i64));
        let rhs = &(&a + &b) + &c;
        assert_eq!(lhs, rhs, "s + 2c = a + b + c");
        // And both agree with boolean evaluation on all assignments.
        for m in 0..8u32 {
            let assign = |v: u32| m >> v & 1 == 1;
            let bits = (m & 1) + (m >> 1 & 1) + (m >> 2 & 1);
            assert_eq!(xor3.eval(assign).to_i128(), Some((bits & 1) as i128));
            assert_eq!(maj.eval(assign).to_i128(), Some((bits >= 2) as i128));
        }
    }

    #[test]
    fn display_is_deterministic() {
        let mut p = Poly::zero();
        p.add_term(Term::from_vars([2, 1]), Int::from(3i64));
        p.add_term(Term::unit(), Int::from(-1i64));
        assert_eq!(p.to_string(), "-1 + 3*x1*x2");
        assert_eq!(Poly::zero().to_string(), "0");
    }

    #[test]
    fn max_var_tracks_support() {
        let mut p = Poly::var(7);
        p.add_term(Term::from_vars([3, 9]), Int::one());
        assert_eq!(p.max_var(), Some(9));
        assert_eq!(Poly::constant(Int::one()).max_var(), None);
    }
}
