//! Backward rewriting: the symbolic-evaluation engine of algebraic circuit
//! verification.
//!
//! Starting from a word-level signature (a polynomial over output nodes),
//! every gate variable is substituted by the polynomial of its fanins, in
//! reverse topological order, until only primary inputs remain. Without an
//! adder tree each AND node is substituted one at a time — the expensive
//! flow whose runtime blow-up on large multipliers motivates both ABC's
//! adder-tree detection and Gamora itself. With an extracted adder tree
//! supplied, whole sum/carry cut functions are substituted at once, which
//! keeps the intermediate polynomial small (Yu et al., TCAD'17).

use crate::int::Int;
use crate::poly::Poly;
use gamora_aig::cut::cone_function;
use gamora_aig::hasher::FxHashMap;
use gamora_aig::{Aig, Lit, NodeId};
use gamora_exact::ExtractedAdder;
use std::fmt;

/// Parameters bounding a backward-rewriting run.
#[derive(Copy, Clone, Debug)]
pub struct RewriteParams {
    /// Abort when the working polynomial exceeds this many terms.
    pub max_terms: usize,
}

impl Default for RewriteParams {
    fn default() -> Self {
        RewriteParams {
            max_terms: 4_000_000,
        }
    }
}

/// Cost counters of a rewriting run.
#[derive(Copy, Clone, Debug, Default)]
pub struct RewriteStats {
    /// Gate-level substitutions performed.
    pub substitutions: usize,
    /// Adder-cut substitutions performed (adder-aware mode only).
    pub cut_substitutions: usize,
    /// Largest intermediate term count.
    pub peak_terms: usize,
}

/// Failure of a rewriting run.
#[derive(Clone, Debug)]
pub enum RewriteError {
    /// The intermediate polynomial exceeded `max_terms`.
    TermExplosion {
        /// The variable whose substitution overflowed the bound.
        var: u32,
        /// Term count at the point of abort.
        terms: usize,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::TermExplosion { var, terms } => write!(
                f,
                "polynomial exploded to {terms} terms while substituting x{var}"
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

/// The polynomial of a literal (`x`, `1 - x`, `0` or `1`).
pub fn lit_poly(l: Lit) -> Poly {
    Poly::lit(
        l.var().as_u32(),
        l.is_complement(),
        l.var() == NodeId::CONST0,
    )
}

/// The word polynomial `Σ 2^i lit_i` of a little-endian pin vector.
pub fn word_poly(pins: &[Lit]) -> Poly {
    let mut p = Poly::zero();
    for (i, &l) in pins.iter().enumerate() {
        p.add_scaled(&lit_poly(l), &Int::pow2(i));
    }
    p
}

/// The output signature `Σ 2^i out_i` of a network.
pub fn output_signature(aig: &Aig) -> Poly {
    word_poly(aig.outputs())
}

/// Converts a cut truth table over `leaves` into its multilinear polynomial.
pub fn poly_from_tt(tt: u64, leaves: &[NodeId]) -> Poly {
    let k = leaves.len();
    let mut p = Poly::zero();
    for m in 0..(1u64 << k) {
        if tt >> m & 1 == 0 {
            continue;
        }
        let mut minterm = Poly::constant(Int::one());
        for (i, &leaf) in leaves.iter().enumerate() {
            let lit_p = Poly::lit(leaf.as_u32(), m >> i & 1 == 0, leaf == NodeId::CONST0);
            minterm = &minterm * &lit_p;
        }
        p.add_scaled(&minterm, &Int::one());
    }
    p
}

/// Rewrites `p` backward until only primary-input variables remain.
///
/// With `adders`, the sum and carry roots of each extracted adder are
/// substituted by their exact cut polynomials (computed from the cone truth
/// table, so NPN-negated slices are handled exactly); all other gates are
/// substituted node by node. Pass `None` for the fully naive flow.
///
/// # Errors
///
/// [`RewriteError::TermExplosion`] when the intermediate polynomial exceeds
/// `params.max_terms`.
pub fn backward_rewrite(
    aig: &Aig,
    mut p: Poly,
    adders: Option<&[ExtractedAdder]>,
    params: &RewriteParams,
) -> Result<(Poly, RewriteStats), RewriteError> {
    // Cut polynomials for adder roots.
    let mut root_polys: FxHashMap<u32, Poly> = FxHashMap::default();
    if let Some(adders) = adders {
        for a in adders {
            let leaves: Vec<NodeId> = a.leaf_slice().iter().map(|&l| NodeId::new(l)).collect();
            for root in [a.sum, a.carry] {
                if let Some(tt) = cone_function(aig, root.lit(), &leaves) {
                    root_polys.insert(root.as_u32(), poly_from_tt(tt, &leaves));
                }
            }
        }
    }

    let mut maybe_present = vec![false; aig.num_nodes()];
    let note_vars = |p: &Poly, flags: &mut Vec<bool>| {
        for (t, _) in p.iter() {
            for &v in t.vars() {
                flags[v as usize] = true;
            }
        }
    };
    note_vars(&p, &mut maybe_present);

    let mut stats = RewriteStats::default();
    for v in (1..aig.num_nodes() as u32).rev() {
        let n = NodeId::new(v);
        if !aig.is_and(n) || !maybe_present[v as usize] {
            continue;
        }
        let subst = if let Some(rp) = root_polys.get(&v) {
            stats.cut_substitutions += 1;
            rp.clone()
        } else {
            let (f0, f1) = aig.fanins(n);
            &lit_poly(f0) * &lit_poly(f1)
        };
        p.substitute(v, &subst);
        note_vars(&subst, &mut maybe_present);
        stats.substitutions += 1;
        stats.peak_terms = stats.peak_terms.max(p.num_terms());
        if p.num_terms() > params.max_terms {
            return Err(RewriteError::TermExplosion {
                var: v,
                terms: p.num_terms(),
            });
        }
    }
    debug_assert!(p.max_var().is_none_or(|v| !aig.is_and(NodeId::new(v))));
    Ok((p, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Term;

    #[test]
    fn lit_polys() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        assert_eq!(lit_poly(a), Poly::var(a.var().as_u32()));
        assert_eq!(lit_poly(Lit::FALSE), Poly::zero());
        assert_eq!(lit_poly(Lit::TRUE), Poly::constant(Int::one()));
    }

    #[test]
    fn poly_from_tt_matches_known_functions() {
        let leaves = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        // MAJ3 = ab + ac + bc - 2abc
        let maj = poly_from_tt(gamora_aig::tt::MAJ3, &leaves);
        for m in 0..8u32 {
            let assign = |v: u32| m >> (v - 1) & 1 == 1;
            let bits = (m & 1) + (m >> 1 & 1) + (m >> 2 & 1);
            assert_eq!(maj.eval(assign).to_i128(), Some((bits >= 2) as i128));
        }
        assert_eq!(maj.num_terms(), 4);
        // XOR3 has 7 terms
        let xor = poly_from_tt(gamora_aig::tt::XOR3, &leaves);
        assert_eq!(xor.num_terms(), 7);
    }

    #[test]
    fn rewrite_single_and_gate() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let g = aig.and(a, b);
        aig.add_output(g);
        let sig = output_signature(&aig);
        let (p, stats) = backward_rewrite(&aig, sig, None, &RewriteParams::default()).unwrap();
        // a*b
        let expected = &Poly::var(a.var().as_u32()) * &Poly::var(b.var().as_u32());
        assert_eq!(p, expected);
        assert_eq!(stats.substitutions, 1);
    }

    #[test]
    fn rewrite_full_adder_signature() {
        // s + 2c must reduce to a + b + cin.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s);
        aig.add_output(c);
        let sig = output_signature(&aig);
        let (p, _) = backward_rewrite(&aig, sig, None, &RewriteParams::default()).unwrap();
        let mut want = Poly::zero();
        for l in &ins {
            want.add_scaled(&lit_poly(*l), &Int::one());
        }
        assert_eq!(p, want);
    }

    #[test]
    fn term_explosion_detected() {
        // A deep XOR tree's signature genuinely blows past a tiny bound.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(12);
        let x = aig.xor_multi(&ins);
        aig.add_output(x);
        let sig = output_signature(&aig);
        let err = backward_rewrite(&aig, sig, None, &RewriteParams { max_terms: 50 });
        assert!(matches!(err, Err(RewriteError::TermExplosion { .. })));
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("exploded"));
    }

    #[test]
    fn word_poly_weights() {
        let mut aig = Aig::new();
        let pins = aig.add_inputs(3);
        let w = word_poly(&pins);
        assert_eq!(w.num_terms(), 3);
        assert_eq!(
            w.coefficient(&Term::var(pins[2].var().as_u32())),
            Int::from(4i64)
        );
    }
}
