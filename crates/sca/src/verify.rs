//! Word-level verification of arithmetic networks by algebraic rewriting.

use crate::int::Int;
use crate::poly::Poly;
use crate::rewrite::{
    backward_rewrite, output_signature, word_poly, RewriteError, RewriteParams, RewriteStats,
};
use gamora_aig::{Aig, Lit};
use gamora_exact::ExtractedAdder;
use std::fmt;

/// Result of a verification run.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Whether the network provably implements the spec.
    pub equivalent: bool,
    /// Terms remaining in `signature - spec` after rewriting (0 when
    /// equivalent).
    pub residual_terms: usize,
    /// Rewriting cost counters.
    pub stats: RewriteStats,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (residual {} terms, {} substitutions, peak {} terms)",
            if self.equivalent {
                "EQUIVALENT"
            } else {
                "NOT EQUIVALENT"
            },
            self.residual_terms,
            self.stats.substitutions,
            self.stats.peak_terms
        )
    }
}

/// The product spec `(Σ 2^i a_i) * (Σ 2^j b_j)` of a multiplier.
pub fn product_spec(a_pins: &[Lit], b_pins: &[Lit]) -> Poly {
    &word_poly(a_pins) * &word_poly(b_pins)
}

/// The sum spec `Σ 2^i a_i + Σ 2^j b_j` of an adder.
pub fn sum_spec(a_pins: &[Lit], b_pins: &[Lit]) -> Poly {
    &word_poly(a_pins) + &word_poly(b_pins)
}

/// The multiply-accumulate spec `A * B + C`.
pub fn mac_spec(a_pins: &[Lit], b_pins: &[Lit], c_pins: &[Lit]) -> Poly {
    let mut p = product_spec(a_pins, b_pins);
    p.add_scaled(&word_poly(c_pins), &Int::one());
    p
}

/// Verifies that the network's output signature equals `spec` over its
/// primary inputs.
///
/// `adders` enables adder-aware (detection-assisted) rewriting, the fast
/// flow of Yu et al.; `None` runs the naive node-by-node symbolic
/// evaluation, the slow exact baseline of the paper's Figure 7.
///
/// # Errors
///
/// Propagates [`RewriteError`] when the polynomial exceeds the term bound.
pub fn verify(
    aig: &Aig,
    spec: &Poly,
    adders: Option<&[ExtractedAdder]>,
    params: &RewriteParams,
) -> Result<VerifyReport, RewriteError> {
    let sig = output_signature(aig);
    let (reduced, stats) = backward_rewrite(aig, sig, adders, params)?;
    let residual = &reduced - spec;
    Ok(VerifyReport {
        equivalent: residual.is_zero(),
        residual_terms: residual.num_terms(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_circuits::{
        booth_multiplier, csa_multiplier, kogge_stone_adder, multiply_accumulate,
        ripple_carry_adder,
    };

    #[test]
    fn csa_multipliers_verify_naive() {
        for bits in [2usize, 3, 4, 6] {
            let m = csa_multiplier(bits);
            let spec = product_spec(&m.a, &m.b);
            let report = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
            assert!(report.equivalent, "{bits}-bit CSA: {report}");
        }
    }

    #[test]
    fn csa_multiplier_verifies_adder_aware_with_fewer_terms() {
        let m = csa_multiplier(8);
        let spec = product_spec(&m.a, &m.b);
        let analysis = gamora_exact::analyze(&m.aig);
        let naive = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
        let aware = verify(
            &m.aig,
            &spec,
            Some(&analysis.adders),
            &RewriteParams::default(),
        )
        .unwrap();
        assert!(naive.equivalent);
        assert!(aware.equivalent);
        assert!(aware.stats.cut_substitutions > 0);
        assert!(
            aware.stats.substitutions < naive.stats.substitutions,
            "adder-aware should skip interior gates: {} vs {}",
            aware.stats.substitutions,
            naive.stats.substitutions
        );
    }

    #[test]
    fn booth_multiplier_verifies() {
        for bits in [2usize, 3, 4] {
            let m = booth_multiplier(bits);
            let spec = product_spec(&m.a, &m.b);
            let report = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
            assert!(report.equivalent, "{bits}-bit Booth: {report}");
        }
    }

    #[test]
    fn adders_verify_against_sum_spec() {
        let rca = ripple_carry_adder(8);
        let spec = sum_spec(&rca.a, &rca.b);
        let report = verify(&rca.aig, &spec, None, &RewriteParams::default()).unwrap();
        assert!(report.equivalent, "{report}");

        let ks = kogge_stone_adder(8);
        let spec = sum_spec(&ks.a, &ks.b);
        let report = verify(&ks.aig, &spec, None, &RewriteParams::default()).unwrap();
        assert!(report.equivalent, "kogge-stone: {report}");
    }

    #[test]
    fn mac_verifies() {
        let mac = multiply_accumulate(4);
        let spec = mac_spec(&mac.a, &mac.b, &mac.extra_operands[0]);
        let report = verify(&mac.aig, &spec, None, &RewriteParams::default()).unwrap();
        assert!(report.equivalent, "{report}");
    }

    #[test]
    fn mutated_multiplier_is_rejected() {
        let mut m = csa_multiplier(4);
        // Swap two product bits: still a function, but not A*B.
        let o2 = m.aig.outputs()[2];
        let o3 = m.aig.outputs()[3];
        m.aig.set_output(2, o3);
        m.aig.set_output(3, o2);
        let spec = product_spec(&m.a, &m.b);
        let report = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
        assert!(!report.equivalent);
        assert!(report.residual_terms > 0);
    }

    #[test]
    fn wrong_spec_is_rejected() {
        let m = csa_multiplier(3);
        // Spec claims A*B + 1.
        let mut spec = product_spec(&m.a, &m.b);
        spec.add_scaled(&Poly::constant(Int::one()), &Int::one());
        let report = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
        assert!(!report.equivalent);
    }
}
