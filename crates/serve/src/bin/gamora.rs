//! The `gamora` command-line front end: train once, serve many.
//!
//! * `gamora train`       — fit a reasoner on generated multipliers and
//!   snapshot it to disk (`.gsnap`).
//! * `gamora infer`       — load a snapshot and serve AIGER netlists
//!   through the micro-batching scheduler, emitting a JSON report.
//! * `gamora bench-serve` — measure serving throughput (AIGs/sec) across
//!   batch sizes, cold (cache off) and hot (cache on).
//! * `gamora mmap-demo`   — N concurrent `infer --mmap` processes over one
//!   snapshot: /proc/self/smaps shows a single physical weight copy.
//!
//! Argument parsing is hand-rolled (no external dependencies).

use gamora::{
    score_predictions, GamoraReasoner, ModelDepth, Predictions, ReasonerConfig, TrainConfig,
};
use gamora_aig::{aiger, Aig};
use gamora_circuits::{generate_multiplier, MultiplierKind};
use gamora_obs::Snapshot;
use gamora_serve::report::{histogram_json, serve_stats_json, stages_json, Json};
use gamora_serve::router::{RetryPolicy, ShardRouter};
use gamora_serve::scheduler::{
    AnalysisKind, JobOutput, JobTicket, ServeConfig, ServeError, ServeStats, Server, SubmitError,
};
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
gamora — persistent-model inference service for AIG symbolic reasoning

USAGE:
    gamora train --out MODEL.gsnap [--bits 3,4,5,6,7,8] [--epochs 300]
                 [--kind csa|booth|dadda] [--depth shallow|deep|LxH]
                 [--seed N]
    gamora infer --model MODEL.gsnap [--mmap] [--extract] [--score] [--batch N]
                 [--workers N] [--cache N] [--cone-capacity N] [--queue-cap N]
                 [--linger MICROS]
                 [--quant] [--compact] [--layer-times] [--metrics-out PATH]
                 [--intra-threads N] FILE.aag [FILE.aig ...]
                 (--cache 0 disables the structural-hash cache)
    gamora bench-serve --model MODEL.gsnap [--bits 16 | --bits N1,N2,...]
                       [--kind csa|booth|dadda] [--count 64] [--mmap]
                       [--batches 1,8,64] [--workers N] [--shards N]
                       [--linger MICROS] [--queue-cap N] [--deadline MICROS]
                       [--quant] [--layer-times] [--metrics-out PATH]
                       [--intra-threads N] [--chaos SPEC] [--faults SPEC]
                       [--overlap N] [--cone-capacity N]
    gamora mmap-demo --model MODEL.gsnap [--procs 4] [--bits 8]
                     [--kind csa|booth|dadda]

--mmap memory-maps a v3 snapshot instead of reading it: the reader
validates the header in O(header) and borrows every weight tensor
straight out of the mapping (zero copies, biases excepted), so cold
start is decoupled from model size and concurrent processes share one
physical weight copy through the page cache. Legacy v1/v2 files fall
back to the owned reader transparently (`cold_start.mapped` reports
which path served the load). Reports gain a `cold_start` block: load
microseconds, resident (owned) weight bytes, first-inference latency —
and, when mapped, a `weight_mapping` block with the /proc/self/smaps
shared/private page split of the snapshot mapping.

mmap-demo spawns N concurrent `gamora infer --mmap` children over the
same snapshot and aggregates their `weight_mapping` blocks: the shared
page counts show the weight payload resident once, not N times.

--quant serves the i8-quantised weight store (per-output-column scales,
f32 accumulation): ~4x smaller resident weights, argmax predictions
matching the f32 path on >= 99.9% of nodes. bench-serve --quant also
reports the f32-vs-quantised argmax agreement and weight-store sizes.

bench-serve extras:
    --bits N1,N2,...  several widths run a scaling sweep: every width gets
                      a cold nodes/sec measurement with the thread pool and
                      with kernels forced single-threaded, reported in the
                      JSON `scaling` block (the first width still drives
                      the classic cold/hot batch-size rows)
    --kind K          subject multiplier architecture: csa (default),
                      booth, or dadda
    --intra-threads N per-worker kernel/assembly thread budget (0 = auto:
                      the machine budget divided by --workers; also the
                      GAMORA_THREADS-aware knob behind `ServeConfig`)
    --shards N        route through a structural-hash ShardRouter over N
                      per-cache server shards (default 1 = single server);
                      adds a shard-affinity repeat run to the report
    --queue-cap N     bound every queue to N jobs and add a saturation run
                      (4x oversubmission via try_submit; reports Overloaded
                      rejections and the queue high-water mark)
    --deadline MICROS give saturation jobs a time-to-live; expired jobs are
                      rejected without a forward pass
    --linger MICROS   short-batch linger window for batch formation
    --overlap N       add a cone-tier run over a corpus of N distinct
                      multipliers (alternating csa/dadda cores at the first
                      --bits width, each with a unique disconnected gadget):
                      every submission misses the whole-graph tiers, but
                      shared cones are served from the cone cache; reports
                      per-submission node hit rates and the forward-rows-
                      skipped fraction in the JSON `cone_cache` block
    --cone-capacity N cone-tier capacity in node predictions for the
                      --overlap run (default 1048576)
    --chaos SPEC      run the routed workload twice through the retrying
                      ingress — clean, then with the fault spec armed —
                      and report a `chaos` JSON block (throughput and p99
                      vs the clean twin, worker respawns, quarantines,
                      retries, failed/dropped jobs, fault fires)

fault injection (infer and bench-serve):
    --faults SPEC     arm deterministic fail points for the whole run
                      (overrides the GAMORA_FAULTS environment variable).
                      SPEC is `point:action[:trigger]` clauses joined by
                      ';' — points admission|hash|cache|assemble|forward|
                      split|snapshot|all, actions panic|err|delay(MICROS),
                      triggers every=N|after=N|prob=P[,seed=S].
                      Example: `all:panic:prob=0.05,seed=7`

observability (infer and bench-serve):
    --metrics-out PATH  write the full metric registry (stage latency
                        histograms, cache tiers, counters) as
                        Prometheus-style text to PATH on exit
    --layer-times       also record per-layer GNN forward timings
                        (forward_layer_*_micros histograms)

Reports are JSON on stdout; diagnostics go to stderr. Serve reports
carry a per-stage latency block (p50/p90/p99/p99.9 in microseconds);
bench-serve reports cold and hot stage latencies plus queue-depth and
batch-size distributions, and per-shard stats when --shards > 1.";

fn main() -> ExitCode {
    // Arm fail points from GAMORA_FAULTS before any serving starts;
    // `--faults SPEC` (below) overrides the environment.
    gamora_fault::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        Some("mmap-demo") => cmd_mmap_demo(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

const VALUE_FLAGS: &[&str] = &[
    "--out",
    "--bits",
    "--epochs",
    "--kind",
    "--depth",
    "--seed",
    "--model",
    "--batch",
    "--workers",
    "--count",
    "--batches",
    "--cache",
    "--shards",
    "--linger",
    "--queue-cap",
    "--deadline",
    "--metrics-out",
    "--intra-threads",
    "--faults",
    "--chaos",
    "--overlap",
    "--cone-capacity",
    "--procs",
];
const SWITCH_FLAGS: &[&str] = &[
    "--extract",
    "--score",
    "--compact",
    "--quiet",
    "--quant",
    "--layer-times",
    "--mmap",
];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            pairs: Vec::new(),
            switches: Vec::new(),
            positional: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                let v = it.next().ok_or_else(|| format!("{a} needs a value"))?;
                flags.pairs.push((a.clone(), v.clone()));
            } else if SWITCH_FLAGS.contains(&a.as_str()) {
                flags.switches.push(a.clone());
            } else if a.starts_with("--") {
                return Err(format!("unknown flag '{a}'"));
            } else {
                flags.positional.push(a.clone());
            }
        }
        Ok(flags)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{key} expects a number, got '{v}'")),
        }
    }

    fn usize_list_or(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("{key}: bad number '{s}'"))
                })
                .collect(),
        }
    }
}

fn parse_kind(s: &str) -> Result<MultiplierKind, String> {
    match s {
        "csa" => Ok(MultiplierKind::Csa),
        "booth" => Ok(MultiplierKind::Booth),
        "dadda" => Ok(MultiplierKind::Dadda),
        other => Err(format!(
            "--kind expects csa, booth, or dadda; got '{other}'"
        )),
    }
}

fn parse_depth(s: &str) -> Result<ModelDepth, String> {
    match s {
        "shallow" => Ok(ModelDepth::Shallow),
        "deep" => Ok(ModelDepth::Deep),
        custom => {
            let (l, h) = custom
                .split_once(['x', 'X'])
                .ok_or_else(|| format!("--depth expects shallow, deep, or LxH; got '{custom}'"))?;
            let layers = l.parse().map_err(|_| format!("bad layer count '{l}'"))?;
            let hidden = h.parse().map_err(|_| format!("bad hidden width '{h}'"))?;
            Ok(ModelDepth::Custom { layers, hidden })
        }
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = flags
        .get("--out")
        .ok_or("train requires --out MODEL.gsnap")?
        .to_string();
    let bits = flags.usize_list_or("--bits", &[3, 4, 5, 6, 7, 8])?;
    let epochs = flags.usize_or("--epochs", 300)?;
    let kind = parse_kind(flags.get("--kind").unwrap_or("csa"))?;
    let depth = parse_depth(flags.get("--depth").unwrap_or("shallow"))?;
    let seed: u64 = match flags.get("--seed") {
        None => ReasonerConfig::default().seed,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--seed expects a number, got '{v}'"))?,
    };

    let t0 = Instant::now();
    let train_set: Vec<_> = bits.iter().map(|&b| generate_multiplier(kind, b)).collect();
    let refs: Vec<&Aig> = train_set.iter().map(|m| &m.aig).collect();
    eprintln!(
        "training on {} {kind:?} multipliers ({} total nodes), {epochs} epochs ...",
        refs.len(),
        refs.iter().map(|a| a.num_nodes()).sum::<usize>()
    );
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth,
        seed,
        ..ReasonerConfig::default()
    });
    let report = reasoner.fit(
        &refs,
        &TrainConfig {
            epochs,
            log_every: if flags.has("--quiet") { 0 } else { 50 },
            ..TrainConfig::default()
        },
    );
    reasoner
        .save(&out)
        .map_err(|e| format!("saving '{out}': {e}"))?;

    let json = Json::obj([
        ("command", Json::str("train")),
        ("model", Json::str(&out)),
        ("kind", Json::str(format!("{kind:?}").to_lowercase())),
        ("train_bits", Json::arr(bits.iter().map(|&b| Json::uint(b)))),
        ("epochs", Json::uint(epochs)),
        ("num_params", Json::uint(reasoner.num_params())),
        (
            "final_train_accuracy",
            Json::arr(report.train_accuracy.iter().map(|&a| Json::Num(a))),
        ),
        (
            "final_loss",
            Json::Num(report.epoch_losses.last().copied().unwrap_or(f32::NAN) as f64),
        ),
        ("wall_seconds", Json::Num(t0.elapsed().as_secs_f64())),
    ]);
    println!("{json}");
    Ok(())
}

fn read_aiger_file(path: &str) -> Result<Aig, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening '{path}': {e}"))?;
    let mut aig =
        aiger::read(BufReader::new(file)).map_err(|e| format!("parsing '{path}': {e}"))?;
    if aig.name().is_empty() {
        aig.set_name(path);
    }
    Ok(aig)
}

/// Honours `--faults SPEC`: arms the fail-point subsystem, overriding
/// any `GAMORA_FAULTS` environment configuration. A no-op when the flag
/// is absent.
fn arm_faults(flags: &Flags) -> Result<(), String> {
    if let Some(spec) = flags.get("--faults") {
        let n = gamora_fault::configure(spec).map_err(|e| format!("--faults: {e}"))?;
        eprintln!("fail points armed: {n} clause(s)");
    }
    Ok(())
}

/// Honours `--metrics-out PATH`: writes the snapshot as Prometheus-style
/// text. A no-op when the flag is absent.
fn write_metrics_out(flags: &Flags, snapshot: &Snapshot) -> Result<(), String> {
    if let Some(path) = flags.get("--metrics-out") {
        std::fs::write(path, snapshot.prometheus())
            .map_err(|e| format!("writing metrics to '{path}': {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// The cold-start observations of one model load (everything except the
/// first-inference latency, which the caller fills in once it has served
/// something).
struct ColdStart {
    mmap: bool,
    mapped: bool,
    file_bytes: u64,
    load_micros: u64,
}

/// Loads the model, honouring `--mmap`: the zero-copy v3 path (with its
/// transparent owned fallback for legacy files) or the classic owned
/// reader, both timed the same way.
fn load_model(path: &str, use_mmap: bool) -> Result<(GamoraReasoner, ColdStart), String> {
    if use_mmap {
        let (reasoner, stats) =
            GamoraReasoner::load_mmap(path).map_err(|e| format!("loading '{path}': {e}"))?;
        Ok((
            reasoner,
            ColdStart {
                mmap: true,
                mapped: stats.mapped,
                file_bytes: stats.file_bytes,
                load_micros: stats.load_micros,
            },
        ))
    } else {
        let t0 = Instant::now();
        let reasoner = GamoraReasoner::load(path).map_err(|e| format!("loading '{path}': {e}"))?;
        Ok((
            reasoner,
            ColdStart {
                mmap: false,
                mapped: false,
                file_bytes: std::fs::metadata(path).map(|m| m.len()).unwrap_or(0),
                load_micros: t0.elapsed().as_micros() as u64,
            },
        ))
    }
}

/// The `cold_start` report block: how the model came up, what it cost,
/// and what the first real forward pass paid (under `--mmap` that first
/// pass absorbs the page faults the O(header) load deferred).
fn cold_start_json(
    cs: &ColdStart,
    resident_weight_bytes: usize,
    first_micros: Option<u64>,
) -> Json {
    Json::obj([
        ("mmap", Json::Bool(cs.mmap)),
        ("mapped", Json::Bool(cs.mapped)),
        ("file_bytes", Json::u64(cs.file_bytes)),
        ("load_micros", Json::u64(cs.load_micros)),
        ("resident_weight_bytes", Json::uint(resident_weight_bytes)),
        (
            "first_inference_micros",
            first_micros.map_or(Json::Null, Json::u64),
        ),
    ])
}

/// Sums the /proc/self/smaps fields of every current-process mapping
/// backed by `path` — the snapshot mapping, under `--mmap`. The
/// shared/private split is the demo's evidence: weight pages touched by
/// several concurrent processes count as `Shared_Clean`, so N servers
/// keep one physical copy. `Json::Null` off Linux or when unmapped.
fn weight_mapping_json(path: &str) -> Json {
    let Ok(full) = std::fs::canonicalize(path) else {
        return Json::Null;
    };
    let needle = full.to_string_lossy().into_owned();
    let Ok(text) = std::fs::read_to_string("/proc/self/smaps") else {
        return Json::Null;
    };
    let mut fields = [
        ("size_kb", "Size:", 0u64),
        ("rss_kb", "Rss:", 0),
        ("shared_clean_kb", "Shared_Clean:", 0),
        ("shared_dirty_kb", "Shared_Dirty:", 0),
        ("private_clean_kb", "Private_Clean:", 0),
        ("private_dirty_kb", "Private_Dirty:", 0),
    ];
    let (mut in_target, mut found) = (false, false);
    for line in text.lines() {
        let first = line.split_whitespace().next().unwrap_or("");
        // Mapping headers start with the hex address range; everything
        // else is a `Field:  N kB` attribute of the current mapping.
        if first.contains('-') && first.chars().all(|c| c.is_ascii_hexdigit() || c == '-') {
            in_target = line.ends_with(needle.as_str());
            found |= in_target;
        } else if in_target {
            for (_, prefix, acc) in fields.iter_mut() {
                if let Some(rest) = line.strip_prefix(*prefix) {
                    if let Some(v) = rest.trim().strip_suffix("kB") {
                        *acc += v.trim().parse::<u64>().unwrap_or(0);
                    }
                }
            }
        }
    }
    if !found {
        return Json::Null;
    }
    Json::Obj(
        fields
            .iter()
            .map(|&(key, _, v)| (key.to_string(), Json::u64(v)))
            .collect(),
    )
}

fn class_histogram(preds: &Predictions) -> Json {
    let mut counts = [0usize; 4];
    for &c in &preds.root_leaf {
        counts[(c as usize).min(3)] += 1;
    }
    Json::obj([
        // Class 0 is gamora_exact::RootLeafClass::Other — ordinary logic
        // outside any extracted adder boundary.
        ("other", Json::uint(counts[0])),
        ("root", Json::uint(counts[1])),
        ("leaf", Json::uint(counts[2])),
        ("root_and_leaf", Json::uint(counts[3])),
        (
            "xor",
            Json::uint(preds.is_xor.iter().filter(|&&b| b).count()),
        ),
        (
            "maj",
            Json::uint(preds.is_maj.iter().filter(|&&b| b).count()),
        ),
    ])
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags
        .get("--model")
        .ok_or("infer requires --model MODEL.gsnap")?;
    if flags.positional.is_empty() {
        return Err("infer requires at least one AIGER file".into());
    }
    let defaults = ServeConfig::default();
    let max_batch = flags.usize_or("--batch", 8)?;
    let workers = flags.usize_or("--workers", 1)?;
    let cache_capacity = flags.usize_or("--cache", defaults.cache_capacity)?;
    let queue_capacity = flags.usize_or("--queue-cap", defaults.queue_capacity)?;
    let linger_micros = flags.usize_or("--linger", defaults.linger_micros as usize)? as u64;
    let intra_threads = flags.usize_or("--intra-threads", 0)?;
    let kind = if flags.has("--extract") {
        AnalysisKind::ExtractAdders
    } else {
        AnalysisKind::Classify
    };

    arm_faults(&flags)?;
    let (mut reasoner, cold_start) = load_model(model_path, flags.has("--mmap"))?;
    if flags.has("--quant") {
        reasoner.quantise();
    }
    let quantised = reasoner.is_quantised();
    let resident_weight_bytes = reasoner.resident_weight_bytes();
    let server = Server::start(
        reasoner,
        ServeConfig {
            max_batch,
            workers,
            cache_capacity,
            queue_capacity,
            linger_micros,
            layer_timing: flags.has("--layer-times"),
            intra_threads,
            quarantine_ttl_micros: defaults.quarantine_ttl_micros,
            cone_capacity: flags.usize_or("--cone-capacity", defaults.cone_capacity)?,
        },
    );
    server.record_snapshot_load(cold_start.load_micros);

    let aigs: Vec<Aig> = flags
        .positional
        .iter()
        .map(|p| read_aiger_file(p))
        .collect::<Result<_, _>>()?;
    let t0 = Instant::now();
    let outputs = server
        .submit_all(aigs.iter().map(|a| (a.clone(), kind)).collect())
        .map_err(|e| format!("serving failed: {e}"))?;
    let wall = t0.elapsed();

    let mut files = Vec::new();
    for ((path, aig), out) in flags.positional.iter().zip(&aigs).zip(&outputs) {
        let mut fields = vec![
            ("file", Json::str(path)),
            ("nodes", Json::uint(aig.num_nodes())),
            ("inputs", Json::uint(aig.num_inputs())),
            ("ands", Json::uint(aig.num_ands())),
            ("outputs", Json::uint(aig.num_outputs())),
            ("cache_hit", Json::Bool(out.cache_hit)),
            ("latency_micros", Json::uint(out.latency_micros as usize)),
            ("classes", class_histogram(&out.predictions)),
        ];
        if let Some(adders) = &out.adders {
            fields.push(("adders", Json::uint(adders.len())));
        }
        if flags.has("--score") {
            let analysis = gamora_exact::analyze(aig);
            let eval = score_predictions(&out.predictions, &analysis.labels);
            fields.push((
                "accuracy",
                Json::obj([
                    ("root_leaf", Json::Num(eval.task_accuracy[0])),
                    ("xor", Json::Num(eval.task_accuracy[1])),
                    ("maj", Json::Num(eval.task_accuracy[2])),
                    ("mean", Json::Num(eval.mean())),
                ]),
            ));
        }
        files.push(Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ));
    }
    let snapshot = server.metrics();
    // Sample smaps while the server (and with it the snapshot mapping)
    // is still alive — shutdown drops the model and unmaps the file.
    let weight_mapping = cold_start.mapped.then(|| weight_mapping_json(model_path));
    let stats = server.shutdown();
    let Json::Obj(mut serving) = serve_stats_json(&stats) else {
        unreachable!("serve_stats_json returns an object")
    };
    serving.push(("wall_seconds".to_string(), Json::Num(wall.as_secs_f64())));
    serving.push(("stages".to_string(), stages_json(&snapshot)));
    write_metrics_out(&flags, &snapshot)?;
    let first_micros = outputs.first().map(|o| o.latency_micros);
    let mut fields = vec![
        ("command", Json::str("infer")),
        ("model", Json::str(model_path)),
        ("quantised", Json::Bool(quantised)),
        (
            "cold_start",
            cold_start_json(&cold_start, resident_weight_bytes, first_micros),
        ),
    ];
    if let Some(mapping) = weight_mapping {
        fields.push(("weight_mapping", mapping));
    }
    fields.push(("files", Json::Arr(files)));
    fields.push(("serving", Json::Obj(serving)));
    let json = Json::obj(fields);
    if flags.has("--compact") {
        println!("{}", json.compact());
    } else {
        println!("{json}");
    }
    Ok(())
}

/// One serving ingress for the bench: a single server, or a
/// structural-hash shard router — both expose the same submission surface.
enum Ingress {
    Single(Server),
    Sharded(ShardRouter),
}

impl Ingress {
    fn start(reasoner: &Arc<GamoraReasoner>, shards: usize, config: ServeConfig) -> Ingress {
        if shards > 1 {
            Ingress::Sharded(ShardRouter::start(Arc::clone(reasoner), shards, config))
        } else {
            Ingress::Single(Server::start_shared(Arc::clone(reasoner), config))
        }
    }

    fn submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        match self {
            Ingress::Single(s) => s.submit(aig, kind),
            Ingress::Sharded(r) => r.submit(aig, kind),
        }
    }

    fn try_submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        match self {
            Ingress::Single(s) => s.try_submit(aig, kind),
            Ingress::Sharded(r) => r.try_submit(aig, kind),
        }
    }

    fn try_submit_within(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        ttl: Duration,
    ) -> Result<JobTicket, SubmitError> {
        match self {
            Ingress::Single(s) => s.try_submit_within(aig, kind, ttl),
            Ingress::Sharded(r) => r.try_submit_within(aig, kind, ttl),
        }
    }

    fn submit_all(&self, jobs: Vec<(Aig, AnalysisKind)>) -> Result<Vec<JobOutput>, ServeError> {
        match self {
            Ingress::Single(s) => s.submit_all(jobs),
            Ingress::Sharded(r) => r.submit_all(jobs),
        }
    }

    /// Reports the snapshot load time into the ingress's metrics (once,
    /// whichever ingress observed the load first — see
    /// `Server::record_snapshot_load`).
    fn record_snapshot_load(&self, micros: u64) {
        match self {
            Ingress::Single(s) => s.record_snapshot_load(micros),
            Ingress::Sharded(r) => r.record_snapshot_load(micros),
        }
    }

    /// The merged metric snapshot (all shards, for a sharded ingress).
    fn metrics(&self) -> Snapshot {
        match self {
            Ingress::Single(s) => s.metrics(),
            Ingress::Sharded(r) => r.metrics(),
        }
    }

    fn shutdown(self) -> ServeStats {
        match self {
            Ingress::Single(s) => s.shutdown(),
            Ingress::Sharded(r) => r.shutdown(),
        }
    }
}

fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags
        .get("--model")
        .ok_or("bench-serve requires --model MODEL.gsnap")?;
    // Several widths turn the run into a scaling sweep: the first width
    // drives the classic cold/hot batch-size rows (comparable with earlier
    // baselines), every width gets a cold nodes/sec measurement with the
    // thread pool and with kernels forced single-threaded.
    let bits_list = flags.usize_list_or("--bits", &[16])?;
    let &bits = bits_list.first().ok_or("--bits needs at least one width")?;
    let kind = parse_kind(flags.get("--kind").unwrap_or("csa"))?;
    let count = flags.usize_or("--count", 64)?;
    let batch_sizes = flags.usize_list_or("--batches", &[1, 8, 64])?;
    let workers = flags.usize_or("--workers", 1)?;
    let shards = flags.usize_or("--shards", 1)?;
    let linger_micros =
        flags.usize_or("--linger", ServeConfig::default().linger_micros as usize)? as u64;
    // 0 keeps the throughput rows unbounded (comparable with earlier
    // baselines); any positive value also triggers the saturation run.
    let queue_cap = flags.usize_or("--queue-cap", 0)?;
    let deadline_micros = flags.usize_or("--deadline", 0)? as u64;
    let intra_threads = flags.usize_or("--intra-threads", 0)?;
    // 0 = no cone-tier overlap run; N >= 2 builds a corpus of N distinct
    // multipliers sharing cores and reports the `cone_cache` block.
    let overlap = flags.usize_or("--overlap", 0)?;
    let cone_capacity = flags.usize_or("--cone-capacity", 1 << 20)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if overlap == 1 {
        return Err("--overlap needs at least 2 subjects".into());
    }
    arm_faults(&flags)?;

    // One model instance serves every configuration: workers share it
    // through the `Arc`, no per-worker (or per-configuration) clones.
    let (mut loaded, cold_start) = load_model(model_path, flags.has("--mmap"))?;
    let quant = flags.has("--quant");
    // Under --quant, keep the f32 twin around to measure how often the
    // quantised store flips an argmax decision.
    let f32_twin = quant.then(|| loaded.clone());
    if quant {
        loaded.quantise();
    }
    let reasoner = Arc::new(loaded);
    let resident_weight_bytes = reasoner.resident_weight_bytes();
    let subject = generate_multiplier(kind, bits);
    // The first forward pass after a cold start: under --mmap this is
    // where the deferred page faults land, so it belongs in the report
    // (and it equalises page-cache state with the owned-load runs before
    // any throughput row is timed).
    let t_first = Instant::now();
    reasoner.predict(&subject.aig);
    let first_micros = t_first.elapsed().as_micros() as u64;
    eprintln!(
        "bench-serve: {count} submissions of a {bits}-bit {kind} multiplier ({} nodes), \
         {shards} shard(s){} ...",
        subject.aig.num_nodes(),
        if quant { ", quantised weights" } else { "" }
    );
    let base = ServeConfig {
        workers,
        queue_capacity: queue_cap,
        linger_micros,
        layer_timing: flags.has("--layer-times"),
        intra_threads,
        ..ServeConfig::default()
    };

    let mut rows = Vec::new();
    // Stage-latency accumulators over every batch-size run: cold and hot
    // runs merge separately (their distributions answer different
    // questions — model cost vs cache cost).
    let mut cold_metrics = Snapshot::default();
    let mut hot_metrics = Snapshot::default();
    let mut load_recorded = false;
    for &batch in &batch_sizes {
        // Cold: cache disabled, every submission runs the model.
        let ingress = Ingress::start(
            &reasoner,
            shards,
            ServeConfig {
                max_batch: batch,
                cache_capacity: 0,
                ..base
            },
        );
        if !load_recorded {
            // One load happened for the whole bench: the stage histogram
            // gets exactly one observation, in the first cold snapshot.
            ingress.record_snapshot_load(cold_start.load_micros);
            load_recorded = true;
        }
        let t0 = Instant::now();
        for chunk_start in (0..count).step_by(batch) {
            let n = batch.min(count - chunk_start);
            let jobs = (0..n)
                .map(|_| (subject.aig.clone(), AnalysisKind::Classify))
                .collect();
            ingress
                .submit_all(jobs)
                .map_err(|e| format!("serving failed: {e}"))?;
        }
        let cold = count as f64 / t0.elapsed().as_secs_f64();
        cold_metrics.merge(&ingress.metrics());
        ingress.shutdown();

        // Hot: cache enabled and pre-warmed — the repeated-netlist path.
        let ingress = Ingress::start(
            &reasoner,
            shards,
            ServeConfig {
                max_batch: batch,
                cache_capacity: 16,
                ..base
            },
        );
        ingress
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .map_err(|e| format!("serving failed: {e}"))?
            .wait()
            .map_err(|e| format!("serving failed: {e}"))?;
        let t0 = Instant::now();
        for chunk_start in (0..count).step_by(batch) {
            let n = batch.min(count - chunk_start);
            let jobs = (0..n)
                .map(|_| (subject.aig.clone(), AnalysisKind::Classify))
                .collect();
            ingress
                .submit_all(jobs)
                .map_err(|e| format!("serving failed: {e}"))?;
        }
        let hot = count as f64 / t0.elapsed().as_secs_f64();
        hot_metrics.merge(&ingress.metrics());
        let stats = ingress.shutdown();
        assert_eq!(
            stats.forward_passes, 1,
            "hot runs must be answered from the cache"
        );

        eprintln!("  batch {batch:>3}: cold {cold:>10.1} AIGs/sec   hot {hot:>12.1} AIGs/sec");
        rows.push(Json::obj([
            ("batch", Json::uint(batch)),
            ("cold_aigs_per_sec", Json::Num(cold)),
            ("hot_aigs_per_sec", Json::Num(hot)),
        ]));
    }

    let mut fields = vec![
        ("command", Json::str("bench-serve")),
        ("model", Json::str(model_path)),
        ("subject_bits", Json::uint(bits)),
        ("subject_kind", Json::str(kind.to_string())),
        ("subject_nodes", Json::uint(subject.aig.num_nodes())),
        ("submissions", Json::uint(count)),
        ("workers", Json::uint(workers)),
        ("shards", Json::uint(shards)),
        ("quantised", Json::Bool(quant)),
        (
            "cold_start",
            cold_start_json(&cold_start, resident_weight_bytes, Some(first_micros)),
        ),
        ("rows", Json::Arr(rows)),
        (
            "latency",
            Json::obj([
                ("cold", latency_block(&cold_metrics)),
                ("hot", latency_block(&hot_metrics)),
            ]),
        ),
    ];
    if bits_list.len() > 1 {
        fields.push((
            "scaling",
            bench_scaling_sweep(&reasoner, kind, &bits_list, count, base)?,
        ));
    }
    if let Some(f32_twin) = &f32_twin {
        fields.push((
            "quantisation",
            bench_quantisation(f32_twin, &reasoner, &subject.aig),
        ));
    }
    if shards > 1 {
        fields.push(("sharding", bench_shard_affinity(&reasoner, shards, base)?));
    }
    if queue_cap > 0 {
        fields.push((
            "saturation",
            bench_saturation(
                &reasoner,
                shards,
                base,
                queue_cap,
                deadline_micros,
                &subject.aig,
            )?,
        ));
    }
    if overlap > 0 {
        fields.push((
            "cone_cache",
            bench_overlap(&reasoner, bits, overlap, cone_capacity, base)?,
        ));
    }
    if let Some(spec) = flags.get("--chaos") {
        fields.push(("chaos", bench_chaos(&reasoner, shards, base, spec, count)?));
    }
    let mut all_metrics = cold_metrics;
    all_metrics.merge(&hot_metrics);
    write_metrics_out(&flags, &all_metrics)?;
    let json = Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    println!("{json}");
    Ok(())
}

/// Builds the `--overlap` corpus: `n` distinct multipliers that share
/// arithmetic cores but never a whole graph. Subject `i` is a csa (even
/// `i`) or dadda (odd `i`) core at `bits` bits plus a unique disconnected
/// gadget — two fresh inputs feeding a chain of `i + 1` AND gates with its
/// own output. The gadget changes the whole-graph fingerprint (every
/// submission misses the verbatim and transfer tiers) without touching any
/// core node's neighborhood, so the cone tier can serve the cores from the
/// second sighting of each architecture onward.
fn overlap_corpus(bits: usize, n: usize) -> Vec<Aig> {
    (0..n)
        .map(|i| {
            let kind = if i % 2 == 0 {
                MultiplierKind::Csa
            } else {
                MultiplierKind::Dadda
            };
            let mut aig = generate_multiplier(kind, bits).aig;
            let a = aig.add_input().lit();
            let b = aig.add_input().lit();
            let mut t = aig.and(a, b);
            for _ in 0..i {
                t = aig.and(t, b);
            }
            aig.add_output(t);
            aig
        })
        .collect()
}

/// Cone-tier overlap run: serves the [`overlap_corpus`] through a single
/// server with the cone tier enabled. Every subject is new to the
/// whole-graph tiers, so all reuse comes from per-cone matches against
/// earlier submissions' forward passes; "warm" aggregates the submissions
/// where each core architecture has already been seen once.
fn bench_overlap(
    reasoner: &Arc<GamoraReasoner>,
    bits: usize,
    overlap: usize,
    cone_capacity: usize,
    base: ServeConfig,
) -> Result<Json, String> {
    let corpus = overlap_corpus(bits, overlap);
    eprintln!(
        "  overlap: {overlap} distinct {bits}-bit multipliers (csa/dadda cores, unique gadgets), \
         cone capacity {cone_capacity} ..."
    );
    let server = Server::start_shared(
        Arc::clone(reasoner),
        ServeConfig {
            max_batch: 1,
            cache_capacity: 16,
            cone_capacity,
            ..base
        },
    );
    let mut subs = Vec::new();
    let (mut prev_probed, mut prev_hit) = (0u64, 0u64);
    let (mut warm_nodes, mut warm_hit) = (0u64, 0u64);
    for (i, aig) in corpus.iter().enumerate() {
        let out = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .map_err(|e| format!("serving failed: {e}"))?
            .wait()
            .map_err(|e| format!("serving failed: {e}"))?;
        if out.cache_hit {
            return Err("overlap subjects must miss the whole-graph tiers".into());
        }
        let snap = server.metrics();
        let probed = snap.counter("cache_cone_rows_probed_total") - prev_probed;
        let hit = snap.counter("cache_cone_rows_hit_total") - prev_hit;
        prev_probed += probed;
        prev_hit += hit;
        // Both core architectures have been inserted once after the first
        // two submissions: everything from index 2 onward is warm.
        if i >= 2 {
            warm_nodes += probed;
            warm_hit += hit;
        }
        let rate = if probed > 0 {
            hit as f64 / probed as f64
        } else {
            0.0
        };
        eprintln!(
            "    subject {i:>2}: {:>6} nodes, cone hits {hit:>6}/{probed:<6} ({:.1}%)",
            aig.num_nodes(),
            100.0 * rate
        );
        subs.push(Json::obj([
            ("subject", Json::uint(i)),
            ("nodes", Json::uint(aig.num_nodes())),
            ("cone_rows_probed", Json::uint(probed as usize)),
            ("cone_rows_hit", Json::uint(hit as usize)),
            ("hit_rate", Json::Num(rate)),
        ]));
    }
    let snap = server.metrics();
    let stats = server.shutdown();
    let total_probed = snap.counter("cache_cone_rows_probed_total");
    let total_hit = snap.counter("cache_cone_rows_hit_total");
    let warm_rate = if warm_nodes > 0 {
        warm_hit as f64 / warm_nodes as f64
    } else {
        0.0
    };
    eprintln!(
        "    warm (2nd+ sighting of a core): {:.1}% of nodes served from the cone tier \
         ({} forward passes over {overlap} submissions)",
        100.0 * warm_rate,
        stats.forward_passes,
    );
    Ok(Json::obj([
        ("subjects", Json::uint(overlap)),
        ("subject_bits", Json::uint(bits)),
        ("cone_capacity", Json::uint(cone_capacity)),
        ("submissions", Json::Arr(subs)),
        ("rows_probed_total", Json::uint(total_probed as usize)),
        ("rows_hit_total", Json::uint(total_hit as usize)),
        (
            "forward_rows_skipped_fraction",
            Json::Num(if total_probed > 0 {
                total_hit as f64 / total_probed as f64
            } else {
                0.0
            }),
        ),
        ("warm_hit_rate", Json::Num(warm_rate)),
        (
            "tier_hits",
            Json::obj([
                (
                    "verbatim",
                    Json::uint(snap.counter("cache_hits_verbatim_total") as usize),
                ),
                (
                    "transferred",
                    Json::uint(snap.counter("cache_hits_transferred_total") as usize),
                ),
                ("cone_rows", Json::uint(total_hit as usize)),
            ]),
        ),
        (
            "cone_inserts_total",
            Json::uint(snap.counter("cache_cone_inserts_total") as usize),
        ),
        ("forward_passes", Json::uint(stats.forward_passes as usize)),
    ]))
}

/// One cold/hot latency block: the per-stage percentile summaries plus
/// the queue-depth and batch-size distributions of the merged runs.
fn latency_block(metrics: &Snapshot) -> Json {
    let mut fields = vec![("stages".to_string(), stages_json(metrics))];
    for name in ["queue_depth", "batch_size"] {
        if let Some(h) = metrics.histogram(name) {
            fields.push((name.to_string(), histogram_json(h)));
        }
    }
    Json::Obj(fields)
}

/// Scaling sweep over subject widths: for every `--bits` entry, measure
/// the cold serve path (cache off, batch 1) with the thread pool and with
/// kernels forced single-threaded, reporting nodes/sec plus the
/// assembly/forward stage split from the per-stage histograms. This is the
/// "fast at the paper's scale" trajectory: 2.6k-node toys up to
/// million-node multipliers through the same serve path.
fn bench_scaling_sweep(
    reasoner: &Arc<GamoraReasoner>,
    kind: MultiplierKind,
    bits_list: &[usize],
    count: usize,
    base: ServeConfig,
) -> Result<Json, String> {
    let base_nodes = generate_multiplier(kind, bits_list[0]).aig.num_nodes();
    let mut widths = Vec::new();
    for &w in bits_list {
        let subject = generate_multiplier(kind, w);
        let nodes = subject.aig.num_nodes();
        // Keep the total node budget roughly constant across widths so a
        // 256-bit entry submits a few million-node subjects instead of
        // `count` of them.
        let subs = ((count * base_nodes) / nodes.max(1)).clamp(2, count.max(2));
        eprintln!("  scaling {w:>4}-bit {kind}: {nodes} nodes x {subs} cold submissions ...");
        let (pool_nps, pool) = scaling_run(reasoner, base, base.intra_threads, &subject.aig, subs)?;
        let (single_nps, single) = scaling_run(reasoner, base, 1, &subject.aig, subs)?;
        let speedup = pool_nps / single_nps;
        eprintln!(
            "  scaling {w:>4}-bit {kind}: pool {pool_nps:>12.0} nodes/sec   \
             1-thread {single_nps:>12.0} nodes/sec   speedup {speedup:.2}x"
        );
        widths.push(Json::obj([
            ("bits", Json::uint(w)),
            ("nodes", Json::uint(nodes)),
            ("aig_edges", Json::uint(2 * subject.aig.num_ands())),
            ("submissions", Json::uint(subs)),
            ("pool", pool),
            ("single_thread", single),
            ("parallel_speedup", Json::Num(speedup)),
        ]));
    }
    Ok(Json::obj([
        ("kind", Json::str(kind.to_string())),
        (
            "host_threads",
            Json::uint(gamora_gnn::parallel::num_threads()),
        ),
        ("widths", Json::Arr(widths)),
    ]))
}

/// One cold scaling measurement: batch 1, cache off, the given intra-op
/// thread budget. The first submission warms the worker scratch to the
/// subject's high-water mark; the timed submissions then measure the
/// steady state. Returns (nodes/sec, report row).
fn scaling_run(
    reasoner: &Arc<GamoraReasoner>,
    base: ServeConfig,
    intra_threads: usize,
    aig: &Aig,
    subs: usize,
) -> Result<(f64, Json), String> {
    let server = Server::start_shared(
        Arc::clone(reasoner),
        ServeConfig {
            max_batch: 1,
            cache_capacity: 0,
            intra_threads,
            ..base
        },
    );
    server
        .submit(aig.clone(), AnalysisKind::Classify)
        .map_err(|e| format!("serving failed: {e}"))?
        .wait()
        .map_err(|e| format!("serving failed: {e}"))?;
    let t0 = Instant::now();
    server
        .submit_all(
            (0..subs)
                .map(|_| (aig.clone(), AnalysisKind::Classify))
                .collect(),
        )
        .map_err(|e| format!("serving failed: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    let metrics = server.metrics();
    server.shutdown();
    let aigs_per_sec = subs as f64 / wall;
    let nodes_per_sec = aigs_per_sec * aig.num_nodes() as f64;
    // p50 rather than mean: the warmup submission is in the histograms
    // and its first-touch growth would skew a mean at small sub counts.
    let stage_p50 = |name: &str| {
        metrics
            .histogram(name)
            .map_or(Json::Null, |h| Json::u64(h.percentile(0.50)))
    };
    let resolved = if intra_threads > 0 {
        intra_threads
    } else {
        (gamora_gnn::parallel::num_threads() / base.workers.max(1)).max(1)
    };
    Ok((
        nodes_per_sec,
        Json::obj([
            ("intra_threads", Json::uint(resolved)),
            ("cold_aigs_per_sec", Json::Num(aigs_per_sec)),
            ("nodes_per_sec", Json::Num(nodes_per_sec)),
            (
                "assemble_micros_p50",
                stage_p50("stage_batch_assemble_micros"),
            ),
            ("forward_micros_p50", stage_p50("stage_gnn_forward_micros")),
            (
                "split_micros_p50",
                stage_p50("stage_prediction_split_micros"),
            ),
        ]),
    ))
}

/// Quantisation accuracy sidebar for `--quant` runs: per-task argmax
/// agreement between the f32 twin and the quantised model on the bench
/// subject, plus the resident weight-store sizes behind the
/// throughput rows.
fn bench_quantisation(f32_twin: &GamoraReasoner, quant: &GamoraReasoner, subject: &Aig) -> Json {
    let a = f32_twin.predict(subject);
    let b = quant.predict(subject);
    let n = a.num_nodes().max(1);
    let mut agree = [0usize; 3];
    for i in 0..a.num_nodes() {
        agree[0] += (a.root_leaf[i] == b.root_leaf[i]) as usize;
        agree[1] += (a.is_xor[i] == b.is_xor[i]) as usize;
        agree[2] += (a.is_maj[i] == b.is_maj[i]) as usize;
    }
    let frac = |c: usize| c as f64 / n as f64;
    let mean = (frac(agree[0]) + frac(agree[1]) + frac(agree[2])) / 3.0;
    let f32_bytes = f32_twin.resident_weight_bytes();
    let q_bytes = quant.resident_weight_bytes();
    eprintln!(
        "  quantisation: argmax agreement {:.4}% mean over {} nodes, \
         weights {f32_bytes} -> {q_bytes} bytes ({:.2}x)",
        mean * 100.0,
        a.num_nodes(),
        f32_bytes as f64 / q_bytes as f64
    );
    Json::obj([
        (
            "argmax_agreement",
            Json::obj([
                ("root_leaf", Json::Num(frac(agree[0]))),
                ("xor", Json::Num(frac(agree[1]))),
                ("maj", Json::Num(frac(agree[2]))),
                ("mean", Json::Num(mean)),
            ]),
        ),
        ("f32_weight_bytes", Json::uint(f32_bytes)),
        ("quantised_weight_bytes", Json::uint(q_bytes)),
        ("compression", Json::Num(f32_bytes as f64 / q_bytes as f64)),
    ])
}

/// Shard-affinity run: distinct netlists spread over the shards, then
/// every netlist is resubmitted — shard routing must serve **all**
/// repeats from the warm per-shard caches with zero extra forward passes.
fn bench_shard_affinity(
    reasoner: &Arc<GamoraReasoner>,
    shards: usize,
    base: ServeConfig,
) -> Result<Json, String> {
    let router = ShardRouter::start(
        Arc::clone(reasoner),
        shards,
        ServeConfig {
            max_batch: 8,
            cache_capacity: 64,
            ..base
        },
    );
    let subjects: Vec<Aig> = (3..11usize)
        .map(|b| generate_multiplier(MultiplierKind::Csa, b).aig)
        .collect();
    for aig in &subjects {
        router
            .submit(aig.clone(), AnalysisKind::Classify)
            .map_err(|e| format!("warm submission failed: {e}"))?
            .wait()
            .map_err(|e| format!("warm submission failed: {e}"))?;
    }
    let warm_forwards = router.stats().forward_passes;
    let mut repeat_hits = 0usize;
    for aig in &subjects {
        let out = router
            .submit(aig.clone(), AnalysisKind::Classify)
            .map_err(|e| format!("repeat submission failed: {e}"))?
            .wait()
            .map_err(|e| format!("repeat submission failed: {e}"))?;
        if out.cache_hit {
            repeat_hits += 1;
        }
    }
    let per_shard = router.shard_stats();
    let shards_used = per_shard.iter().filter(|s| s.jobs > 0).count();
    // Per-shard stage latencies: each shard keeps a private registry, so
    // this shows whether one shard's cache or queue is running hot.
    let per_shard_stages: Vec<Json> = router.shard_metrics().iter().map(stages_json).collect();
    let stats = router.shutdown();
    let affinity_ok = repeat_hits == subjects.len() && stats.forward_passes == warm_forwards;
    eprintln!(
        "  sharding: {}/{} repeats cache-hit across {shards_used}/{shards} shards used",
        repeat_hits,
        subjects.len()
    );
    if !affinity_ok {
        return Err(format!(
            "shard affinity broken: {repeat_hits}/{} repeats hit, forwards {} -> {}",
            subjects.len(),
            warm_forwards,
            stats.forward_passes
        ));
    }
    Ok(Json::obj([
        ("distinct_graphs", Json::uint(subjects.len())),
        ("repeat_cache_hits", Json::uint(repeat_hits)),
        ("shards_used", Json::uint(shards_used)),
        ("affinity_ok", Json::Bool(affinity_ok)),
        (
            "per_shard_jobs",
            Json::arr(per_shard.iter().map(|s| Json::u64(s.jobs))),
        ),
        (
            "per_shard",
            Json::arr(per_shard.iter().map(serve_stats_json)),
        ),
        ("per_shard_stages", Json::Arr(per_shard_stages)),
    ]))
}

/// Chaos run for `--chaos SPEC`: the same routed workload twice through
/// the retrying ingress — once clean, once with the fault spec armed —
/// so the report shows what self-healing costs (throughput, p99 versus
/// the clean twin) and what it absorbed (respawns, quarantines, retries,
/// failed jobs, fault fires). Distinct multiplier widths cycle through
/// the submissions so a quarantined fingerprint never starves the whole
/// run.
fn bench_chaos(
    reasoner: &Arc<GamoraReasoner>,
    shards: usize,
    base: ServeConfig,
    spec: &str,
    count: usize,
) -> Result<Json, String> {
    let subjects: Vec<Aig> = (3..11usize)
        .map(|b| generate_multiplier(MultiplierKind::Csa, b).aig)
        .collect();
    let policy = RetryPolicy::default();
    let run = |label: &str, armed_spec: Option<&str>| -> Result<Json, String> {
        let router = ShardRouter::start(
            Arc::clone(reasoner),
            shards,
            ServeConfig {
                max_batch: 8,
                cache_capacity: 64,
                ..base
            },
        );
        if let Some(s) = armed_spec {
            gamora_fault::configure(s).map_err(|e| format!("--chaos: {e}"))?;
        }
        let jobs: Vec<(Aig, AnalysisKind)> = (0..count)
            .map(|i| (subjects[i % subjects.len()].clone(), AnalysisKind::Classify))
            .collect();
        let t0 = Instant::now();
        let outcomes = router.submit_all_retrying(jobs, &policy);
        let wall = t0.elapsed().as_secs_f64();
        let fires = if armed_spec.is_some() {
            gamora_fault::disarm();
            gamora_fault::fired_total()
        } else {
            0
        };
        let completed = outcomes.iter().filter(|o| o.is_ok()).count();
        let failed = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::AnalysisFailed)))
            .count();
        let dropped = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::JobDropped)))
            .count();
        let metrics = router.metrics();
        let stats = router.shutdown();
        let p99 = metrics
            .histogram("latency_e2e_micros")
            .map_or(Json::Null, |h| {
                if h.is_empty() {
                    Json::Null
                } else {
                    Json::u64(h.percentile(0.99))
                }
            });
        eprintln!(
            "  chaos[{label}]: {completed}/{count} completed in {wall:.2}s \
             (respawns {}, quarantines {}, retries {}, failed {failed}, dropped {dropped})",
            stats.workers_respawned, stats.quarantines, stats.retries
        );
        Ok(Json::obj([
            ("aigs_per_sec", Json::Num(count as f64 / wall)),
            ("completed", Json::uint(completed)),
            ("failed", Json::uint(failed)),
            ("dropped", Json::uint(dropped)),
            ("p99_e2e_micros", p99),
            ("workers_respawned", Json::u64(stats.workers_respawned)),
            ("quarantines", Json::u64(stats.quarantines)),
            ("retries", Json::u64(stats.retries)),
            ("jobs_failed", Json::u64(stats.jobs_failed)),
            ("jobs_dropped", Json::u64(stats.jobs_dropped)),
            ("fault_fires", Json::u64(fires)),
        ]))
    };
    let clean = run("clean", None)?;
    let faulted = run("faulted", Some(spec))?;
    Ok(Json::obj([
        ("spec", Json::str(spec)),
        ("submissions", Json::uint(count)),
        ("clean", clean),
        ("faulted", faulted),
    ]))
}

/// Saturation run: hammer a cold, bounded ingress with 4x its queue
/// capacity via `try_submit`. The bounded queue must shed load
/// (`Overloaded`) instead of growing, the high-water mark must respect
/// the bound, and every admitted job must complete — no hung clients.
fn bench_saturation(
    reasoner: &Arc<GamoraReasoner>,
    shards: usize,
    base: ServeConfig,
    queue_cap: usize,
    deadline_micros: u64,
    subject: &Aig,
) -> Result<Json, String> {
    let ingress = Ingress::start(
        reasoner,
        shards,
        ServeConfig {
            max_batch: 8,
            cache_capacity: 0, // forward pass per job: the queue really backs up
            ..base
        },
    );
    // A single repeated subject always routes to one shard, so this run
    // saturates exactly one bounded queue — the bound under test. Scale
    // attempts by that queue's capacity only, not the shard count.
    let attempts = 4 * queue_cap;
    let ttl = Duration::from_micros(deadline_micros);
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for _ in 0..attempts {
        let result = if deadline_micros > 0 {
            ingress.try_submit_within(subject.clone(), AnalysisKind::Classify, ttl)
        } else {
            ingress.try_submit(subject.clone(), AnalysisKind::Classify)
        };
        match result {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Overloaded) => rejected += 1,
            Err(e) => return Err(format!("saturation submit failed: {e}")),
        }
    }
    let admitted = tickets.len();
    let (mut completed, mut expired, mut hung) = (0usize, 0usize, 0usize);
    for ticket in &tickets {
        match ticket.wait_timeout(Duration::from_secs(120)) {
            Ok(_) => completed += 1,
            Err(ServeError::DeadlineExpired) => expired += 1,
            Err(ServeError::WaitTimeout) => hung += 1,
            Err(e) => return Err(format!("admitted job lost: {e}")),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let stats = ingress.shutdown();
    eprintln!(
        "  saturation: {attempts} attempts -> {admitted} admitted, {rejected} rejected, \
         {completed} completed, {expired} expired, peak queue {} (cap {queue_cap})",
        stats.peak_queued
    );
    if stats.peak_queued > queue_cap as u64 {
        return Err(format!(
            "queue bound violated: peak {} > capacity {queue_cap}",
            stats.peak_queued
        ));
    }
    if hung > 0 {
        return Err(format!(
            "{hung} admitted jobs never completed (hung clients)"
        ));
    }
    let Json::Obj(mut obj) = Json::obj([
        ("attempts", Json::uint(attempts)),
        ("queue_capacity", Json::uint(queue_cap)),
        ("admitted", Json::uint(admitted)),
        ("rejected_overload", Json::uint(rejected)),
        ("completed", Json::uint(completed)),
        ("expired", Json::uint(expired)),
        ("wall_seconds", Json::Num(wall)),
    ]) else {
        unreachable!()
    };
    obj.push(("stats".to_string(), serve_stats_json(&stats)));
    Ok(Json::Obj(obj))
}

/// Scans a compact JSON text for `"key": <integer>` — enough to lift the
/// smaps numbers out of a child's report without a JSON parser.
fn json_u64_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Multi-process zero-copy demo: N concurrent `gamora infer --mmap`
/// children serve the same snapshot; each reports the /proc/self/smaps
/// shared/private split of its weight mapping. Weight pages touched by
/// several processes at once count as shared — the evidence that the
/// payload is resident once, not once per process. Children disable the
/// prediction cache and submit the subject several times so their
/// mappings stay alive long enough to overlap.
fn cmd_mmap_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags
        .get("--model")
        .ok_or("mmap-demo requires --model MODEL.gsnap")?;
    let procs = flags.usize_or("--procs", 4)?;
    let bits = flags.usize_or("--bits", 8)?;
    let kind = parse_kind(flags.get("--kind").unwrap_or("csa"))?;
    if procs == 0 {
        return Err("--procs must be at least 1".into());
    }

    // One subject file for every child.
    let subject = generate_multiplier(kind, bits);
    let aag = std::env::temp_dir().join(format!("gamora-mmap-demo-{}.aag", std::process::id()));
    let file = std::fs::File::create(&aag).map_err(|e| format!("writing subject: {e}"))?;
    aiger::write_ascii(&subject.aig, std::io::BufWriter::new(file))
        .map_err(|e| format!("writing subject: {e}"))?;
    let cleanup = || {
        std::fs::remove_file(&aag).ok();
    };

    let exe = std::env::current_exe().map_err(|e| format!("locating gamora binary: {e}"))?;
    eprintln!(
        "mmap-demo: {procs} concurrent `gamora infer --mmap` processes over '{model_path}' \
         ({}-bit {kind} subject, {} nodes) ...",
        bits,
        subject.aig.num_nodes()
    );
    let mut children = Vec::new();
    for _ in 0..procs {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args([
            "infer",
            "--model",
            model_path,
            "--mmap",
            "--compact",
            "--cache",
            "0",
        ]);
        for _ in 0..8 {
            cmd.arg(&aag);
        }
        let child = cmd
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning child: {e}"))?;
        children.push(child);
    }

    let mut rows = Vec::new();
    let (mut shared_sum, mut private_sum, mut rss_sum) = (0u64, 0u64, 0u64);
    let mut all_mapped = true;
    for (i, child) in children.into_iter().enumerate() {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("waiting for child {i}: {e}"))?;
        if !out.status.success() {
            cleanup();
            return Err(format!("child {i} failed with {}", out.status));
        }
        let text = String::from_utf8_lossy(&out.stdout);
        let mapped = text.contains("\"mapped\":true");
        all_mapped &= mapped;
        let field = |key| json_u64_field(&text, key).unwrap_or(0);
        let shared = field("shared_clean_kb") + field("shared_dirty_kb");
        let private = field("private_clean_kb") + field("private_dirty_kb");
        let rss = field("rss_kb");
        let load_micros = json_u64_field(&text, "load_micros");
        eprintln!(
            "  process {i}: mapped {mapped}, mapping rss {rss} kB \
             (shared {shared} kB, private {private} kB)"
        );
        shared_sum += shared;
        private_sum += private;
        rss_sum += rss;
        rows.push(Json::obj([
            ("process", Json::uint(i)),
            ("mapped", Json::Bool(mapped)),
            ("rss_kb", Json::u64(rss)),
            ("shared_kb", Json::u64(shared)),
            ("private_kb", Json::u64(private)),
            ("load_micros", load_micros.map_or(Json::Null, Json::u64)),
        ]));
    }
    cleanup();

    let file_kb = std::fs::metadata(model_path).map(|m| m.len()).unwrap_or(0) / 1024;
    // One physical copy means each process's mapping is (almost) all
    // shared pages: total resident ≈ file size, not procs * file size.
    let shared_fraction = if rss_sum > 0 {
        shared_sum as f64 / rss_sum as f64
    } else {
        0.0
    };
    eprintln!(
        "mmap-demo: {procs} processes, snapshot {file_kb} kB; summed mapping rss {rss_sum} kB, \
         {:.1}% shared — one physical weight copy",
        100.0 * shared_fraction
    );
    let json = Json::obj([
        ("command", Json::str("mmap-demo")),
        ("model", Json::str(model_path)),
        ("processes", Json::uint(procs)),
        ("subject_bits", Json::uint(bits)),
        ("subject_nodes", Json::uint(subject.aig.num_nodes())),
        ("snapshot_kb", Json::u64(file_kb)),
        ("all_mapped", Json::Bool(all_mapped)),
        ("per_process", Json::Arr(rows)),
        ("shared_kb_total", Json::u64(shared_sum)),
        ("private_kb_total", Json::u64(private_sum)),
        ("rss_kb_total", Json::u64(rss_sum)),
        ("shared_fraction", Json::Num(shared_fraction)),
    ]);
    println!("{json}");
    Ok(())
}
