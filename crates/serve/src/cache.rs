//! Structural-hash prediction cache: an LRU map from canonical AIG
//! fingerprints to served predictions.
//!
//! The key is the whole-graph canonical hash of
//! [`gamora_aig::hasher::structural_fingerprint`] plus the node/input/AND
//! counts, so repeated — and isomorphic, renumbered — submissions of a
//! netlist skip the GNN forward pass entirely.
//!
//! Serving is two-tier:
//!
//! 1. **verbatim** — if the submission's order-sensitive
//!    [`identity_fingerprint`](gamora_aig::hasher::identity_fingerprint)
//!    matches the cached entry, the stored per-node prediction vectors are
//!    returned unchanged: bit-exact reproduction of the original forward
//!    pass (the common repeated-netlist case);
//! 2. **transfer** — otherwise the entry's predictions are re-indexed
//!    through canonical per-node hashes onto the submission's numbering.
//!    Transfer is refused (an honest miss) if the cached graph contains
//!    duplicate canonical node hashes — with fanout-sensitive message
//!    passing, structurally identical cones can still predict differently
//!    — or if any submission hash cannot be resolved (a genuine
//!    fingerprint collision).
//!
//! Eviction is true LRU in O(1) via an index-linked list over a slab.

use gamora::Predictions;
use gamora_aig::hasher::{
    fingerprint_from_node_hashes, identity_fingerprint, structural_node_hashes, FxHashMap,
};
use gamora_aig::Aig;

/// Cache key: canonical fingerprint qualified by coarse shape counts.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Whole-graph canonical structural hash.
    pub fingerprint: u64,
    /// Total node count (collision guard and prediction-length check).
    pub num_nodes: usize,
    /// Primary-input count.
    pub num_inputs: usize,
    /// AND-gate count.
    pub num_ands: usize,
}

/// Everything the cache needs to know about one submission, computed in a
/// single O(nodes) pass.
#[derive(Clone, Debug)]
pub struct GraphSignature {
    /// The LRU key.
    pub key: CacheKey,
    /// Order-sensitive exact hash (verbatim-serve test).
    pub identity: u64,
    /// Canonical per-node hashes (transfer-serve index).
    pub node_hashes: Vec<u64>,
}

impl GraphSignature {
    /// Computes the signature of an AIG.
    pub fn of(aig: &Aig) -> GraphSignature {
        let node_hashes = structural_node_hashes(aig);
        GraphSignature {
            key: CacheKey {
                fingerprint: fingerprint_from_node_hashes(aig, &node_hashes),
                num_nodes: aig.num_nodes(),
                num_inputs: aig.num_inputs(),
                num_ands: aig.num_ands(),
            },
            identity: identity_fingerprint(aig),
            node_hashes,
        }
    }
}

struct Entry {
    key: CacheKey,
    identity: u64,
    predictions: Predictions,
    /// Canonical node hash -> (root_leaf, is_xor, is_maj), valid only when
    /// `hashes_unique`: with duplicate intra-graph hashes (unstrashed
    /// duplicate cones) a node's prediction is *not* determined by its
    /// fanin cone — the bidirectional GNN also sees fanout context — so
    /// transfer-serving would guess. We refuse instead (transfer miss).
    by_hash: FxHashMap<u64, (u32, bool, bool)>,
    /// Whether every node of the cached graph has a distinct canonical
    /// hash (precondition for sound transfer serving).
    hashes_unique: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// How a [`PredictionCache::lookup`] hit was produced.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HitKind {
    /// Identical numbering: stored vectors served unchanged.
    Verbatim,
    /// Isomorphic renumbering: predictions transferred through canonical
    /// node hashes.
    Transferred,
}

/// An LRU-bounded map from structural fingerprints to predictions.
pub struct PredictionCache {
    capacity: usize,
    map: FxHashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` graphs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PredictionCache {
        assert!(capacity > 0, "cache capacity must be positive");
        PredictionCache {
            capacity,
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached graphs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up predictions for a submission, marking it most recently
    /// used on a hit.
    pub fn lookup(&mut self, sig: &GraphSignature) -> Option<(Predictions, HitKind)> {
        let Some(&idx) = self.map.get(&sig.key) else {
            self.misses += 1;
            return None;
        };
        let served = {
            let entry = &self.slab[idx];
            if entry.identity == sig.identity {
                Some((entry.predictions.clone(), HitKind::Verbatim))
            } else {
                transfer(entry, sig).map(|p| (p, HitKind::Transferred))
            }
        };
        match served {
            Some(hit) => {
                self.detach(idx);
                self.push_front(idx);
                self.hits += 1;
                Some(hit)
            }
            None => {
                // Fingerprint collision with unresolvable node mapping:
                // honest miss.
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) the predictions for a submission.
    ///
    /// # Panics
    ///
    /// Panics if the prediction length disagrees with the signature's node
    /// count.
    pub fn insert(&mut self, sig: &GraphSignature, predictions: Predictions) {
        assert_eq!(
            predictions.num_nodes(),
            sig.key.num_nodes,
            "predictions must cover every node"
        );
        if let Some(&idx) = self.map.get(&sig.key) {
            // Refresh in place (e.g. re-inserted after a transfer miss).
            self.detach(idx);
            let (by_hash, hashes_unique) = index_by_hash(sig, &predictions);
            self.slab[idx].identity = sig.identity;
            self.slab[idx].by_hash = by_hash;
            self.slab[idx].hashes_unique = hashes_unique;
            self.slab[idx].predictions = predictions;
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
        }
        let (by_hash, hashes_unique) = index_by_hash(sig, &predictions);
        let entry = Entry {
            key: sig.key,
            identity: sig.identity,
            by_hash,
            hashes_unique,
            predictions,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(sig.key, idx);
        self.push_front(idx);
    }
}

/// Builds the canonical-hash prediction index; the flag reports whether
/// every node hash was distinct (the soundness precondition for transfer).
fn index_by_hash(
    sig: &GraphSignature,
    preds: &Predictions,
) -> (FxHashMap<u64, (u32, bool, bool)>, bool) {
    let mut by_hash = FxHashMap::default();
    let mut unique = true;
    for (i, &h) in sig.node_hashes.iter().enumerate() {
        if by_hash
            .insert(h, (preds.root_leaf[i], preds.is_xor[i], preds.is_maj[i]))
            .is_some()
        {
            unique = false;
        }
    }
    (by_hash, unique)
}

fn transfer(entry: &Entry, sig: &GraphSignature) -> Option<Predictions> {
    // Duplicate canonical hashes in the cached graph mean per-node
    // predictions are not a function of the canonical hash (fanout context
    // differs); refuse to guess.
    if !entry.hashes_unique {
        return None;
    }
    let n = sig.node_hashes.len();
    let mut preds = Predictions {
        root_leaf: Vec::with_capacity(n),
        is_xor: Vec::with_capacity(n),
        is_maj: Vec::with_capacity(n),
    };
    for h in &sig.node_hashes {
        let &(rl, xor, maj) = entry.by_hash.get(h)?;
        preds.root_leaf.push(rl);
        preds.is_xor.push(xor);
        preds.is_maj.push(maj);
    }
    Some(preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::aiger;

    fn toy_aig(outputs_complemented: bool) -> Aig {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s.complement_if(outputs_complemented));
        aig.add_output(c);
        aig
    }

    fn toy_predictions(aig: &Aig) -> Predictions {
        let n = aig.num_nodes();
        Predictions {
            root_leaf: (0..n as u32).map(|i| i % 4).collect(),
            is_xor: (0..n).map(|i| i % 2 == 0).collect(),
            is_maj: (0..n).map(|i| i % 3 == 0).collect(),
        }
    }

    #[test]
    fn repeated_submission_hits_verbatim() {
        let aig = toy_aig(false);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);
        assert!(cache.lookup(&sig).is_none());
        let preds = toy_predictions(&aig);
        cache.insert(&sig, preds.clone());

        let resub = GraphSignature::of(&toy_aig(false));
        let (served, kind) = cache.lookup(&resub).expect("hit");
        assert_eq!(kind, HitKind::Verbatim);
        assert_eq!(served.root_leaf, preds.root_leaf);
        assert_eq!(served.is_xor, preds.is_xor);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn renumbered_isomorph_hits_by_transfer() {
        // Interleave inputs and ANDs so the graph is *not* in canonical
        // AIGER order; write_binary then genuinely renumbers it.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(2);
        let x = aig.xor(ins[0], ins[1]);
        let carry_in = aig.add_input().lit();
        let s = aig.xor(x, carry_in);
        aig.add_output(s);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);
        cache.insert(&sig, toy_predictions(&aig));

        // A binary AIGER round trip renumbers the graph.
        let mut buf = Vec::new();
        aiger::write_binary(&aig, &mut buf).unwrap();
        let back = aiger::read(&buf[..]).unwrap();
        assert_ne!(
            gamora_aig::hasher::identity_fingerprint(&aig),
            gamora_aig::hasher::identity_fingerprint(&back),
            "round trip must renumber this graph for the test to bite"
        );
        let back_sig = GraphSignature::of(&back);
        assert_eq!(
            back_sig.key, sig.key,
            "canonical key must survive renumbering"
        );

        let (served, kind) = cache.lookup(&back_sig).expect("transfer hit");
        // Transferred predictions follow the canonical node identity: node
        // i of `back` gets the prediction of the original node with the
        // same canonical hash.
        assert_eq!(kind, HitKind::Transferred);
        let orig = toy_predictions(&aig);
        let orig_hashes = sig.node_hashes.clone();
        for (i, h) in back_sig.node_hashes.iter().enumerate() {
            let j = orig_hashes.iter().position(|x| x == h).unwrap();
            assert_eq!(served.root_leaf[i], orig.root_leaf[j]);
        }
    }

    #[test]
    fn transfer_refused_for_duplicate_cone_graphs() {
        // Two identical AND gates (possible only in unstrashed graphs, e.g.
        // read from AIGER): their canonical node hashes collide, but their
        // predictions may differ (fanout context), so transfer must refuse.
        let text = "aag 4 2 0 2 2\n2\n4\n6\n8\n6 2 4\n8 2 4\n";
        let aig = aiger::read(text.as_bytes()).unwrap();
        let sig = GraphSignature::of(&aig);
        assert_eq!(
            sig.node_hashes[3], sig.node_hashes[4],
            "duplicate cones share a canonical hash"
        );
        let mut cache = PredictionCache::new(2);
        cache.insert(&sig, toy_predictions(&aig));

        // Identical resubmission still serves verbatim, bit-exactly.
        let (_, kind) = cache.lookup(&sig).expect("verbatim hit");
        assert_eq!(kind, HitKind::Verbatim);

        // A renumbered isomorph (different identity hash) must miss rather
        // than guess which duplicate's prediction to serve.
        let mut renumbered = sig.clone();
        renumbered.identity ^= 1;
        assert!(cache.lookup(&renumbered).is_none());
    }

    #[test]
    fn different_functions_do_not_collide() {
        let a = toy_aig(false);
        let b = toy_aig(true);
        let mut cache = PredictionCache::new(4);
        cache.insert(&GraphSignature::of(&a), toy_predictions(&a));
        assert!(cache.lookup(&GraphSignature::of(&b)).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut graphs = Vec::new();
        for i in 0..4usize {
            let mut aig = Aig::new();
            let ins = aig.add_inputs(i + 2);
            let x = aig.xor(ins[0], ins[1]);
            aig.add_output(x);
            graphs.push(aig);
        }
        let sigs: Vec<_> = graphs.iter().map(GraphSignature::of).collect();
        let mut cache = PredictionCache::new(2);
        cache.insert(&sigs[0], toy_predictions(&graphs[0]));
        cache.insert(&sigs[1], toy_predictions(&graphs[1]));
        // Touch 0 so 1 becomes LRU, then insert 2 -> evicts 1.
        assert!(cache.lookup(&sigs[0]).is_some());
        cache.insert(&sigs[2], toy_predictions(&graphs[2]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&sigs[1]).is_none(), "1 was evicted");
        assert!(cache.lookup(&sigs[0]).is_some(), "0 survived");
        assert!(cache.lookup(&sigs[2]).is_some());
        // Insert two more: everything older rolls out.
        cache.insert(&sigs[3], toy_predictions(&graphs[3]));
        cache.insert(&sigs[1], toy_predictions(&graphs[1]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&sigs[0]).is_none());
    }
}
