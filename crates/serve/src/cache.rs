//! Structural-hash prediction cache: an LRU map from canonical AIG
//! fingerprints to served predictions.
//!
//! The key is the whole-graph canonical hash of
//! [`gamora_aig::hasher::structural_fingerprint`] plus the node/input/AND
//! counts, so repeated — and isomorphic, renumbered — submissions of a
//! netlist skip the GNN forward pass entirely.
//!
//! Serving is two-tier:
//!
//! 1. **verbatim** — if the submission's order-sensitive
//!    [`identity_fingerprint`](gamora_aig::hasher::identity_fingerprint)
//!    matches the cached entry, the stored per-node prediction vectors are
//!    returned unchanged: bit-exact reproduction of the original forward
//!    pass (the common repeated-netlist case);
//! 2. **transfer** — otherwise the entry's predictions are re-indexed
//!    through canonical per-node hashes onto the submission's numbering.
//!    Transfer is refused (an honest miss) if the cached graph contains
//!    duplicate canonical node hashes — with fanout-sensitive message
//!    passing, structurally identical cones can still predict differently
//!    — or if any submission hash cannot be resolved (a genuine
//!    fingerprint collision).
//!
//! Eviction is true LRU in O(1) via an index-linked list over a slab.
//!
//! **Lock discipline.** The scheduler keeps the cache behind a mutex, so
//! everything O(nodes) is kept *out* of the cache's own methods'
//! contended section: [`PredictionCache::probe`] is an O(1) map probe +
//! LRU touch that hands back an [`Arc<CacheEntry>`]; the O(nodes)
//! verbatim clone or transfer re-indexing then runs through
//! [`CacheEntry::resolve`] on the caller's thread with no lock held.
//! Symmetrically, [`CacheEntry::new`] builds the O(nodes) hash index
//! outside the lock and [`PredictionCache::insert_entry`] links it in
//! O(1). [`PredictionCache::lookup`] / [`PredictionCache::insert`] remain
//! as single-call conveniences for unlocked (single-owner) use.

use gamora::Predictions;
use gamora_aig::cone::{cone_descriptors_into, ConeDescriptor, DEFAULT_CONE_SEED};
use gamora_aig::hasher::{
    fingerprint_from_node_hashes, identity_fingerprint, structural_node_hashes_parallel, FxHashMap,
};
use gamora_aig::Aig;
use gamora_gnn::Graph;
use gamora_obs::{Counter, Histogram, Registry, StageTimer};
use std::sync::Arc;

/// Per-tier cache observability: probe/resolve latency histograms plus
/// verbatim/transfer hit and miss counters. The handles are `Arc`s into a
/// [`Registry`]; recording is wait-free and allocation-free, so the timed
/// helpers ([`PredictionCache::probe_timed`],
/// [`CacheEntry::resolve_timed`]) are safe both under the scheduler's
/// cache mutex (probe) and on the lock-free resolve path.
pub struct CacheMetrics {
    /// O(1) LRU probe latency (under the cache lock).
    pub probe_micros: Arc<Histogram>,
    /// O(nodes) verbatim-clone / transfer-reindex latency (no lock held).
    pub resolve_micros: Arc<Histogram>,
    /// Resolutions served bit-exactly from the stored vectors.
    pub hits_verbatim: Arc<Counter>,
    /// Resolutions transferred onto a renumbered isomorph.
    pub hits_transferred: Arc<Counter>,
    /// Probes that found no entry for the key.
    pub probe_misses: Arc<Counter>,
    /// Probed entries that refused to resolve (duplicate cones or a
    /// genuine fingerprint collision) — honest misses.
    pub resolve_misses: Arc<Counter>,
    /// Merged-batch rows probed against the cone tier.
    pub cone_rows_probed: Arc<Counter>,
    /// Cone-tier row hits — exactly the forward rows skipped by the
    /// row-masked epilogue.
    pub cone_rows_hit: Arc<Counter>,
    /// Rows inserted into the cone tier after a forward pass.
    pub cone_inserts: Arc<Counter>,
    /// Per-batch cone key computation latency (descriptors + WL
    /// refinement, outside any lock).
    pub cone_keys_micros: Arc<Histogram>,
    /// Per-batch cone probe latency (all rows, one lock hold).
    pub cone_probe_micros: Arc<Histogram>,
    /// Per-batch cone insert latency (miss rows, one lock hold).
    pub cone_insert_micros: Arc<Histogram>,
}

impl CacheMetrics {
    /// Registers the cache metrics in `reg` under `cache_*` names.
    pub fn register(reg: &mut Registry) -> CacheMetrics {
        CacheMetrics {
            probe_micros: reg.histogram("cache_probe_micros"),
            resolve_micros: reg.histogram("cache_resolve_micros"),
            hits_verbatim: reg.counter("cache_hits_verbatim_total"),
            hits_transferred: reg.counter("cache_hits_transferred_total"),
            probe_misses: reg.counter("cache_probe_misses_total"),
            resolve_misses: reg.counter("cache_resolve_misses_total"),
            cone_rows_probed: reg.counter("cache_cone_rows_probed_total"),
            cone_rows_hit: reg.counter("cache_cone_rows_hit_total"),
            cone_inserts: reg.counter("cache_cone_inserts_total"),
            cone_keys_micros: reg.histogram("cache_cone_keys_micros"),
            cone_probe_micros: reg.histogram("cache_cone_probe_micros"),
            cone_insert_micros: reg.histogram("cache_cone_insert_micros"),
        }
    }
}

/// Cache key: canonical fingerprint qualified by coarse shape counts.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Whole-graph canonical structural hash.
    pub fingerprint: u64,
    /// Total node count (collision guard and prediction-length check).
    pub num_nodes: usize,
    /// Primary-input count.
    pub num_inputs: usize,
    /// AND-gate count.
    pub num_ands: usize,
}

/// Everything the cache needs to know about one submission, computed in a
/// single O(nodes) pass.
#[derive(Clone, Debug)]
pub struct GraphSignature {
    /// The LRU key.
    pub key: CacheKey,
    /// Order-sensitive exact hash (verbatim-serve test).
    pub identity: u64,
    /// Canonical per-node hashes (transfer-serve index).
    pub node_hashes: Vec<u64>,
}

impl GraphSignature {
    /// Computes the signature of an AIG.
    ///
    /// The per-node hash pass runs as a levelized wavefront over scoped
    /// threads for large subjects, under the caller's `intra_threads`
    /// budget (`gamora_gnn::parallel::num_threads()` reads the worker's
    /// thread-local allowance) — bit-identical to the serial pass, so
    /// fingerprints computed on admission threads, worker threads and in
    /// tests always agree.
    pub fn of(aig: &Aig) -> GraphSignature {
        let node_hashes = structural_node_hashes_parallel(aig, gamora_gnn::parallel::num_threads());
        GraphSignature {
            key: CacheKey {
                fingerprint: fingerprint_from_node_hashes(aig, &node_hashes),
                num_nodes: aig.num_nodes(),
                num_inputs: aig.num_inputs(),
                num_ands: aig.num_ands(),
            },
            identity: identity_fingerprint(aig),
            node_hashes,
        }
    }
}

/// How a cache hit was produced.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HitKind {
    /// Identical numbering: stored vectors served unchanged.
    Verbatim,
    /// Isomorphic renumbering: predictions transferred through canonical
    /// node hashes.
    Transferred,
}

/// One cached graph's immutable serving payload. Shared out of the cache
/// by `Arc` so the expensive resolution work ([`CacheEntry::resolve`])
/// runs with no cache lock held.
pub struct CacheEntry {
    identity: u64,
    predictions: Predictions,
    /// Canonical node hash -> (root_leaf, is_xor, is_maj), valid only when
    /// `hashes_unique`: with duplicate intra-graph hashes (unstrashed
    /// duplicate cones) a node's prediction is *not* determined by its
    /// fanin cone — the bidirectional GNN also sees fanout context — so
    /// transfer-serving would guess. We refuse instead (transfer miss).
    by_hash: FxHashMap<u64, (u32, bool, bool)>,
    /// Whether every node of the cached graph has a distinct canonical
    /// hash (precondition for sound transfer serving).
    hashes_unique: bool,
}

impl CacheEntry {
    /// Builds the serving payload — including the O(nodes) canonical-hash
    /// index — for one signature/prediction pair. Call *outside* any
    /// cache lock.
    ///
    /// # Panics
    ///
    /// Panics if the prediction length disagrees with the signature's node
    /// count.
    pub fn new(sig: &GraphSignature, predictions: Predictions) -> CacheEntry {
        assert_eq!(
            predictions.num_nodes(),
            sig.key.num_nodes,
            "predictions must cover every node"
        );
        let mut by_hash = FxHashMap::default();
        let mut hashes_unique = true;
        for (i, &h) in sig.node_hashes.iter().enumerate() {
            if by_hash
                .insert(
                    h,
                    (
                        predictions.root_leaf[i],
                        predictions.is_xor[i],
                        predictions.is_maj[i],
                    ),
                )
                .is_some()
            {
                hashes_unique = false;
            }
        }
        CacheEntry {
            identity: sig.identity,
            predictions,
            by_hash,
            hashes_unique,
        }
    }

    /// Serves a submission from this entry: verbatim when the identity
    /// hash matches, otherwise transferred through canonical node hashes.
    /// `None` is an honest miss (duplicate cones, or a genuine
    /// fingerprint collision). O(nodes) — run it with no lock held.
    pub fn resolve(&self, sig: &GraphSignature) -> Option<(Predictions, HitKind)> {
        if self.identity == sig.identity {
            return Some((self.predictions.clone(), HitKind::Verbatim));
        }
        self.transfer(sig).map(|p| (p, HitKind::Transferred))
    }

    /// [`CacheEntry::resolve`] with tier accounting: records the resolve
    /// latency and bumps the verbatim/transferred hit counter (or the
    /// resolve-miss counter on an honest refusal).
    pub fn resolve_timed(
        &self,
        sig: &GraphSignature,
        metrics: &CacheMetrics,
    ) -> Option<(Predictions, HitKind)> {
        let timer = StageTimer::start();
        let resolved = self.resolve(sig);
        timer.observe(&metrics.resolve_micros);
        match &resolved {
            Some((_, HitKind::Verbatim)) => metrics.hits_verbatim.inc(),
            Some((_, HitKind::Transferred)) => metrics.hits_transferred.inc(),
            None => metrics.resolve_misses.inc(),
        }
        resolved
    }

    fn transfer(&self, sig: &GraphSignature) -> Option<Predictions> {
        // Duplicate canonical hashes in the cached graph mean per-node
        // predictions are not a function of the canonical hash (fanout
        // context differs); refuse to guess.
        if !self.hashes_unique {
            return None;
        }
        let n = sig.node_hashes.len();
        let mut preds = Predictions {
            root_leaf: Vec::with_capacity(n),
            is_xor: Vec::with_capacity(n),
            is_maj: Vec::with_capacity(n),
        };
        for h in &sig.node_hashes {
            let &(rl, xor, maj) = self.by_hash.get(h)?;
            preds.root_leaf.push(rl);
            preds.is_xor.push(xor);
            preds.is_maj.push(maj);
        }
        Some(preds)
    }
}

struct Slot {
    key: CacheKey,
    entry: Arc<CacheEntry>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// An LRU-bounded map from structural fingerprints to predictions.
pub struct PredictionCache {
    capacity: usize,
    map: FxHashMap<CacheKey, usize>,
    slab: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` graphs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PredictionCache {
        assert!(capacity > 0, "cache capacity must be positive");
        PredictionCache {
            capacity,
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached graphs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count ([`PredictionCache::lookup`] only; `probe`
    /// callers keep their own accounting because hit-vs-miss is decided
    /// outside the cache).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count ([`PredictionCache::lookup`] only).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// O(1) probe: finds the entry for a key and marks it most recently
    /// used. The returned `Arc` lets the caller run the O(nodes)
    /// [`CacheEntry::resolve`] *after* releasing whatever lock guards the
    /// cache. A probe that later fails to resolve (honest transfer miss)
    /// has still touched the LRU — harmless, the entry was the best
    /// candidate we had.
    pub fn probe(&mut self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        let &idx = self.map.get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.slab[idx].entry))
    }

    /// [`PredictionCache::probe`] with probe-latency and probe-miss
    /// accounting. Recording is a few relaxed atomics, so calling this
    /// under the scheduler's cache mutex does not widen the critical
    /// section meaningfully.
    pub fn probe_timed(
        &mut self,
        key: &CacheKey,
        metrics: &CacheMetrics,
    ) -> Option<Arc<CacheEntry>> {
        let timer = StageTimer::start();
        let entry = self.probe(key);
        timer.observe(&metrics.probe_micros);
        if entry.is_none() {
            metrics.probe_misses.inc();
        }
        entry
    }

    /// Looks up predictions for a submission, marking it most recently
    /// used on a hit. Convenience over [`PredictionCache::probe`] +
    /// [`CacheEntry::resolve`] for single-owner use; the O(nodes)
    /// resolution runs inline, so locked callers should use the split
    /// API instead.
    pub fn lookup(&mut self, sig: &GraphSignature) -> Option<(Predictions, HitKind)> {
        match self.probe(&sig.key).and_then(|e| e.resolve(sig)) {
            Some(hit) => {
                self.hits += 1;
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// O(1) insert (or refresh) of a pre-built entry. Build the entry
    /// with [`CacheEntry::new`] *outside* the cache lock.
    pub fn insert_entry(&mut self, key: CacheKey, entry: Arc<CacheEntry>) {
        if let Some(&idx) = self.map.get(&key) {
            // Refresh in place (e.g. re-inserted after a transfer miss).
            self.detach(idx);
            self.slab[idx].entry = entry;
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
        }
        let slot = Slot {
            key,
            entry,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(free) => {
                self.slab[free] = slot;
                free
            }
            None => {
                self.slab.push(slot);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Inserts (or refreshes) the predictions for a submission.
    ///
    /// # Panics
    ///
    /// Panics if the prediction length disagrees with the signature's node
    /// count.
    pub fn insert(&mut self, sig: &GraphSignature, predictions: Predictions) {
        self.insert_entry(sig.key, Arc::new(CacheEntry::new(sig, predictions)));
    }
}

// ---------------------------------------------------------------------------
// Cone tier
// ---------------------------------------------------------------------------

/// Key of one node's cone in the cone-level cache tier: the
/// WL-refined structural channel plus the independent seeded
/// simulation-signature channel. Both must match for a hit — a structural
/// collision with a differing sim signature is an honest miss, never a
/// false hit.
pub type ConeKey = (u64, u64);

/// Packs a per-node prediction into one cone-cache value word.
#[inline]
pub fn pack_prediction(root_leaf: u32, is_xor: bool, is_maj: bool) -> u32 {
    (root_leaf << 2) | (u32::from(is_xor)) | (u32::from(is_maj) << 1)
}

/// Inverse of [`pack_prediction`].
#[inline]
pub fn unpack_prediction(packed: u32) -> (u32, bool, bool) {
    (packed >> 2, packed & 1 != 0, packed & 2 != 0)
}

/// The cone-level cache tier: canonical cone key -> packed per-node
/// prediction.
///
/// Eviction is two-generation segmented (the classic "S4LRU lite"): an
/// insert that would grow the *current* generation past half the capacity
/// demotes current to *previous* and discards the old previous wholesale.
/// Every entry therefore survives at least half-a-capacity of inserts, the
/// total never exceeds `capacity`, and — unlike a per-entry LRU list —
/// both [`ConeCache::probe`] (pure map reads, `&self`) and
/// [`ConeCache::insert`] stay O(1) with *zero* steady-state allocations:
/// generation rotation is a pointer swap plus a `clear()` that keeps the
/// map's buckets.
pub struct ConeCache {
    capacity: usize,
    current: FxHashMap<ConeKey, u32>,
    previous: FxHashMap<ConeKey, u32>,
}

impl ConeCache {
    /// Creates a cone cache holding at most `capacity` node predictions
    /// across both generations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ConeCache {
        assert!(capacity > 0, "cone cache capacity must be positive");
        ConeCache {
            capacity,
            current: FxHashMap::default(),
            previous: FxHashMap::default(),
        }
    }

    /// Number of cached cone predictions (both generations).
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up one cone key: current generation first, then previous.
    /// Read-only and allocation-free — the serve path probes a whole
    /// batch's rows under one short lock hold.
    #[inline]
    pub fn probe(&self, key: ConeKey) -> Option<u32> {
        self.current
            .get(&key)
            .or_else(|| self.previous.get(&key))
            .copied()
    }

    /// Inserts (or refreshes) one cone prediction, rotating generations
    /// when the current one reaches half the capacity.
    pub fn insert(&mut self, key: ConeKey, packed: u32) {
        let half = self.capacity.div_ceil(2);
        if !self.current.contains_key(&key) && self.current.len() >= half {
            std::mem::swap(&mut self.current, &mut self.previous);
            // Keeps the bucket allocation: steady-state rotation is free.
            self.current.clear();
        }
        self.current.insert(key, packed);
    }
}

/// Reusable per-worker scratch for cone-key computation: per-subject
/// descriptors, the merged per-row key/sim channels, and the WL ping-pong
/// buffer. Everything is allocation-free once warmed to the largest batch
/// seen.
#[derive(Default)]
pub struct ConeState {
    descs: Vec<ConeDescriptor>,
    /// Structural channel per merged-batch row, WL-refined over the
    /// actual batch graph after [`ConeState::compute_keys`].
    pub keys: Vec<u64>,
    /// Simulation-signature channel per merged-batch row (cone-local,
    /// never refined).
    pub sims: Vec<u64>,
    wl: Vec<u64>,
    /// Merged-batch rows whose cone key missed — the row mask handed to
    /// the partial forward pass.
    pub miss_rows: Vec<u32>,
}

impl ConeState {
    /// Computes every merged-batch row's [`ConeKey`] for a batch of
    /// subjects laid out consecutively in `graph` (the merged batch graph
    /// the forward pass will run on): per-node cone descriptors per
    /// subject, then `rounds` Weisfeiler-Leman refinement rounds of the
    /// structural channel over the merged graph.
    ///
    /// `rounds` must be the model's message-passing layer count: equal
    /// refined keys then imply bit-identical embedding rows (see
    /// [`Graph::refine_keys`]), which is what makes serving a cached
    /// prediction for an equal key sound.
    ///
    /// # Panics
    ///
    /// Panics if the subjects' node counts do not sum to the graph's.
    pub fn compute_keys(&mut self, aigs: &[&Aig], graph: &Graph, rounds: usize) {
        self.keys.clear();
        self.sims.clear();
        for aig in aigs {
            cone_descriptors_into(aig, DEFAULT_CONE_SEED, &mut self.descs);
            for d in &self.descs {
                self.keys.push(d.base);
                self.sims.push(d.sim);
            }
        }
        assert_eq!(
            self.keys.len(),
            graph.num_nodes(),
            "subjects must tile the batch graph"
        );
        graph.refine_keys(&mut self.keys, &mut self.wl, rounds);
    }

    /// The cone key of merged-batch row `r` (valid after
    /// [`ConeState::compute_keys`]).
    #[inline]
    pub fn key(&self, r: usize) -> ConeKey {
        (self.keys[r], self.sims[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::aiger;

    fn toy_aig(outputs_complemented: bool) -> Aig {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let (s, c) = aig.full_adder(ins[0], ins[1], ins[2]);
        aig.add_output(s.complement_if(outputs_complemented));
        aig.add_output(c);
        aig
    }

    fn toy_predictions(aig: &Aig) -> Predictions {
        let n = aig.num_nodes();
        Predictions {
            root_leaf: (0..n as u32).map(|i| i % 4).collect(),
            is_xor: (0..n).map(|i| i % 2 == 0).collect(),
            is_maj: (0..n).map(|i| i % 3 == 0).collect(),
        }
    }

    #[test]
    fn repeated_submission_hits_verbatim() {
        let aig = toy_aig(false);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);
        assert!(cache.lookup(&sig).is_none());
        let preds = toy_predictions(&aig);
        cache.insert(&sig, preds.clone());

        let resub = GraphSignature::of(&toy_aig(false));
        let (served, kind) = cache.lookup(&resub).expect("hit");
        assert_eq!(kind, HitKind::Verbatim);
        assert_eq!(served.root_leaf, preds.root_leaf);
        assert_eq!(served.is_xor, preds.is_xor);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    /// The split probe/resolve API serves the same answers as `lookup`,
    /// with the O(nodes) work running on a detached `Arc` (no cache
    /// access needed) — the pattern the locked scheduler uses.
    #[test]
    fn probe_then_resolve_matches_lookup() {
        let aig = toy_aig(false);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);
        assert!(cache.probe(&sig.key).is_none(), "empty cache: no entry");
        cache.insert(&sig, toy_predictions(&aig));

        let entry = cache.probe(&sig.key).expect("probe finds the entry");
        // Resolution happens entirely on the Arc — drop the cache first to
        // prove no further cache access is involved.
        drop(cache);
        let (served, kind) = entry.resolve(&sig).expect("verbatim resolve");
        assert_eq!(kind, HitKind::Verbatim);
        assert_eq!(served.root_leaf, toy_predictions(&aig).root_leaf);
    }

    #[test]
    fn renumbered_isomorph_hits_by_transfer() {
        // Interleave inputs and ANDs so the graph is *not* in canonical
        // AIGER order; write_binary then genuinely renumbers it.
        let mut aig = Aig::new();
        let ins = aig.add_inputs(2);
        let x = aig.xor(ins[0], ins[1]);
        let carry_in = aig.add_input().lit();
        let s = aig.xor(x, carry_in);
        aig.add_output(s);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);
        cache.insert(&sig, toy_predictions(&aig));

        // A binary AIGER round trip renumbers the graph.
        let mut buf = Vec::new();
        aiger::write_binary(&aig, &mut buf).unwrap();
        let back = aiger::read(&buf[..]).unwrap();
        assert_ne!(
            gamora_aig::hasher::identity_fingerprint(&aig),
            gamora_aig::hasher::identity_fingerprint(&back),
            "round trip must renumber this graph for the test to bite"
        );
        let back_sig = GraphSignature::of(&back);
        assert_eq!(
            back_sig.key, sig.key,
            "canonical key must survive renumbering"
        );

        let (served, kind) = cache.lookup(&back_sig).expect("transfer hit");
        // Transferred predictions follow the canonical node identity: node
        // i of `back` gets the prediction of the original node with the
        // same canonical hash.
        assert_eq!(kind, HitKind::Transferred);
        let orig = toy_predictions(&aig);
        let orig_hashes = sig.node_hashes.clone();
        for (i, h) in back_sig.node_hashes.iter().enumerate() {
            let j = orig_hashes.iter().position(|x| x == h).unwrap();
            assert_eq!(served.root_leaf[i], orig.root_leaf[j]);
        }
    }

    #[test]
    fn transfer_refused_for_duplicate_cone_graphs() {
        // Two identical AND gates (possible only in unstrashed graphs, e.g.
        // read from AIGER): their canonical node hashes collide, but their
        // predictions may differ (fanout context), so transfer must refuse.
        let text = "aag 4 2 0 2 2\n2\n4\n6\n8\n6 2 4\n8 2 4\n";
        let aig = aiger::read(text.as_bytes()).unwrap();
        let sig = GraphSignature::of(&aig);
        assert_eq!(
            sig.node_hashes[3], sig.node_hashes[4],
            "duplicate cones share a canonical hash"
        );
        let mut cache = PredictionCache::new(2);
        cache.insert(&sig, toy_predictions(&aig));

        // Identical resubmission still serves verbatim, bit-exactly.
        let (_, kind) = cache.lookup(&sig).expect("verbatim hit");
        assert_eq!(kind, HitKind::Verbatim);

        // A renumbered isomorph (different identity hash) must miss rather
        // than guess which duplicate's prediction to serve.
        let mut renumbered = sig.clone();
        renumbered.identity ^= 1;
        assert!(cache.lookup(&renumbered).is_none());
    }

    /// The timed probe/resolve wrappers serve identical answers to the
    /// plain API and account each tier exactly once.
    #[test]
    fn timed_probe_resolve_accounts_tiers() {
        let mut reg = Registry::new();
        let metrics = CacheMetrics::register(&mut reg);
        let aig = toy_aig(false);
        let sig = GraphSignature::of(&aig);
        let mut cache = PredictionCache::new(4);

        assert!(cache.probe_timed(&sig.key, &metrics).is_none());
        cache.insert(&sig, toy_predictions(&aig));
        let entry = cache.probe_timed(&sig.key, &metrics).expect("hit");
        let (served, kind) = entry.resolve_timed(&sig, &metrics).expect("verbatim");
        assert_eq!(kind, HitKind::Verbatim);
        assert_eq!(served.root_leaf, toy_predictions(&aig).root_leaf);

        // A renumbered identity forces the transfer tier.
        let mut renumbered = sig.clone();
        renumbered.identity ^= 1;
        let (_, kind) = entry
            .resolve_timed(&renumbered, &metrics)
            .expect("transfer");
        assert_eq!(kind, HitKind::Transferred);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache_probe_misses_total"), 1);
        assert_eq!(snap.counter("cache_hits_verbatim_total"), 1);
        assert_eq!(snap.counter("cache_hits_transferred_total"), 1);
        assert_eq!(snap.counter("cache_resolve_misses_total"), 0);
        assert_eq!(snap.histogram("cache_probe_micros").unwrap().count(), 2);
        assert_eq!(snap.histogram("cache_resolve_micros").unwrap().count(), 2);
    }

    #[test]
    fn different_functions_do_not_collide() {
        let a = toy_aig(false);
        let b = toy_aig(true);
        let mut cache = PredictionCache::new(4);
        cache.insert(&GraphSignature::of(&a), toy_predictions(&a));
        assert!(cache.lookup(&GraphSignature::of(&b)).is_none());
    }

    /// ISSUE 9 collision guard: two cones with the same structural channel
    /// but different simulation signatures must never serve each other.
    #[test]
    fn cone_key_collision_on_sim_channel_misses() {
        let mut cache = ConeCache::new(16);
        let structural = 0xDEAD_BEEF_u64;
        cache.insert((structural, 0x1111), pack_prediction(2, true, false));
        // Same cut-hash channel, different sim signature: honest miss.
        assert_eq!(cache.probe((structural, 0x2222)), None);
        // Exact key: hit, and the packed prediction round-trips.
        let hit = cache.probe((structural, 0x1111)).expect("exact key hits");
        assert_eq!(unpack_prediction(hit), (2, true, false));
        // Symmetrically, same sim with a different structural channel.
        assert_eq!(cache.probe((0xFEED_F00D, 0x1111)), None);
    }

    #[test]
    fn cone_cache_two_generation_eviction_is_bounded() {
        let mut cache = ConeCache::new(8);
        for i in 0..100u64 {
            cache.insert((i, i), pack_prediction(i as u32 % 4, false, false));
            assert!(cache.len() <= 8, "capacity exceeded at insert {i}");
        }
        // The most recent insert always survives.
        assert!(cache.probe((99, 99)).is_some());
        // An entry inserted into the current generation survives at least
        // half-a-capacity of further inserts.
        let mut cache = ConeCache::new(8);
        cache.insert((1000, 1000), 7);
        for i in 0..3u64 {
            cache.insert((i, i), 0);
        }
        assert_eq!(cache.probe((1000, 1000)), Some(7));
        // Refreshing a key does not rotate generations spuriously.
        cache.insert((1000, 1000), 9);
        assert_eq!(cache.probe((1000, 1000)), Some(9));
    }

    /// Cone keys computed on a merged batch graph equal the keys computed
    /// on each subject alone (disjoint sections), and identical cones in
    /// different subjects produce identical keys.
    #[test]
    fn cone_keys_are_batch_composition_independent() {
        use gamora::dataset::{build_graph_into, inference_graph};
        use gamora::{BatchScratch, FeatureMode};
        use gamora_gnn::Direction;

        let a = toy_aig(false);
        let b = {
            let mut aig = Aig::new();
            let ins = aig.add_inputs(2);
            let x = aig.xor(ins[0], ins[1]);
            aig.add_output(x);
            aig
        };
        let rounds = 2;

        // Per-subject keys.
        let mut solo = ConeState::default();
        let mut solo_keys = Vec::new();
        for aig in [&a, &b] {
            let (graph, _) = inference_graph(
                aig,
                FeatureMode::StructuralFunctional,
                Direction::Bidirectional,
            );
            solo.compute_keys(&[aig], &graph, rounds);
            solo_keys.extend((0..aig.num_nodes()).map(|r| solo.key(r)));
        }

        // Merged-batch keys.
        let mut ws = BatchScratch::default();
        gamora::dataset::batch_graphs_into(
            &[
                (
                    &a,
                    &inference_graph(
                        &a,
                        FeatureMode::StructuralFunctional,
                        Direction::Bidirectional,
                    )
                    .1,
                ),
                (
                    &b,
                    &inference_graph(
                        &b,
                        FeatureMode::StructuralFunctional,
                        Direction::Bidirectional,
                    )
                    .1,
                ),
            ],
            Direction::Bidirectional,
            &mut ws,
        );
        let mut batched = ConeState::default();
        batched.compute_keys(&[&a, &b], ws.graph(), rounds);
        let batch_keys: Vec<ConeKey> = (0..a.num_nodes() + b.num_nodes())
            .map(|r| batched.key(r))
            .collect();
        assert_eq!(batch_keys, solo_keys);

        // Two copies of the same subject in one batch: identical key runs.
        let mut twin = BatchScratch::default();
        let xa = inference_graph(
            &a,
            FeatureMode::StructuralFunctional,
            Direction::Bidirectional,
        )
        .1;
        gamora::dataset::batch_graphs_into(
            &[(&a, &xa), (&a, &xa)],
            Direction::Bidirectional,
            &mut twin,
        );
        let mut twin_state = ConeState::default();
        twin_state.compute_keys(&[&a, &a], twin.graph(), rounds);
        let n = a.num_nodes();
        for r in 0..n {
            assert_eq!(twin_state.key(r), twin_state.key(n + r), "row {r}");
        }
        // Guard against accidental direct unused import removal.
        let mut g = gamora_gnn::Graph::default();
        build_graph_into(&a, Direction::Bidirectional, &mut g);
        assert_eq!(g.num_nodes(), a.num_nodes());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut graphs = Vec::new();
        for i in 0..4usize {
            let mut aig = Aig::new();
            let ins = aig.add_inputs(i + 2);
            let x = aig.xor(ins[0], ins[1]);
            aig.add_output(x);
            graphs.push(aig);
        }
        let sigs: Vec<_> = graphs.iter().map(GraphSignature::of).collect();
        let mut cache = PredictionCache::new(2);
        cache.insert(&sigs[0], toy_predictions(&graphs[0]));
        cache.insert(&sigs[1], toy_predictions(&graphs[1]));
        // Touch 0 so 1 becomes LRU, then insert 2 -> evicts 1.
        assert!(cache.lookup(&sigs[0]).is_some());
        cache.insert(&sigs[2], toy_predictions(&graphs[2]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&sigs[1]).is_none(), "1 was evicted");
        assert!(cache.lookup(&sigs[0]).is_some(), "0 survived");
        assert!(cache.lookup(&sigs[2]).is_some());
        // Insert two more: everything older rolls out.
        cache.insert(&sigs[3], toy_predictions(&graphs[3]));
        cache.insert(&sigs[1], toy_predictions(&graphs[1]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&sigs[0]).is_none());
    }
}
