//! # gamora-serve
//!
//! Persistent-model batch inference service for the Gamora reproduction:
//! the chassis that turns the train-and-evaluate-in-one-process pipeline
//! into a train-once / serve-many system.
//!
//! * **Model persistence** — `gamora::GamoraReasoner::save` / `load`
//!   (versioned, checksummed binary snapshots; see `gamora::snapshot`)
//!   make a trained reasoner a durable artifact served across processes.
//! * [`cache`] — an LRU prediction cache keyed on the canonical
//!   structural fingerprint of `gamora_aig::hasher`, so repeated or
//!   isomorphic submissions skip the GNN forward pass entirely.
//! * [`scheduler`] — a `std::thread` + channel worker pool that coalesces
//!   concurrent jobs into micro-batches for `predict_batch` and fans the
//!   results back out (the serving analogue of the paper's Figure 8).
//!   The pool shares **one** model behind an `Arc` — inference is `&self`
//!   — and each worker carries only a reusable scratch workspace, so a
//!   warmed-up worker serves repeat-sized traffic without heap churn.
//!   The ingress is production-hardened: bounded queues with explicit
//!   admission (`try_submit` → `SubmitError::Overloaded`), a linger
//!   window so trickling traffic still forms real batches, per-job
//!   deadlines honoured before the forward pass, and fail-fast
//!   submission once shutdown begins. It is also **self-healing**: a
//!   supervisor respawns workers killed by panicking batches,
//!   submissions that repeatedly kill workers are quarantined by
//!   structural fingerprint, and `Server::health` reports
//!   healthy/degraded/shutting-down. The `gamora-fault` crate's fail
//!   points (armable via `GAMORA_FAULTS` or `--faults`) make every one
//!   of those recovery paths provokable on demand in tests and benches.
//! * [`router`] — a structural-hash [`ShardRouter`]: N `Server` shards
//!   over one `Arc`'d model, each with its own queue and prediction
//!   cache; repeats of a netlist always land on the shard whose cache is
//!   warm, so no cache mutex is ever shared across shards.
//! * [`metrics`] — full serve-path observability over `gamora_obs`:
//!   per-stage latency histograms (admission, queue wait, linger,
//!   signature hash, batch assembly, GNN forward, prediction split),
//!   end-to-end latency, queue-depth/batch-size distributions, per-tier
//!   cache accounting and optional per-layer forward timing. Each server
//!   owns a private registry ([`Server::metrics`] snapshots it;
//!   [`ShardRouter::metrics`] merges the shards'), and recording is
//!   wait-free and allocation-free, so the instrumented hot path stays
//!   within a few percent of the uninstrumented one.
//! * [`report`] — dependency-free JSON for the `gamora` binary's output.
//!
//! The `gamora` binary (this crate's `src/bin/gamora.rs`) wires it
//! together: `gamora train` fits and snapshots a model, `gamora infer`
//! serves AIGER netlists from a snapshot, `gamora bench-serve` measures
//! serving throughput across batch sizes.
//!
//! ```
//! use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
//! use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
//!
//! let m = gamora_circuits::csa_multiplier(3);
//! let mut reasoner = GamoraReasoner::new(ReasonerConfig {
//!     depth: ModelDepth::Custom { layers: 2, hidden: 8 },
//!     ..ReasonerConfig::default()
//! });
//! reasoner.fit(&[&m.aig], &TrainConfig { epochs: 5, ..TrainConfig::default() });
//!
//! let server = Server::start(reasoner, ServeConfig::default());
//! let out = server.submit(m.aig.clone(), AnalysisKind::Classify).unwrap().wait().unwrap();
//! assert_eq!(out.predictions.num_nodes(), m.aig.num_nodes());
//! let repeat = server.submit(m.aig.clone(), AnalysisKind::Classify).unwrap().wait().unwrap();
//! assert!(repeat.cache_hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod report;
pub mod router;
pub mod scheduler;

pub use cache::{CacheEntry, CacheKey, CacheMetrics, GraphSignature, HitKind, PredictionCache};
pub use metrics::{LayerObserver, ServeMetrics};
pub use report::Json;
pub use router::{RetryPolicy, ShardRouter};
pub use scheduler::{
    AnalysisKind, Health, JobOutput, JobTicket, ServeConfig, ServeError, ServeStats, Server,
    SubmitError,
};
