//! Serve-path metric handles: the named counters, gauges and stage
//! histograms one [`Server`](crate::scheduler::Server) records into.
//!
//! Every server owns a private [`Registry`]; the handles below are `Arc`s
//! captured at startup, so the hot path only touches wait-free atomics —
//! the registry itself is consulted exclusively at snapshot time.
//! [`ShardRouter::metrics`](crate::router::ShardRouter::metrics) merges the
//! per-shard snapshots by name into one fleet view.
//!
//! ## Stage definitions (all values in microseconds)
//!
//! | metric | span |
//! |---|---|
//! | `stage_snapshot_load_micros` | snapshot open → model ready (cold start; recorded once per load by the binary via [`Server::record_snapshot_load`](crate::scheduler::Server::record_snapshot_load)) |
//! | `stage_admission_micros` | submit call entry → job admitted into the queue (includes blocking waits for queue space) |
//! | `stage_queue_wait_micros` | admission → a worker claims the job into a batch |
//! | `stage_linger_micros` | time a short batch waited for companions |
//! | `stage_signature_hash_micros` | structural signature computation per batch (router-submitted jobs arrive pre-hashed, so their share is near zero) |
//! | `stage_batch_assemble_micros` | merged batch graph + feature assembly |
//! | `stage_gnn_forward_micros` | the coalesced GNN forward pass |
//! | `stage_prediction_split_micros` | argmax decode + per-netlist scatter |
//! | `stage_time_to_rejection_micros` | submit/queue entry → `Overloaded` or `DeadlineExpired` shed |
//! | `latency_e2e_micros` | submission → answer sent (the `JobOutput::latency_micros` distribution) |
//!
//! Distribution metrics `queue_depth` (sampled at every admission) and
//! `batch_size` (per executed batch) use the same histogram type with unit
//! "jobs" instead of microseconds.

use crate::cache::CacheMetrics;
use gamora_gnn::{ForwardObserver, ForwardStage};
use gamora_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Per-layer forward-timing sink: implements the GNN crate's
/// [`ForwardObserver`] seam over obs histograms (`forward_layer_<i>_micros`,
/// `forward_shared_micros`, `forward_heads_micros`).
pub struct LayerObserver {
    sage: Vec<Arc<Histogram>>,
    shared: Arc<Histogram>,
    heads: Arc<Histogram>,
}

impl LayerObserver {
    /// Registers one histogram per trunk layer plus the shared linear and
    /// the combined heads.
    pub fn register(reg: &mut Registry, num_layers: usize) -> LayerObserver {
        LayerObserver {
            sage: (0..num_layers)
                .map(|l| reg.histogram(&format!("forward_layer_{l}_micros")))
                .collect(),
            shared: reg.histogram("forward_shared_micros"),
            heads: reg.histogram("forward_heads_micros"),
        }
    }
}

impl ForwardObserver for LayerObserver {
    fn record_stage(&self, stage: ForwardStage, micros: u64) {
        match stage {
            ForwardStage::Sage(l) => {
                if let Some(h) = self.sage.get(l) {
                    h.record(micros);
                }
            }
            ForwardStage::Shared => self.shared.record(micros),
            ForwardStage::Heads => self.heads.record(micros),
        }
    }
}

/// Every metric handle the scheduler records into, registered under the
/// names documented in the module header. Counters `serve_*_total` mirror
/// the [`ServeStats`](crate::scheduler::ServeStats) fields (stats are read
/// *from* these, so the two views can never diverge).
pub struct ServeMetrics {
    /// Jobs admitted into the queue (tickets issued).
    pub jobs_submitted: Arc<Counter>,
    /// Jobs completed (answer produced and sent).
    pub jobs: Arc<Counter>,
    /// Batches executed with at least one live job.
    pub batches: Arc<Counter>,
    /// GNN forward passes run.
    pub forward_passes: Arc<Counter>,
    /// Completed jobs answered from the cache (or coalesced duplicates).
    pub cache_hits: Arc<Counter>,
    /// Completed jobs that needed the model.
    pub cache_misses: Arc<Counter>,
    /// Admitted jobs dropped unanswered.
    pub jobs_dropped: Arc<Counter>,
    /// Admitted jobs rejected on an expired deadline.
    pub jobs_expired: Arc<Counter>,
    /// Admitted jobs answered `ServeError::AnalysisFailed` (injected
    /// stage errors, quarantined fingerprints).
    pub jobs_failed: Arc<Counter>,
    /// Submissions refused at the door with `Overloaded`.
    pub rejected_overload: Arc<Counter>,
    /// Dead worker threads respawned by the supervisor.
    pub workers_respawned: Arc<Counter>,
    /// Fingerprints quarantined after repeated batch panics.
    pub quarantines: Arc<Counter>,
    /// High-water mark of the queue depth.
    pub peak_queued: Arc<Gauge>,
    /// Current health state (0 = healthy, 1 = degraded, 2 = shutting
    /// down); refreshed on every `health()`/`stats()` read. Gauges merge
    /// by max, so a fleet snapshot reports the *worst* shard.
    pub health: Arc<Gauge>,

    /// Snapshot open → model ready (cold start). Not on the per-job path:
    /// the binary records it once per load so the cold-start cost shows up
    /// in the same stage table / Prometheus text as the serving stages.
    pub stage_snapshot_load: Arc<Histogram>,
    /// Submit entry → admission (includes blocking waits for space).
    pub stage_admission: Arc<Histogram>,
    /// Admission → batch claim.
    pub stage_queue_wait: Arc<Histogram>,
    /// Linger window actually waited by short batches.
    pub stage_linger: Arc<Histogram>,
    /// Structural signature hashing per batch.
    pub stage_hash: Arc<Histogram>,
    /// Merged batch graph/feature assembly.
    pub stage_assemble: Arc<Histogram>,
    /// The coalesced GNN forward pass.
    pub stage_forward: Arc<Histogram>,
    /// Argmax decode + per-netlist scatter.
    pub stage_split: Arc<Histogram>,
    /// Submission → shed (`Overloaded` / `DeadlineExpired`).
    pub stage_time_to_rejection: Arc<Histogram>,
    /// Submission → answer sent.
    pub latency_e2e: Arc<Histogram>,

    /// Queue depth sampled at every admission (unit: jobs).
    pub queue_depth: Arc<Histogram>,
    /// Live jobs per executed batch (unit: jobs).
    pub batch_size: Arc<Histogram>,

    /// Cache tier/latency metrics (recorded through `cache.rs` helpers).
    pub cache: CacheMetrics,
    /// Per-layer forward timing, present iff
    /// [`ServeConfig::layer_timing`](crate::scheduler::ServeConfig::layer_timing)
    /// is on.
    pub layers: Option<LayerObserver>,
}

impl ServeMetrics {
    /// Registers every serve metric in `reg`. `layer_count` switches on the
    /// optional per-layer forward histograms.
    pub fn register(reg: &mut Registry, layer_count: Option<usize>) -> ServeMetrics {
        ServeMetrics {
            jobs_submitted: reg.counter("serve_jobs_submitted_total"),
            jobs: reg.counter("serve_jobs_completed_total"),
            batches: reg.counter("serve_batches_total"),
            forward_passes: reg.counter("serve_forward_passes_total"),
            cache_hits: reg.counter("serve_cache_hits_total"),
            cache_misses: reg.counter("serve_cache_misses_total"),
            jobs_dropped: reg.counter("serve_jobs_dropped_total"),
            jobs_expired: reg.counter("serve_jobs_expired_total"),
            jobs_failed: reg.counter("serve_jobs_failed_total"),
            rejected_overload: reg.counter("serve_rejected_overload_total"),
            workers_respawned: reg.counter("serve_workers_respawned_total"),
            quarantines: reg.counter("serve_quarantines_total"),
            peak_queued: reg.gauge("serve_peak_queued"),
            health: reg.gauge("serve_health"),
            stage_snapshot_load: reg.histogram("stage_snapshot_load_micros"),
            stage_admission: reg.histogram("stage_admission_micros"),
            stage_queue_wait: reg.histogram("stage_queue_wait_micros"),
            stage_linger: reg.histogram("stage_linger_micros"),
            stage_hash: reg.histogram("stage_signature_hash_micros"),
            stage_assemble: reg.histogram("stage_batch_assemble_micros"),
            stage_forward: reg.histogram("stage_gnn_forward_micros"),
            stage_split: reg.histogram("stage_prediction_split_micros"),
            stage_time_to_rejection: reg.histogram("stage_time_to_rejection_micros"),
            latency_e2e: reg.histogram("latency_e2e_micros"),
            queue_depth: reg.histogram("queue_depth"),
            batch_size: reg.histogram("batch_size"),
            cache: CacheMetrics::register(reg),
            layers: layer_count.map(|n| LayerObserver::register(reg, n)),
        }
    }

    /// The layer observer as the GNN-facing trait object, if enabled.
    pub fn forward_observer(&self) -> Option<&dyn ForwardObserver> {
        self.layers.as_ref().map(|l| l as &dyn ForwardObserver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_observer_routes_stages() {
        let mut reg = Registry::new();
        let obs = LayerObserver::register(&mut reg, 2);
        obs.record_stage(ForwardStage::Sage(0), 10);
        obs.record_stage(ForwardStage::Sage(1), 20);
        obs.record_stage(ForwardStage::Sage(9), 30); // out of range: ignored
        obs.record_stage(ForwardStage::Shared, 40);
        obs.record_stage(ForwardStage::Heads, 50);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("forward_layer_0_micros").unwrap().count(), 1);
        assert_eq!(snap.histogram("forward_layer_1_micros").unwrap().count(), 1);
        assert_eq!(snap.histogram("forward_shared_micros").unwrap().sum, 40);
        assert_eq!(snap.histogram("forward_heads_micros").unwrap().sum, 50);
    }

    #[test]
    fn serve_metrics_register_all_names() {
        let mut reg = Registry::new();
        let m = ServeMetrics::register(&mut reg, Some(4));
        m.jobs_submitted.inc();
        m.stage_forward.record(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve_jobs_submitted_total"), 1);
        assert!(snap.histogram("stage_gnn_forward_micros").is_some());
        assert!(snap.histogram("stage_time_to_rejection_micros").is_some());
        assert!(snap.histogram("queue_depth").is_some());
        assert!(snap.histogram("cache_probe_micros").is_some());
        assert!(snap.histogram("forward_layer_3_micros").is_some());
        assert!(m.forward_observer().is_some());

        let mut cold = Registry::new();
        let c = ServeMetrics::register(&mut cold, None);
        assert!(c.forward_observer().is_none());
        assert!(cold
            .snapshot()
            .histogram("forward_layer_0_micros")
            .is_none());
    }
}
