//! Hand-rolled JSON serialisation for the `gamora` binary's reports.
//!
//! No external dependencies: a small value tree with RFC 8259-compliant
//! string escaping and deterministic field order (fields appear in
//! insertion order, so reports diff cleanly across runs).

use crate::scheduler::ServeStats;
use gamora_obs::{HistogramSnapshot, Snapshot};
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (serialised via Rust's shortest-roundtrip float
    /// formatting; integers print without a decimal point). Use
    /// [`Json::Int`]/[`Json::UInt`] for integers that may exceed 2^53 —
    /// an `f64` cannot hold those exactly.
    Num(f64),
    /// A signed integer, serialised digit-exactly at any magnitude.
    Int(i64),
    /// An unsigned integer, serialised digit-exactly at any magnitude
    /// (counters and histogram sums are `u64` and can exceed both 2^53
    /// and `i64::MAX`).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A signed integer value, exact at any magnitude.
    pub fn int(n: impl Into<i64>) -> Json {
        Json::Int(n.into())
    }

    /// A `usize` value, exact at any magnitude.
    pub fn uint(n: usize) -> Json {
        Json::UInt(n as u64)
    }

    /// A `u64` value, exact at any magnitude (no detour through `f64`,
    /// which silently rounds above 2^53).
    pub fn u64(n: u64) -> Json {
        Json::UInt(n)
    }

    /// Serialises with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Serialises without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::UInt(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, depth, pretty, '[', ']', items.len(), |out, i| {
                items[i].write(out, depth + 1, pretty);
            }),
            Json::Obj(fields) => write_seq(out, depth, pretty, '{', '}', fields.len(), |out, i| {
                write_string(out, &fields[i].0);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                fields[i].1.write(out, depth + 1, pretty);
            }),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serialise as null like most encoders.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..(depth + 1) * 2 {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if pretty {
        out.push('\n');
        for _ in 0..depth * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

/// The canonical JSON rendering of a server's counters, shared by every
/// `gamora` subcommand so reports stay field-compatible. Includes the
/// overload-hardening counters (`jobs_dropped`, `jobs_expired`,
/// `rejected_overload`, `peak_queued`) and the self-healing counters
/// (`jobs_failed`, `workers_respawned`, `quarantines`, `retries`,
/// `health`) alongside the serving totals.
pub fn serve_stats_json(stats: &ServeStats) -> Json {
    Json::obj([
        ("jobs_submitted", Json::u64(stats.jobs_submitted)),
        ("jobs", Json::u64(stats.jobs)),
        ("batches", Json::u64(stats.batches)),
        ("forward_passes", Json::u64(stats.forward_passes)),
        ("cache_hits", Json::u64(stats.cache_hits)),
        ("cache_misses", Json::u64(stats.cache_misses)),
        ("jobs_dropped", Json::u64(stats.jobs_dropped)),
        ("jobs_expired", Json::u64(stats.jobs_expired)),
        ("jobs_failed", Json::u64(stats.jobs_failed)),
        ("rejected_overload", Json::u64(stats.rejected_overload)),
        ("workers_respawned", Json::u64(stats.workers_respawned)),
        ("quarantines", Json::u64(stats.quarantines)),
        ("retries", Json::u64(stats.retries)),
        ("peak_queued", Json::u64(stats.peak_queued)),
        ("health", Json::str(stats.health.name())),
    ])
}

/// The JSON summary of one latency histogram: observation count, mean,
/// the p50/p90/p99/p99.9 percentiles, and the exact min/max. Percentile
/// fields are `null` for an empty histogram (no observation to rank).
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    let pct = |q: f64| {
        if h.is_empty() {
            Json::Null
        } else {
            Json::u64(h.percentile(q))
        }
    };
    Json::obj([
        ("count", Json::u64(h.count())),
        (
            "mean",
            if h.is_empty() {
                Json::Null
            } else {
                Json::Num(h.mean())
            },
        ),
        ("p50", pct(0.50)),
        ("p90", pct(0.90)),
        ("p99", pct(0.99)),
        ("p999", pct(0.999)),
        (
            "min",
            if h.is_empty() {
                Json::Null
            } else {
                Json::u64(h.min)
            },
        ),
        (
            "max",
            if h.is_empty() {
                Json::Null
            } else {
                Json::u64(h.max)
            },
        ),
    ])
}

/// Short report key → registered metric name for every per-job serve
/// stage (all in microseconds), in pipeline order. Shared by the JSON
/// reports so `bench-serve` and `infer` stay field-compatible.
pub const STAGE_METRICS: &[(&str, &str)] = &[
    ("snapshot_load", "stage_snapshot_load_micros"),
    ("admission", "stage_admission_micros"),
    ("queue_wait", "stage_queue_wait_micros"),
    ("linger", "stage_linger_micros"),
    ("signature_hash", "stage_signature_hash_micros"),
    ("batch_assemble", "stage_batch_assemble_micros"),
    ("gnn_forward", "stage_gnn_forward_micros"),
    ("prediction_split", "stage_prediction_split_micros"),
    ("time_to_rejection", "stage_time_to_rejection_micros"),
    ("e2e", "latency_e2e_micros"),
];

/// The per-stage latency block of a metric snapshot: one
/// [`histogram_json`] summary per [`STAGE_METRICS`] entry present in the
/// snapshot, keyed by the short stage name.
pub fn stages_json(snapshot: &Snapshot) -> Json {
    Json::Obj(
        STAGE_METRICS
            .iter()
            .filter_map(|(key, metric)| {
                snapshot
                    .histogram(metric)
                    .map(|h| (key.to_string(), histogram_json(h)))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_in_insertion_order() {
        let j = Json::obj([
            ("b", Json::uint(2)),
            ("a", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(j.compact(), r#"{"b":2,"a":[true,null]}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.compact(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn numbers_print_integers_exactly() {
        assert_eq!(Json::uint(123456789).compact(), "123456789");
        assert_eq!(Json::Num(0.25).compact(), "0.25");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::int(-7i32).compact(), "-7");
    }

    /// Regression: integer constructors must be digit-exact beyond the
    /// 2^53 `f64` mantissa limit and beyond `i64::MAX` — a `u64` counter
    /// routed through `f64` silently rounds ((1<<53)+1 prints as
    /// 9007199254740992) and a cast through `i64` wraps negative.
    #[test]
    fn large_integers_serialise_without_truncation_or_rounding() {
        let above_f64_mantissa = (1u64 << 53) + 1; // rounds under f64
        assert_eq!(
            Json::u64(above_f64_mantissa).compact(),
            "9007199254740993",
            "must not round to the nearest representable f64"
        );
        let above_i64 = i64::MAX as u64 + 1; // wraps under an i64 cast
        assert_eq!(Json::u64(above_i64).compact(), "9223372036854775808");
        assert_eq!(Json::u64(u64::MAX).compact(), "18446744073709551615");
        assert_eq!(Json::int(i64::MIN).compact(), "-9223372036854775808");
        assert_eq!(Json::int(i64::MAX).compact(), "9223372036854775807");
        assert_eq!(
            Json::uint(above_f64_mantissa as usize).compact(),
            "9007199254740993",
            "uint must not detour through f64 either"
        );
        // And through a full serve-stats rendering, not just in isolation.
        let stats = ServeStats {
            jobs_submitted: u64::MAX,
            ..ServeStats::default()
        };
        assert!(serve_stats_json(&stats)
            .compact()
            .contains("\"jobs_submitted\":18446744073709551615"));
    }

    #[test]
    fn histogram_json_reports_percentiles_and_handles_empty() {
        use gamora_obs::Histogram;
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let rendered = histogram_json(&h.snapshot()).compact();
        // Values < 64 are exact (linear region); p99's rank value 99 sits
        // in the width-2 bucket [98, 99], reported by its lower bound.
        for field in [
            "\"count\":100",
            "\"p50\":50",
            "\"p90\":90",
            "\"p99\":98",
            "\"p999\":100",
            "\"min\":1",
            "\"max\":100",
        ] {
            assert!(rendered.contains(field), "{field} missing from {rendered}");
        }

        let empty = histogram_json(&HistogramSnapshot::empty()).compact();
        assert!(empty.contains("\"count\":0"));
        assert!(empty.contains("\"p50\":null"));
        assert!(empty.contains("\"mean\":null"));
    }

    #[test]
    fn stages_json_keys_present_stage_histograms() {
        use gamora_obs::Registry;
        let mut reg = Registry::new();
        reg.histogram("stage_gnn_forward_micros").record(1000);
        reg.histogram("latency_e2e_micros").record(2000);
        reg.histogram("unrelated_micros").record(1);
        let Json::Obj(fields) = stages_json(&reg.snapshot()) else {
            panic!("stages_json returns an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["gnn_forward", "e2e"], "pipeline order, present only");
    }

    #[test]
    fn pretty_is_indented_and_stable() {
        let j = Json::obj([("xs", Json::arr([Json::uint(1), Json::uint(2)]))]);
        assert_eq!(j.pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_are_tight() {
        assert_eq!(Json::arr([]).pretty(), "[]");
        assert_eq!(Json::obj([]).pretty(), "{}");
    }

    #[test]
    fn serve_stats_render_every_overload_counter() {
        let stats = ServeStats {
            jobs_submitted: 12,
            jobs: 9,
            batches: 3,
            forward_passes: 2,
            cache_hits: 5,
            cache_misses: 4,
            jobs_dropped: 1,
            jobs_expired: 2,
            jobs_failed: 3,
            rejected_overload: 7,
            workers_respawned: 4,
            quarantines: 1,
            retries: 8,
            peak_queued: 6,
            health: crate::scheduler::Health::Degraded,
        };
        let rendered = serve_stats_json(&stats).compact();
        for field in [
            "\"jobs_submitted\":12",
            "\"jobs\":9",
            "\"jobs_dropped\":1",
            "\"jobs_expired\":2",
            "\"jobs_failed\":3",
            "\"rejected_overload\":7",
            "\"workers_respawned\":4",
            "\"quarantines\":1",
            "\"retries\":8",
            "\"peak_queued\":6",
            "\"health\":\"degraded\"",
        ] {
            assert!(rendered.contains(field), "{field} missing from {rendered}");
        }
    }
}
