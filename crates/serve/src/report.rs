//! Hand-rolled JSON serialisation for the `gamora` binary's reports.
//!
//! No external dependencies: a small value tree with RFC 8259-compliant
//! string escaping and deterministic field order (fields appear in
//! insertion order, so reports diff cleanly across runs).

use crate::scheduler::ServeStats;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (serialised via Rust's shortest-roundtrip float
    /// formatting; integers print without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| < 2^53).
    pub fn int(n: impl Into<i64>) -> Json {
        Json::Num(n.into() as f64)
    }

    /// A `usize` value (exact for n < 2^53).
    pub fn uint(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Serialises with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Serialises without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, depth, pretty, '[', ']', items.len(), |out, i| {
                items[i].write(out, depth + 1, pretty);
            }),
            Json::Obj(fields) => write_seq(out, depth, pretty, '{', '}', fields.len(), |out, i| {
                write_string(out, &fields[i].0);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                fields[i].1.write(out, depth + 1, pretty);
            }),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serialise as null like most encoders.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    depth: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..(depth + 1) * 2 {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if pretty {
        out.push('\n');
        for _ in 0..depth * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

/// The canonical JSON rendering of a server's counters, shared by every
/// `gamora` subcommand so reports stay field-compatible. Includes the
/// overload-hardening counters (`jobs_dropped`, `jobs_expired`,
/// `rejected_overload`, `peak_queued`) alongside the serving totals.
pub fn serve_stats_json(stats: &ServeStats) -> Json {
    Json::obj([
        ("jobs_submitted", Json::uint(stats.jobs_submitted as usize)),
        ("jobs", Json::uint(stats.jobs as usize)),
        ("batches", Json::uint(stats.batches as usize)),
        ("forward_passes", Json::uint(stats.forward_passes as usize)),
        ("cache_hits", Json::uint(stats.cache_hits as usize)),
        ("cache_misses", Json::uint(stats.cache_misses as usize)),
        ("jobs_dropped", Json::uint(stats.jobs_dropped as usize)),
        ("jobs_expired", Json::uint(stats.jobs_expired as usize)),
        (
            "rejected_overload",
            Json::uint(stats.rejected_overload as usize),
        ),
        ("peak_queued", Json::uint(stats.peak_queued as usize)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_in_insertion_order() {
        let j = Json::obj([
            ("b", Json::uint(2)),
            ("a", Json::arr([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(j.compact(), r#"{"b":2,"a":[true,null]}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(j.compact(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn numbers_print_integers_exactly() {
        assert_eq!(Json::uint(123456789).compact(), "123456789");
        assert_eq!(Json::Num(0.25).compact(), "0.25");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::int(-7i32).compact(), "-7");
    }

    #[test]
    fn pretty_is_indented_and_stable() {
        let j = Json::obj([("xs", Json::arr([Json::uint(1), Json::uint(2)]))]);
        assert_eq!(j.pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_are_tight() {
        assert_eq!(Json::arr([]).pretty(), "[]");
        assert_eq!(Json::obj([]).pretty(), "{}");
    }

    #[test]
    fn serve_stats_render_every_overload_counter() {
        let stats = ServeStats {
            jobs_submitted: 12,
            jobs: 9,
            batches: 3,
            forward_passes: 2,
            cache_hits: 5,
            cache_misses: 4,
            jobs_dropped: 1,
            jobs_expired: 2,
            rejected_overload: 7,
            peak_queued: 6,
        };
        let rendered = serve_stats_json(&stats).compact();
        for field in [
            "\"jobs_submitted\":12",
            "\"jobs\":9",
            "\"jobs_dropped\":1",
            "\"jobs_expired\":2",
            "\"rejected_overload\":7",
            "\"peak_queued\":6",
        ] {
            assert!(rendered.contains(field), "{field} missing from {rendered}");
        }
    }
}
